//! Sliding-window dedup of a query log: find re-issued (or lightly
//! rephrased) search queries within the last ten seconds of stream time.
//!
//! Demonstrates time-based windows and the joiner statistics API on a
//! single node.
//!
//! ```text
//! cargo run --release --example query_log_dedup [n_records]
//! ```

use dssj::core::join::StreamJoiner;
use dssj::core::{JoinConfig, Threshold, Window};
use dssj::workloads::{ArrivalProcess, DatasetProfile, StreamGenerator};
use dssj::BundleJoiner;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    // AOL-like query log arriving at ~1000 queries/s (stream time).
    let profile = DatasetProfile::aol();
    let mut generator = StreamGenerator::new(profile, 3).with_arrival(ArrivalProcess::Poisson {
        rate_per_sec: 1000.0,
    });

    // "Same query within the last 10 seconds" — high threshold, time window.
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.9),
        window: Window::TimeMs(10_000),
    };
    let mut joiner = BundleJoiner::with_defaults(cfg);

    let mut matches = Vec::new();
    let mut duplicate_events = 0u64;
    let mut last_report = 0u64;
    for _ in 0..n {
        let record = generator.next_record();
        let before = matches.len();
        joiner.process(&record, &mut matches);
        if matches.len() > before {
            duplicate_events += 1;
        }
        matches.clear(); // this example only counts, pairs not retained

        let ts = record.timestamp();
        if ts / 5_000 > last_report / 5_000 {
            println!(
                "t={:>5.1}s  live queries {:>6}  bundles {:>6}  postings {:>7}  re-issued so far {:>6}",
                ts as f64 / 1000.0,
                joiner.stored(),
                joiner.bundles(),
                joiner.postings(),
                duplicate_events
            );
        }
        last_report = ts;
    }

    let stats = joiner.stats();
    println!("\nprocessed {n} queries");
    println!(
        "{} queries ({:.1}%) repeated one from the previous 10s window",
        duplicate_events,
        100.0 * duplicate_events as f64 / n as f64
    );
    println!(
        "index work: {} candidates, {} verifications, {} evictions",
        stats.candidates, stats.verifications, stats.evicted
    );
    println!(
        "bundling: {:.1}% of queries absorbed into an existing bundle",
        100.0 * stats.absorb_ratio()
    );
}
