//! Quickstart: tokenize a handful of documents and stream them through the
//! bundle joiner.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dssj::core::join::StreamJoiner;
use dssj::text::{CorpusBuilder, WordTokenizer};
use dssj::{BundleJoiner, JoinConfig};

fn main() {
    let documents = [
        "apache storm distributed stream processing system",
        "distributed stream processing with apache storm",
        "postgres query planner deep dive",
        "a deep dive into the postgres query planner",
        "apache storm distributed stream processing engine",
        "rust borrow checker explained",
    ];

    // 1. Preprocess: tokenize, count document frequencies, remap tokens so
    //    rare tokens come first (what makes prefix filtering selective).
    let mut builder = CorpusBuilder::new(WordTokenizer::default());
    for (i, doc) in documents.iter().enumerate() {
        builder.push_text(doc, i as u64);
    }
    let corpus = builder.build();

    // 2. Stream the records through a joiner: each arriving record is
    //    matched against everything seen before it.
    let mut joiner = BundleJoiner::with_defaults(JoinConfig::jaccard(0.6));
    let mut matches = Vec::new();
    for record in corpus.records() {
        joiner.process(record, &mut matches);
    }

    // 3. Report.
    println!(
        "{} documents, {} similar pairs at Jaccard >= 0.6:\n",
        documents.len(),
        matches.len()
    );
    for m in &matches {
        println!("  {:.2}  #{} <-> #{}", m.similarity, m.earlier.0, m.later.0);
        println!("        \"{}\"", documents[m.earlier.0 as usize]);
        println!("        \"{}\"", documents[m.later.0 as usize]);
    }
    println!(
        "\njoiner state: {} records in {} bundles, {} index postings",
        joiner.stored(),
        joiner.bundles(),
        joiner.postings()
    );
}
