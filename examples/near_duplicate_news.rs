//! On-line near-duplicate detection over a news-like stream — the paper's
//! motivating application — on the full distributed pipeline.
//!
//! A DBLP/news-like stream with a high re-post rate is pushed through the
//! recommended configuration (length-based distribution with a load-aware
//! partition + bundle join on every joiner) and the run's quality metrics
//! are printed.
//!
//! ```text
//! cargo run --release --example near_duplicate_news [n_records]
//! ```

use dssj::core::JoinConfig;
use dssj::distrib::{run_distributed, DistributedJoinConfig};
use dssj::workloads::{DatasetProfile, StreamGenerator};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    // News-like stream: medium-length records, 30% near-duplicates
    // (re-posts and lightly edited copies).
    let profile = DatasetProfile::dblp().with_dup_rate(0.3);
    println!(
        "generating {n} records of a news-like stream ({})...",
        profile.name
    );
    let records = StreamGenerator::new(profile, 1).take_records(n);

    let cfg = DistributedJoinConfig::recommended(8, JoinConfig::jaccard(0.8));
    println!(
        "running distributed join: k = {}, strategy = {}, local = {}\n",
        cfg.k,
        cfg.strategy.name(),
        cfg.local.name()
    );
    let out = run_distributed(&records, &cfg);

    println!("near-duplicate pairs found : {}", out.pairs.len());
    println!(
        "throughput                 : {:.0} records/s",
        out.throughput()
    );
    println!(
        "communication              : {:.2} msgs/record, {:.0} bytes/record",
        out.msgs_per_record(),
        out.bytes_per_record()
    );
    println!(
        "index replication          : {:.2} copies/record",
        out.replication()
    );
    println!(
        "joiner busy-time imbalance : {:.2} (1.0 = perfect)",
        out.load_imbalance()
    );
    println!(
        "result latency             : mean {:.0} us, p99 {:.0} us",
        out.latency.mean().as_secs_f64() * 1e6,
        out.latency.quantile(0.99).as_secs_f64() * 1e6
    );

    println!("\nper-joiner state at drain:");
    for j in &out.joiners {
        println!(
            "  joiner {}: indexed {:>7}  candidates {:>9}  verifications {:>8}  bundles created {:>6}  absorbed {:>6}",
            j.task,
            j.stats.indexed,
            j.stats.candidates,
            j.stats.verifications,
            j.stats.bundles_created,
            j.stats.bundle_absorbed,
        );
    }
}
