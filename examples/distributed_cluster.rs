//! Side-by-side comparison of the three distribution strategies on the
//! same stream: the paper's headline experiment in miniature.
//!
//! ```text
//! cargo run --release --example distributed_cluster [n_records] [k]
//! ```

use dssj::core::JoinConfig;
use dssj::distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler, Strategy,
};
use dssj::workloads::{DatasetProfile, StreamGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(30_000);
    let k: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);

    let profile = DatasetProfile::enron();
    println!("generating {n} long-document records ({})...", profile.name);
    let records = StreamGenerator::new(profile, 11).take_records(n);
    let join = JoinConfig::jaccard(0.8);

    println!(
        "\n{:<14} {:>12} {:>10} {:>11} {:>12} {:>10}",
        "strategy", "records/s", "msgs/rec", "bytes/rec", "replication", "pairs"
    );
    let strategies = [
        (
            "length (LD)",
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: (n / 10).max(100),
            },
        ),
        ("prefix (PD)", Strategy::Prefix),
        ("broadcast (RD)", Strategy::Broadcast),
    ];
    let mut pair_counts = Vec::new();
    for (name, strategy) in strategies {
        let cfg = DistributedJoinConfig {
            k,
            join,
            local: LocalAlgo::PpJoin,
            strategy,
            channel_capacity: 1024,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_distributed(&records, &cfg);
        println!(
            "{:<14} {:>12.0} {:>10.2} {:>11.0} {:>12.2} {:>10}",
            name,
            out.throughput(),
            out.msgs_per_record(),
            out.bytes_per_record(),
            out.replication(),
            out.pairs.len()
        );
        pair_counts.push(out.pairs.len());
    }
    assert!(
        pair_counts.windows(2).all(|w| w[0] == w[1]),
        "all strategies must produce the identical result set"
    );
    println!(
        "\nall three strategies produced the same {} pairs — exact results.",
        pair_counts[0]
    );
}
