//! Bi-stream (R–S) join: match a "news wire" feed against a "social" feed
//! in real time — cross-stream near-duplicate detection, the classic
//! data-integration use of the streaming set similarity join.
//!
//! ```text
//! cargo run --release --example two_feeds [n_records]
//! ```

use dssj::core::JoinConfig;
use dssj::distrib::{run_bistream_distributed, DistributedJoinConfig};
use dssj::text::Record;
use dssj::workloads::{DatasetProfile, StreamGenerator};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);

    // One generator produces the "world's events"; odd/even arrival ids
    // split it into two feeds. Near-duplicate injection means many events
    // surface on both feeds — exactly what the join is looking for.
    let profile = DatasetProfile::tweet().with_dup_rate(0.4);
    println!(
        "generating {n} records across two feeds ({})...",
        profile.name
    );
    let all = StreamGenerator::new(profile, 5).take_records(n);
    let (mut wire, mut social): (Vec<Record>, Vec<Record>) = (Vec::new(), Vec::new());
    for r in all {
        if r.id().0 % 2 == 0 {
            wire.push(r);
        } else {
            social.push(r);
        }
    }

    let cfg = DistributedJoinConfig::recommended(8, JoinConfig::jaccard(0.8));
    println!(
        "running bi-stream join: wire = {} records, social = {} records, k = {}\n",
        wire.len(),
        social.len(),
        cfg.k
    );
    let out = run_bistream_distributed(&wire, &social, &cfg);

    println!("cross-feed matches  : {}", out.pairs.len());
    println!("throughput          : {:.0} records/s", out.throughput());
    println!(
        "communication       : {:.2} msgs/record, replication {:.2}",
        out.msgs_per_record(),
        out.replication()
    );
    println!(
        "latency             : mean {:.0} us, p99 {:.0} us",
        out.latency.mean().as_secs_f64() * 1e6,
        out.latency.quantile(0.99).as_secs_f64() * 1e6
    );

    // Every pair crosses the feeds by construction of the bi-stream join:
    // even ids are wire, odd ids are social.
    let crossings = out
        .pairs
        .iter()
        .filter(|m| (m.earlier.0 % 2) != (m.later.0 % 2))
        .count();
    assert_eq!(
        crossings,
        out.pairs.len(),
        "self-feed pairs must not appear"
    );
    println!(
        "\nall {} matches connect the two feeds (no same-feed pairs)",
        crossings
    );
}
