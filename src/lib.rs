//! # dssj — Distributed Streaming Set Similarity Join
//!
//! Facade crate re-exporting the whole system (a reproduction of
//! *Distributed Streaming Set Similarity Join*, ICDE 2020):
//!
//! * [`text`] — tokenization, dictionaries, records;
//! * [`core`] — similarity measures, filters, verification, and the local
//!   joiners (Naive / AllPairs / PPJoin / Bundle);
//! * [`partition`] — length histograms and load-aware length partitioning;
//! * [`stormlite`] — the in-process Storm-like stream engine;
//! * [`distrib`] — the distribution frameworks (length-based, prefix-based,
//!   broadcast) and the end-to-end distributed join driver;
//! * [`workloads`] — synthetic corpus/stream generators.
//!
//! See the `examples/` directory for runnable entry points, starting with
//! `quickstart.rs`.

#![warn(missing_docs)]

pub use ssj_core as core;
pub use ssj_distrib as distrib;
pub use ssj_partition as partition;
pub use ssj_text as text;
pub use ssj_workloads as workloads;
pub use stormlite;

pub use ssj_core::{
    AllPairsJoiner, BundleConfig, BundleJoiner, JoinConfig, MatchPair, NaiveJoiner, PpJoinJoiner,
    SimFn, StreamJoiner, Threshold, Window,
};
