//! Vendored offline shim for the subset of `parking_lot` this workspace
//! uses: a `Mutex` whose `lock()` returns the guard directly. Wraps
//! `std::sync::Mutex` and ignores poisoning (parking_lot has no poisoning),
//! trading upstream's adaptive spinning for zero dependencies.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic in another
    /// holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn guards_exclude_each_other() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies with the lock");
        })
        .join();
        assert_eq!(*m.lock(), 5); // no poisoning
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }
}
