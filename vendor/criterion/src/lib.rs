//! Vendored offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides a working-but-simple harness: each benchmark is warmed up, then
//! timed over a fixed measurement budget, and the mean ns/iter (plus element
//! throughput when declared) is printed. No statistical analysis, outlier
//! detection, or HTML reports — the benches still *run* and produce usable
//! relative numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) {
        run_one(self.measurement, &id.to_string(), None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) {
        run_one(
            self.criterion.measurement,
            &format!("{}/{}", self.name, id),
            self.throughput,
            f,
        );
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, D, F>(&mut self, id: D, input: &I, mut f: F)
    where
        D: fmt::Display,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle given to each benchmark closure.
pub struct Bencher {
    measurement: Duration,
    mean_ns: f64,
    ran: bool,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and iteration-count calibration: grow the batch until it
        // costs ≥ ~1/10 of the measurement budget, then time full batches.
        let mut batch: u64 = 1;
        let calibration_floor = self.measurement / 10;
        let calibration_deadline = Instant::now() + self.measurement;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= calibration_floor || Instant::now() >= calibration_deadline {
                break;
            }
            batch = batch.saturating_mul(if dt.is_zero() {
                16
            } else {
                (calibration_floor.as_nanos() / dt.as_nanos().max(1)).clamp(2, 16) as u64
            });
        }

        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            spent += t0.elapsed();
            iters += batch;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
        self.ran = true;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    measurement: Duration,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        measurement,
        mean_ns: 0.0,
        ran: false,
    };
    f(&mut bencher);
    if !bencher.ran {
        println!("{label:<50} (no iter() call)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (bencher.mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (bencher.mean_ns / 1e9))
        }
        None => String::new(),
    };
    println!("{label:<50} {:>14.1} ns/iter{rate}", bencher.mean_ns);
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_something() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut observed = 0.0;
        g.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>());
            observed = b.mean_ns;
        });
        g.finish();
        assert!(observed > 0.0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            measurement: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("shim");
        let mut got = 0;
        g.bench_with_input(BenchmarkId::new("id", 7), &7usize, |b, &i| {
            got = i;
            b.iter(|| i * 2);
        });
        assert_eq!(got, 7);
    }
}
