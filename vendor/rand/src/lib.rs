//! Vendored offline shim for the subset of `rand` 0.10 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal, deterministic replacement: [`rngs::StdRng`] is xoshiro256++
//! seeded through SplitMix64 — a well-studied, high-quality small generator
//! that is *not* the upstream `StdRng` (ChaCha12), so seeded streams differ
//! from upstream. Every consumer in this workspace only relies on
//! *determinism per seed*, never on the exact upstream stream.

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire's rejection method
/// (widening-multiply with a retry on the biased low region).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's state must not be all zero; SplitMix64 cannot
            // produce four zero outputs in a row, but be defensive.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.random_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = r.random_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&y));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(4);
        assert!(draw(&mut r) < 100);
    }
}
