//! Vendored offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships a
//! minimal replacement that keeps the property-test *semantics* the test
//! suite relies on: strategies sample random values, `proptest!` runs each
//! property for `cases` deterministic iterations, `prop_assume!` rejects a
//! case without failing, and a failing case reports the test name, case
//! index, and replay seed. Unlike upstream there is no shrinking — a failure
//! prints the seed so the case can be replayed and minimised by hand.
//!
//! Two environment knobs widen coverage without code changes:
//! `PROPTEST_CASES` overrides the per-property case count, and
//! `PROPTEST_RNG_SEED` shifts the deterministic seed stream — running the
//! same binary under seeds 0..N explores N disjoint, individually
//! reproducible case sets (CI's chaos job does exactly this).

pub mod strategy {
    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::RngExt::random_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::RngExt::random_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! Strategies for collections with a sampled size.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;

    /// An inclusive-exclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..self.hi)
        }
    }

    /// A `Vec` of `size.sample()` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` whose size lands in `size` when the element domain
    /// permits; duplicate draws are retried a bounded number of times, so a
    /// narrow domain may yield fewer elements than requested (mirrors
    /// upstream's best-effort behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut misses = 0usize;
            while set.len() < target && misses < 64 {
                if !set.insert(self.element.sample(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

pub mod test_runner {
    //! The deterministic case loop behind the [`proptest!`](crate::proptest)
    //! macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for this input: fail the test.
        Fail(String),
        /// `prop_assume!` filtered the input: draw another case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honoured by this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The seed-stream base for a property: the test name hashed, shifted
    /// by `offset` golden-ratio steps so distinct offsets give disjoint,
    /// well-separated streams.
    pub(crate) fn seed_base(name: &str, offset: u64) -> u64 {
        fnv1a(name) ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `case` for `config.cases` deterministic seeds. The seed stream is
    /// derived from the test name, so every run of the binary explores the
    /// same inputs and failures reproduce. Honours `PROPTEST_CASES` (case
    /// count) and `PROPTEST_RNG_SEED` (seed-stream offset) so CI can widen
    /// coverage without code changes.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);
        let offset = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let base = seed_base(name, offset);
        let max_rejects = (cases as u64) * 64;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        let mut draw = 0u64;
        while passed < cases {
            let seed = base.wrapping_add(draw);
            draw += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejects}) — last: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {passed} (replay seed {seed}): {msg}");
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and passed
/// through) that samples its arguments and runs the body for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run($cfg, stringify!($name), |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)*
                    let mut __proptest_case =
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
}

/// Like `assert!` but fails only the current case, reporting the replay seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case without failing; the runner draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a).0, strat.sample(&mut b).0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0.25f64..=0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn collections_respect_size(
            v in crate::collection::vec(0u8..255, 3..7),
            s in crate::collection::btree_set(0u32..1000, 2..5),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(s.len() < 5);
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..100).contains(&doubled));
        }

        #[test]
        fn assume_filters_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "assume must have filtered odd {}", x);
        }
    }

    #[test]
    fn seed_offsets_give_disjoint_streams() {
        // Distinct PROPTEST_RNG_SEED offsets must shift the base, while
        // offset 0 preserves the historical name-only derivation.
        let bases: Vec<u64> = (0..8)
            .map(|o| crate::test_runner::seed_base("some_property", o))
            .collect();
        let mut uniq = bases.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), bases.len(), "offsets collided");
        assert_eq!(
            crate::test_runner::seed_base("some_property", 0),
            crate::test_runner::seed_base("some_property", 0)
        );
    }

    #[test]
    #[should_panic(expected = "replay seed")]
    fn failures_report_seed() {
        crate::test_runner::run(ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
