//! Vendored offline shim for the subset of `crossbeam` this workspace uses:
//! the MPMC channel. Implemented as a `Mutex<VecDeque>` + two condvars —
//! slower than upstream's lock-free queues but semantically identical for the
//! bounded/unbounded, clone-both-ends usage in `stormlite`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            // A sender/receiver panicking while holding the lock leaves the
            // queue in a consistent state (all mutations are single calls),
            // so poisoning is safe to ignore.
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half; cloneable for multi-producer use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable for multi-consumer use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered: every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Why [`Receiver::try_recv`] returned no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Why [`Receiver::recv_timeout`] returned no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks when
    /// full. A capacity of zero is bumped to one (this shim has no
    /// rendezvous mode; `stormlite` never asks for one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    /// A channel with no capacity limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self
                            .shared
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued (the receiver's backlog).
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking while the channel is empty. Fails
        /// only when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Takes the next message, blocking at most `timeout` while the
        /// channel is empty.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, left)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Takes the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(msg)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains currently available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (s, r) = unbounded();
        for i in 0..100 {
            s.send(i).unwrap();
        }
        let got: Vec<i32> = r.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (s, r) = unbounded::<u32>();
        let h = thread::spawn(move || r.recv());
        thread::sleep(Duration::from_millis(20));
        drop(s);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (s, r) = bounded(2);
        s.send(1).unwrap();
        s.send(2).unwrap();
        let h = thread::spawn(move || {
            s.send(3).unwrap(); // blocks until a recv frees a slot
            3
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(r.recv().unwrap(), 1);
        assert_eq!(h.join().unwrap(), 3);
        assert_eq!(r.recv().unwrap(), 2);
        assert_eq!(r.recv().unwrap(), 3);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (s, r) = bounded(1);
        drop(r);
        assert!(s.send(7).is_err());
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (s, r) = bounded(4);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let s = s.clone();
            producers.push(thread::spawn(move || {
                for i in 0..250 {
                    s.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(s);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let r = r.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = r.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(r);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expect);
    }
}
