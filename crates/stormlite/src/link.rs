//! Deterministic link-fault injection: lossy wires.
//!
//! A [`LinkFaultPlan`] makes specific wires of a topology *imperfect*: each
//! transmission on a targeted wire may be dropped, duplicated, or delayed
//! (held back and released after up to `max_delay` later transmissions,
//! which reorders the link). Decisions are derived deterministically from
//! the plan seed, the wire, and the sending task's per-link transmission
//! counter, so a seeded plan replays exactly — mirroring how
//! [`FaultPlan`](crate::FaultPlan) makes crashes reproducible. An empty
//! plan adds nothing to the hot path: wires without a spec carry no chaos
//! state at all.
//!
//! Link faults model the *network*, not the application: they apply to data
//! transmissions only (including retransmissions on reliable wires), never
//! to end-of-stream markers or acks, so a chaotic topology still
//! terminates.
//!
//! On a default ([`Delivery::BestEffort`](crate::Delivery::BestEffort))
//! wire the faults are observable: drops lose tuples (at-most-once), dups
//! double-deliver, delays reorder. On a
//! [`Delivery::AtLeastOnce`](crate::Delivery::AtLeastOnce) wire the
//! reliable-delivery protocol (see [`crate::delivery`]) masks all three and
//! the receiving bolt observes effectively-once FIFO input.

/// The fault mix of one lossy wire. Rates are per *transmission* and are
/// evaluated in order drop → duplicate → delay, so their sum must be ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability a transmission is silently dropped.
    pub drop_rate: f64,
    /// Probability a transmission is delivered twice.
    pub dup_rate: f64,
    /// Probability a transmission is held back and released after `1 ..=
    /// max_delay` later transmissions on the same link (reordering it).
    pub delay_rate: f64,
    /// Upper bound on how many later transmissions a delayed tuple can be
    /// reordered behind (the "reorder within k" bound).
    pub max_delay: usize,
}

impl LinkFault {
    /// A fault mix derived deterministically from `seed`: drop in [0, 0.3),
    /// dup in [0, 0.2), delay in [0, 0.4), reorder window in 1..=8. The
    /// ranges keep every seed usable on an at-least-once wire (drop rate
    /// stays well below 1, so retries terminate).
    pub fn seeded(seed: u64) -> Self {
        let unit = |s: u64| splitmix64(s) as f64 / u64::MAX as f64;
        Self {
            drop_rate: 0.3 * unit(seed ^ 0x0d0d),
            dup_rate: 0.2 * unit(seed ^ 0xd0d0),
            delay_rate: 0.4 * unit(seed ^ 0x7e7e),
            max_delay: 1 + (splitmix64(seed ^ 0x5a5a) % 8) as usize,
        }
    }

    fn validate(&self) {
        for (name, r) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} must be in [0, 1]");
        }
        assert!(
            self.drop_rate + self.dup_rate + self.delay_rate <= 1.0 + 1e-9,
            "fault rates must sum to at most 1"
        );
        assert!(
            self.delay_rate == 0.0 || self.max_delay >= 1,
            "delay_rate > 0 needs max_delay >= 1"
        );
    }
}

/// One lossy wire: the fault mix applied to every transmission from `from`
/// to `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultSpec {
    /// Source component name as registered with the topology.
    pub from: String,
    /// Destination component name.
    pub to: String,
    /// The fault mix.
    pub fault: LinkFault,
}

/// A seeded set of lossy wires for one topology run.
///
/// ```
/// use stormlite::{LinkFault, LinkFaultPlan};
///
/// let plan = LinkFaultPlan::new(42)
///     .lossy("dispatcher", "joiner", LinkFault::seeded(42));
/// assert_eq!(plan.specs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultPlan {
    seed: u64,
    specs: Vec<LinkFaultSpec>,
}

impl Default for LinkFaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

impl LinkFaultPlan {
    /// An empty plan (perfect wires) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// Makes the `from` → `to` wire lossy with the given fault mix.
    pub fn lossy(mut self, from: &str, to: &str, fault: LinkFault) -> Self {
        fault.validate();
        self.specs.push(LinkFaultSpec {
            from: from.to_owned(),
            to: to.to_owned(),
            fault,
        });
        self
    }

    /// Whether the plan makes no wire lossy.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All lossy wires.
    pub fn specs(&self) -> &[LinkFaultSpec] {
        &self.specs
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The dice for one sending task's copy of a wire, if that wire is
    /// lossy. Each (wire, task) link gets an independent deterministic
    /// decision stream.
    pub(crate) fn dice_for(
        &self,
        from: &str,
        to: &str,
        wire_index: usize,
        sender_task: usize,
    ) -> Option<ChaosDice> {
        let spec = self.specs.iter().find(|s| s.from == from && s.to == to)?;
        Some(ChaosDice {
            fault: spec.fault,
            state: splitmix64(
                self.seed
                    ^ (wire_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (sender_task as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
            ),
        })
    }
}

/// What the chaos layer does with one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkAction {
    /// Deliver normally.
    Pass,
    /// Silently discard this transmission.
    Drop,
    /// Deliver it twice.
    Duplicate,
    /// Hold it back for the given number of later transmissions (≥ 1).
    Delay(usize),
}

/// The deterministic per-link decision stream.
#[derive(Debug, Clone)]
pub(crate) struct ChaosDice {
    fault: LinkFault,
    state: u64,
}

impl ChaosDice {
    /// The action for the next transmission on this link.
    pub(crate) fn roll(&mut self) -> LinkAction {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let draw = mix(self.state) as f64 / u64::MAX as f64;
        let f = &self.fault;
        if draw < f.drop_rate {
            LinkAction::Drop
        } else if draw < f.drop_rate + f.dup_rate {
            LinkAction::Duplicate
        } else if draw < f.drop_rate + f.dup_rate + f.delay_rate {
            let d = 1 + (mix(self.state ^ 0xABCD) % f.max_delay.max(1) as u64) as usize;
            LinkAction::Delay(d)
        } else {
            LinkAction::Pass
        }
    }
}

/// SplitMix64 finalizer (same mixing as `fault.rs`).
pub(crate) fn mix(seed: u64) -> u64 {
    let mut z = seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 step + finalizer.
fn splitmix64(seed: u64) -> u64 {
    mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_faults_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = LinkFault::seeded(seed);
            let b = LinkFault::seeded(seed);
            assert_eq!(a, b);
            assert!((0.0..0.3).contains(&a.drop_rate));
            assert!((0.0..0.2).contains(&a.dup_rate));
            assert!((0.0..0.4).contains(&a.delay_rate));
            assert!((1..=8).contains(&a.max_delay));
        }
    }

    #[test]
    fn dice_streams_are_deterministic_per_link() {
        let plan = LinkFaultPlan::new(7).lossy("a", "b", LinkFault::seeded(7));
        let mut d1 = plan.dice_for("a", "b", 0, 2).unwrap();
        let mut d2 = plan.dice_for("a", "b", 0, 2).unwrap();
        let s1: Vec<LinkAction> = (0..100).map(|_| d1.roll()).collect();
        let s2: Vec<LinkAction> = (0..100).map(|_| d2.roll()).collect();
        assert_eq!(s1, s2);
        // A different task index explores a different stream.
        let mut d3 = plan.dice_for("a", "b", 0, 3).unwrap();
        let s3: Vec<LinkAction> = (0..100).map(|_| d3.roll()).collect();
        assert_ne!(s1, s3);
    }

    #[test]
    fn untargeted_wires_carry_no_dice() {
        let plan = LinkFaultPlan::new(1).lossy("a", "b", LinkFault::seeded(1));
        assert!(plan.dice_for("a", "c", 1, 0).is_none());
        assert!(plan.dice_for("b", "a", 2, 0).is_none());
        assert!(LinkFaultPlan::new(1).is_empty());
    }

    #[test]
    fn rolls_roughly_match_rates() {
        let fault = LinkFault {
            drop_rate: 0.25,
            dup_rate: 0.25,
            delay_rate: 0.25,
            max_delay: 4,
        };
        let plan = LinkFaultPlan::new(3).lossy("a", "b", fault);
        let mut dice = plan.dice_for("a", "b", 0, 0).unwrap();
        let n = 20_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match dice.roll() {
                LinkAction::Pass => counts[0] += 1,
                LinkAction::Drop => counts[1] += 1,
                LinkAction::Duplicate => counts[2] += 1,
                LinkAction::Delay(d) => {
                    assert!((1..=4).contains(&d));
                    counts[3] += 1;
                }
            }
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((0.2..0.3).contains(&frac), "skewed dice: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_rates_rejected() {
        let _ = LinkFaultPlan::new(0).lossy(
            "a",
            "b",
            LinkFault {
                drop_rate: 0.6,
                dup_rate: 0.5,
                delay_rate: 0.0,
                max_delay: 1,
            },
        );
    }
}
