//! Stream groupings: how tuples on a wire pick their destination task.

use std::fmt;
use std::sync::Arc;

/// The routing policy of one wire, mirroring Storm's grouping vocabulary.
pub enum Grouping<M> {
    /// Round-robin over destination tasks (load balancing).
    Shuffle,
    /// All tuples to task 0 (aggregation points, sinks).
    Global,
    /// Every tuple to every destination task.
    Broadcast,
    /// Hash of a tuple-derived key picks the task (sticky routing).
    Fields(Arc<dyn Fn(&M) -> u64 + Send + Sync>),
    /// The emitter names the destination task explicitly
    /// ([`Outbox::emit_direct`](crate::Outbox::emit_direct)) — how the
    /// dispatcher addresses individual joiners.
    Direct,
}

impl<M> Grouping<M> {
    /// Round-robin grouping.
    pub fn shuffle() -> Self {
        Grouping::Shuffle
    }

    /// Everything to task 0.
    pub fn global() -> Self {
        Grouping::Global
    }

    /// Every tuple to every task.
    pub fn broadcast() -> Self {
        Grouping::Broadcast
    }

    /// Key-hash grouping.
    pub fn fields(key: impl Fn(&M) -> u64 + Send + Sync + 'static) -> Self {
        Grouping::Fields(Arc::new(key))
    }

    /// Emitter-addressed grouping.
    pub fn direct() -> Self {
        Grouping::Direct
    }
}

impl<M> Clone for Grouping<M> {
    fn clone(&self) -> Self {
        match self {
            Grouping::Shuffle => Grouping::Shuffle,
            Grouping::Global => Grouping::Global,
            Grouping::Broadcast => Grouping::Broadcast,
            Grouping::Fields(f) => Grouping::Fields(Arc::clone(f)),
            Grouping::Direct => Grouping::Direct,
        }
    }
}

impl<M> fmt::Debug for Grouping<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Grouping::Shuffle => "Shuffle",
            Grouping::Global => "Global",
            Grouping::Broadcast => "Broadcast",
            Grouping::Fields(_) => "Fields(<key fn>)",
            Grouping::Direct => "Direct",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_names() {
        assert_eq!(format!("{:?}", Grouping::<u8>::shuffle()), "Shuffle");
        assert_eq!(
            format!("{:?}", Grouping::<u8>::fields(|_| 0)),
            "Fields(<key fn>)"
        );
    }

    #[test]
    fn clone_preserves_variant() {
        let g = Grouping::<u8>::broadcast();
        assert!(matches!(g.clone(), Grouping::Broadcast));
        let f = Grouping::<u8>::fields(|&b| b as u64);
        match f.clone() {
            Grouping::Fields(key) => assert_eq!(key(&3), 3),
            _ => panic!("wrong variant"),
        }
    }
}
