//! Deterministic fault injection for topology runs.
//!
//! A [`FaultPlan`] tells [`Topology::run`](crate::Topology::run) to crash
//! specific bolt tasks at exact points in their input stream: task `t` of
//! component `c` dies immediately after fully processing `n` tuples, before
//! touching tuple `n + 1`. The crash is injected by the runtime, not the
//! bolt, so any bolt can be tested without instrumentation; the task is then
//! rebuilt from its factory and the in-flight tuple is delivered to the
//! fresh instance exactly once.
//!
//! Plans are deterministic by construction (explicit crash points) and
//! seedable via [`FaultPlan::crash_seeded`], which derives a crash point
//! from a `u64` seed so randomized test harnesses stay reproducible. An
//! empty plan adds no per-tuple work to the hot path beyond one branch on an
//! empty slice.

/// One injected crash: `component` task `task` dies after fully processing
/// `after_tuples` data tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Component name as registered with the topology.
    pub component: String,
    /// Task index within the component (`0 ..` parallelism).
    pub task: usize,
    /// Number of tuples the task fully processes before crashing. `0`
    /// crashes the task before it touches any input; a value past the end
    /// of the task's input never fires.
    pub after_tuples: u64,
}

/// A set of injected crashes for one topology run.
///
/// ```
/// use stormlite::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash("joiner", 2, 150)
///     .crash_seeded("joiner", 4, 1000, 42);
/// assert_eq!(plan.specs().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an explicit crash point.
    pub fn crash(mut self, component: &str, task: usize, after_tuples: u64) -> Self {
        self.specs.push(FaultSpec {
            component: component.to_owned(),
            task,
            after_tuples,
        });
        self
    }

    /// Adds a crash whose task (`0 .. tasks`) and crash point
    /// (`0 .. max_after_tuples`) are derived deterministically from `seed`,
    /// so randomized harnesses reproduce exactly.
    pub fn crash_seeded(
        mut self,
        component: &str,
        tasks: usize,
        max_after_tuples: u64,
        seed: u64,
    ) -> Self {
        assert!(tasks >= 1, "component needs at least one task");
        assert!(max_after_tuples >= 1, "need a non-empty crash point range");
        let task = (splitmix64(seed) % tasks as u64) as usize;
        let after_tuples = splitmix64(seed.wrapping_add(1)) % max_after_tuples;
        self.specs.push(FaultSpec {
            component: component.to_owned(),
            task,
            after_tuples,
        });
        self
    }

    /// Whether the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All planned crashes.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Crash points for one task, sorted ascending.
    pub(crate) fn points_for(&self, component: &str, task: usize) -> Vec<u64> {
        let mut points: Vec<u64> = self
            .specs
            .iter()
            .filter(|s| s.component == component && s.task == task)
            .map(|s| s.after_tuples)
            .collect();
        points.sort_unstable();
        points
    }
}

/// SplitMix64: a tiny, high-quality mixing function — enough to spread a
/// test seed over tasks and crash points without a rand dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_per_task_and_sorted() {
        let plan = FaultPlan::new()
            .crash("joiner", 1, 50)
            .crash("joiner", 0, 9)
            .crash("joiner", 1, 7)
            .crash("sink", 1, 3);
        assert_eq!(plan.points_for("joiner", 1), vec![7, 50]);
        assert_eq!(plan.points_for("joiner", 0), vec![9]);
        assert_eq!(plan.points_for("joiner", 2), Vec::<u64>::new());
        assert_eq!(plan.points_for("dispatcher", 0), Vec::<u64>::new());
    }

    #[test]
    fn seeded_crashes_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::new().crash_seeded("j", 5, 100, seed);
            let b = FaultPlan::new().crash_seeded("j", 5, 100, seed);
            assert_eq!(a, b);
            let s = &a.specs()[0];
            assert!(s.task < 5);
            assert!(s.after_tuples < 100);
        }
        // Different seeds should explore different crash points.
        let points: std::collections::BTreeSet<u64> = (0..50)
            .map(|seed| FaultPlan::new().crash_seeded("j", 5, 1000, seed).specs()[0].after_tuples)
            .collect();
        assert!(points.len() > 25, "seeded points barely vary: {points:?}");
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().crash("x", 0, 1).is_empty());
    }
}
