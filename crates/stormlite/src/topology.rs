//! Topology construction and execution.

use crate::clock::{Clock, Timestamp};
use crate::delivery::Delivery;
use crate::fault::FaultPlan;
use crate::grouping::Grouping;
use crate::link::LinkFaultPlan;
use crate::message::{
    Ack, Bolt, Chaos, CollectorBolt, Envelope, Message, OutWire, Outbox, ReliableRx, ReliableTx,
};
use crate::metrics::{RunReport, TaskMetrics};
use crate::sim::{Scheduler, SimConfig, SimRun};
use crossbeam::channel::{bounded, Receiver, Sender};
use obs::{Stage, TaskTracer, TraceConfig, TraceSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

pub(crate) type BoltFactory<M> = Box<dyn FnMut(usize) -> Box<dyn Bolt<M>> + Send>;

pub(crate) enum Kind<M: Message> {
    Spout(Option<Box<dyn Iterator<Item = M> + Send>>),
    Bolt(BoltFactory<M>),
}

pub(crate) struct Component<M: Message> {
    pub(crate) name: String,
    pub(crate) parallelism: usize,
    pub(crate) kind: Kind<M>,
}

pub(crate) struct WireDef<M> {
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) grouping: Grouping<M>,
    pub(crate) delivery: Delivery,
}

/// A dataflow graph of spouts and bolts, executed with one thread per task
/// (or, under [`Scheduler::Sim`], single-threaded and deterministic).
///
/// Build with [`spout`](Self::spout) / [`bolt`](Self::bolt) /
/// [`wire`](Self::wire), then call [`run`](Self::run); the call returns
/// once every tuple has drained and every task has exited.
pub struct Topology<M: Message> {
    pub(crate) components: Vec<Component<M>>,
    pub(crate) wires: Vec<WireDef<M>>,
    pub(crate) channel_capacity: usize,
    pub(crate) fault_plan: FaultPlan,
    pub(crate) link_plan: LinkFaultPlan,
    pub(crate) restart_budget: u64,
    pub(crate) trace: Option<(TraceSink, TraceConfig)>,
}

impl<M: Message> Default for Topology<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Message> Topology<M> {
    /// An empty topology.
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
            wires: Vec::new(),
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            fault_plan: FaultPlan::new(),
            link_plan: LinkFaultPlan::default(),
            restart_budget: 0,
            trace: None,
        }
    }

    /// Enables structured trace collection: every task records pipeline
    /// events (dispatch, deliver, retry, execute, plus whatever the bolts
    /// add through [`Outbox::trace_span`] / [`Outbox::trace_instant`])
    /// into a bounded per-task ring; finished rings are deposited into
    /// `sink`, which the caller drains after the run. Timestamps come
    /// from the run's scheduler clock, so a simulated run's collected
    /// trace is deterministic per seed — and collection itself records no
    /// randomness and never advances the clock, so enabling it leaves
    /// transcripts byte-identical. When not called, no tracer exists and
    /// the hot path is untouched.
    pub fn with_tracing(mut self, sink: TraceSink, cfg: TraceConfig) -> Self {
        self.trace = Some((sink, cfg));
        self
    }

    /// Overrides the per-task input queue capacity (backpressure depth).
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "channels need capacity");
        self.channel_capacity = capacity;
        self
    }

    /// Injects the given crash plan into this run. Each injected crash
    /// tears the targeted bolt instance down at its exact crash point and
    /// rebuilds it from the component factory; the in-flight tuple is then
    /// delivered to the fresh instance exactly once. Injected crashes are
    /// recorded in [`RunReport::failures`] and counted in
    /// [`RunReport::restarts`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Injects the given link-fault plan: targeted wires drop, duplicate
    /// and delay (reorder) transmissions deterministically per seed. On a
    /// default best-effort wire the faults are observable downstream; on an
    /// [`Delivery::AtLeastOnce`] wire the reliable protocol masks them.
    /// Wires without a spec are untouched and pay no overhead.
    pub fn with_link_faults(mut self, plan: LinkFaultPlan) -> Self {
        self.link_plan = plan;
        self
    }

    /// Allows each bolt task to survive up to `budget` *organic* panics
    /// (panics raised by the bolt's own `execute`, as opposed to injected
    /// faults): the instance is rebuilt from its factory and processing
    /// continues with the next tuple. The tuple whose `execute` panicked is
    /// **not** redelivered — it poisoned the instance once and would again.
    /// The default budget of `0` preserves fail-and-drain semantics: a
    /// panicked task discards the rest of its input.
    pub fn with_supervised_restarts(mut self, budget: u64) -> Self {
        self.restart_budget = budget;
        self
    }

    fn index_of(&self, name: &str) -> usize {
        self.components
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("unknown component '{name}'"))
    }

    fn add(&mut self, name: &str, parallelism: usize, kind: Kind<M>) {
        assert!(parallelism >= 1, "parallelism must be at least 1");
        assert!(
            self.components.iter().all(|c| c.name != name),
            "duplicate component name '{name}'"
        );
        self.components.push(Component {
            name: name.to_owned(),
            parallelism,
            kind,
        });
    }

    /// Adds a source emitting the iterator's items in order (always one
    /// task).
    pub fn spout<I>(&mut self, name: &str, source: I)
    where
        I: IntoIterator<Item = M>,
        I::IntoIter: Send + 'static,
    {
        self.add(name, 1, Kind::Spout(Some(Box::new(source.into_iter()))));
    }

    /// Adds a bolt with `parallelism` tasks; `factory(task_index)` builds
    /// each task's instance.
    pub fn bolt<B, F>(&mut self, name: &str, parallelism: usize, mut factory: F)
    where
        B: Bolt<M> + 'static,
        F: FnMut(usize) -> B + Send + 'static,
    {
        self.add(
            name,
            parallelism,
            Kind::Bolt(Box::new(move |task| Box::new(factory(task)))),
        );
    }

    /// Adds a single-task terminal bolt collecting everything it receives;
    /// returns the shared vector it fills.
    pub fn collector(&mut self, name: &str) -> Arc<Mutex<Vec<M>>> {
        let out = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::clone(&out);
        self.bolt(name, 1, move |_| CollectorBolt::new(Arc::clone(&shared)));
        out
    }

    /// Connects `from` to `to` with a grouping and default
    /// ([`Delivery::BestEffort`]) delivery. `to` must be a bolt.
    pub fn wire(&mut self, from: &str, to: &str, grouping: Grouping<M>) {
        self.wire_with(from, to, grouping, Delivery::BestEffort);
    }

    /// Connects `from` to `to` with a grouping and explicit delivery
    /// semantics. `to` must be a bolt.
    pub fn wire_with(&mut self, from: &str, to: &str, grouping: Grouping<M>, delivery: Delivery) {
        let from = self.index_of(from);
        let to = self.index_of(to);
        assert!(
            matches!(self.components[to].kind, Kind::Bolt(_)),
            "cannot wire into a spout"
        );
        self.wires.push(WireDef {
            from,
            to,
            grouping,
            delivery,
        });
    }

    pub(crate) fn validate(&self) {
        // Every bolt needs input, and the graph must be acyclic.
        for (i, c) in self.components.iter().enumerate() {
            if matches!(c.kind, Kind::Bolt(_)) {
                assert!(
                    self.wires.iter().any(|w| w.to == i),
                    "bolt '{}' has no inbound wire",
                    c.name
                );
            }
        }
        // Kahn's algorithm for cycle detection.
        let n = self.components.len();
        let mut indeg = vec![0usize; n];
        for w in &self.wires {
            indeg[w.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = queue.pop() {
            visited += 1;
            for w in self.wires.iter().filter(|w| w.from == i) {
                indeg[w.to] -= 1;
                if indeg[w.to] == 0 {
                    queue.push(w.to);
                }
            }
        }
        assert_eq!(visited, n, "topology contains a cycle");
        // Fault plans must target existing bolt tasks: a typo'd component
        // or out-of-range task silently never firing would make a recovery
        // test vacuously pass.
        for spec in self.fault_plan.specs() {
            let comp = self
                .components
                .iter()
                .find(|c| c.name == spec.component)
                .unwrap_or_else(|| {
                    panic!("fault plan targets unknown component '{}'", spec.component)
                });
            assert!(
                matches!(comp.kind, Kind::Bolt(_)),
                "fault plan targets spout '{}'; only bolts can be crashed and restarted",
                spec.component
            );
            assert!(
                spec.task < comp.parallelism,
                "fault plan targets task {} of '{}' (parallelism {})",
                spec.task,
                spec.component,
                comp.parallelism
            );
        }
        // Link-fault plans must target existing wires, for the same reason;
        // and a reliable wire that drops everything would retry forever.
        for spec in self.link_plan.specs() {
            let targeted: Vec<&WireDef<M>> = self
                .wires
                .iter()
                .filter(|w| {
                    self.components[w.from].name == spec.from
                        && self.components[w.to].name == spec.to
                })
                .collect();
            assert!(
                !targeted.is_empty(),
                "link fault plan targets nonexistent wire '{}' -> '{}'",
                spec.from,
                spec.to
            );
            for w in targeted {
                assert!(
                    !w.delivery.is_reliable() || spec.fault.drop_rate < 1.0,
                    "wire '{}' -> '{}' is AtLeastOnce but drops every transmission; \
                     retries could never succeed",
                    spec.from,
                    spec.to
                );
            }
        }
    }

    /// Executes the topology to completion on the given scheduler.
    ///
    /// [`Scheduler::Threads`] is identical to [`run`](Self::run);
    /// [`Scheduler::Sim`] runs the whole topology single-threaded on a
    /// virtual clock (discarding the recorded transcript — use
    /// [`run_sim`](Self::run_sim) to keep it).
    pub fn run_with(self, scheduler: Scheduler) -> RunReport {
        match scheduler {
            Scheduler::Threads => self.run(),
            Scheduler::Sim(cfg) => self.run_sim(cfg).report,
        }
    }

    /// Executes the topology deterministically under the simulation
    /// scheduler (see [`crate::sim`]) and returns both the run report and
    /// the recorded transcript.
    pub fn run_sim(self, cfg: SimConfig) -> SimRun {
        crate::sim::execute(self, cfg)
    }

    /// Executes the topology to completion and returns the run report.
    pub fn run(self) -> RunReport {
        self.validate();
        let n = self.components.len();
        let clock = Clock::wall();

        // Input channels: one per bolt task.
        let mut senders: Vec<Vec<Sender<Envelope<M>>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Vec<Option<Receiver<Envelope<M>>>>> = Vec::with_capacity(n);
        for c in &self.components {
            let mut comp_senders = Vec::new();
            let mut comp_receivers = Vec::new();
            match c.kind {
                Kind::Spout(_) => {}
                Kind::Bolt(_) => {
                    for _ in 0..c.parallelism {
                        let (s, r) = bounded(self.channel_capacity);
                        comp_senders.push(s);
                        comp_receivers.push(Some(r));
                    }
                }
            }
            senders.push(comp_senders);
            receivers.push(comp_receivers);
        }

        let expected_eos = expected_eos_counts(&self.components, &self.wires);

        // Component names, cloned so the outbox builder doesn't borrow
        // `self.components` (which is consumed when tasks spawn).
        let names: Vec<String> = self.components.iter().map(|c| c.name.clone()).collect();

        let mut handles = Vec::new();
        for (i, c) in self.components.into_iter().enumerate() {
            match c.kind {
                Kind::Spout(mut source) => {
                    let tracer = self
                        .trace
                        .as_ref()
                        .map(|(_, cfg)| TaskTracer::new(names[i].clone(), 0, cfg.ring_capacity));
                    let sink = self.trace.as_ref().map(|(s, _)| s.clone());
                    let mut outbox = build_outbox(
                        &self.wires,
                        &names,
                        &self.link_plan,
                        &senders,
                        &clock,
                        i,
                        0,
                        tracer,
                    );
                    let name = c.name.clone();
                    let source = source.take().expect("spout source present");
                    handles.push((
                        c.name,
                        0usize,
                        std::thread::Builder::new()
                            .name(format!("{name}-0"))
                            .spawn(move || {
                                let result = run_spout(source, &mut outbox);
                                if let (Some(s), Some(t)) = (&sink, outbox.take_trace()) {
                                    s.push(t);
                                }
                                result
                            })
                            .expect("spawn spout"),
                    ));
                }
                Kind::Bolt(factory) => {
                    // The factory is shared across the component's task
                    // threads so a supervised task can rebuild its bolt
                    // instance after a crash.
                    let factory = Arc::new(Mutex::new(factory));
                    let comp_receivers = std::mem::take(&mut receivers[i]);
                    for (task, rx_slot) in comp_receivers.into_iter().enumerate() {
                        let tracer = self.trace.as_ref().map(|(_, cfg)| {
                            TaskTracer::new(names[i].clone(), task, cfg.ring_capacity)
                        });
                        let sink = self.trace.as_ref().map(|(s, _)| s.clone());
                        let mut outbox = build_outbox(
                            &self.wires,
                            &names,
                            &self.link_plan,
                            &senders,
                            &clock,
                            i,
                            task,
                            tracer,
                        );
                        let rx = rx_slot.expect("receiver unclaimed");
                        let expected = expected_eos[i];
                        let name = c.name.clone();
                        let factory = Arc::clone(&factory);
                        let fault_points = self.fault_plan.points_for(&c.name, task);
                        let restart_budget = self.restart_budget;
                        handles.push((
                            c.name.clone(),
                            task,
                            std::thread::Builder::new()
                                .name(format!("{name}-{task}"))
                                .spawn(move || {
                                    let mut core = BoltCore::new(
                                        factory,
                                        task,
                                        expected,
                                        fault_points,
                                        restart_budget,
                                    );
                                    while let Ok(envelope) = rx.recv() {
                                        if core.handle(envelope, &mut outbox) {
                                            outbox.send_eos();
                                            break;
                                        }
                                    }
                                    if let (Some(s), Some(t)) = (&sink, outbox.take_trace()) {
                                        s.push(t);
                                    }
                                    (
                                        std::mem::take(&mut outbox.metrics),
                                        std::mem::take(&mut core.failures),
                                        core.restarts,
                                    )
                                })
                                .expect("spawn bolt"),
                        ));
                    }
                }
            }
        }
        // The main thread keeps no senders: drop the matrices so channels
        // close with their owning tasks.
        drop(senders);
        drop(receivers);

        let mut tasks = Vec::new();
        let mut failures = Vec::new();
        let mut restarts = Vec::new();
        for (name, task, handle) in handles {
            let (metrics, task_failures, restart_count) =
                handle.join().expect("task thread itself never panics");
            for msg in task_failures {
                failures.push((name.clone(), task, msg));
            }
            if restart_count > 0 {
                restarts.push((name.clone(), task, restart_count));
            }
            tasks.push((name, task, metrics));
        }
        RunReport {
            tasks,
            failures,
            restarts,
            elapsed: clock.now().saturating_since(Timestamp::ZERO),
        }
    }
}

/// Expected EOS tokens per component = sum of upstream parallelism.
pub(crate) fn expected_eos_counts<M: Message>(
    components: &[Component<M>],
    wires: &[WireDef<M>],
) -> Vec<usize> {
    (0..components.len())
        .map(|i| {
            wires
                .iter()
                .filter(|w| w.to == i)
                .map(|w| components[w.from].parallelism)
                .sum()
        })
        .collect()
}

/// Builds the outbox of one task: its outgoing wires with their chaos and
/// reliable-delivery layers, all reading the run's shared clock, plus the
/// task's trace ring when tracing is enabled. Used by both the threaded
/// and the simulation executor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_outbox<M: Message>(
    wire_defs: &[WireDef<M>],
    names: &[String],
    link_plan: &LinkFaultPlan,
    senders: &[Vec<Sender<Envelope<M>>>],
    clock: &Clock,
    comp: usize,
    task: usize,
    tracer: Option<TaskTracer>,
) -> Outbox<M> {
    let wires = wire_defs
        .iter()
        .enumerate()
        .filter(|(_, w)| w.from == comp)
        .map(|(wire_index, w)| {
            let from_name = &names[w.from];
            let to_name = &names[w.to];
            let chaos = link_plan
                .dice_for(from_name, to_name, wire_index, task)
                .map(Chaos::new);
            let reliable = match w.delivery {
                Delivery::BestEffort => None,
                Delivery::AtLeastOnce(retry) => Some(ReliableTx::new(retry, senders[w.to].len())),
            };
            OutWire {
                grouping: w.grouping.clone(),
                senders: senders[w.to].clone(),
                // Stagger round-robin start by task to avoid lockstep.
                rr_next: task,
                // Unique per (wire, sender task): receivers key their
                // sequence state on it.
                link: ((wire_index as u64) << 32) | task as u64,
                chaos,
                reliable,
                clock: clock.clone(),
            }
        })
        .collect();
    Outbox {
        wires,
        task_index: task,
        metrics: TaskMetrics::default(),
        clock: clock.clone(),
        tracer,
    }
}

fn run_spout<M: Message>(
    source: Box<dyn Iterator<Item = M> + Send>,
    outbox: &mut Outbox<M>,
) -> (TaskMetrics, Vec<String>, u64) {
    let mut source = source;
    let mut failures = Vec::new();
    let mut ordinal = 0u64;
    loop {
        // Each pull is isolated: a panicking source stops emitting but the
        // topology still receives EOS and drains cleanly.
        let next = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| source.next()));
        match next {
            Ok(Some(msg)) => {
                outbox.trace_instant(Stage::Dispatch, ordinal, 0);
                ordinal += 1;
                outbox.emit(msg);
            }
            Ok(None) => break,
            Err(panic) => {
                failures.push(panic_message(panic));
                break;
            }
        }
    }
    outbox.send_eos();
    (std::mem::take(&mut outbox.metrics), failures, 0)
}

/// Renders a caught panic payload for the run report.
pub(crate) fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Builds a fresh bolt instance, catching a panicking factory.
fn build_bolt<M: Message>(
    factory: &Mutex<BoltFactory<M>>,
    task: usize,
) -> Result<Box<dyn Bolt<M>>, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (factory.lock())(task)))
        .map_err(panic_message)
}

/// The scheduler-independent heart of one bolt task: EOS accounting,
/// reliable-receive dedup, injected-fault and supervised-restart handling,
/// and tuple execution. The threaded executor drives it from a blocking
/// `recv` loop; the simulation scheduler feeds it one envelope per step.
pub(crate) struct BoltCore<M: Message> {
    factory: Arc<Mutex<BoltFactory<M>>>,
    task: usize,
    expected_eos: usize,
    eos_seen: usize,
    pub(crate) failures: Vec<String>,
    pub(crate) restarts: u64,
    organic_restarts_left: u64,
    /// Tuples fully processed across all incarnations of this task;
    /// injected crash points are expressed in this count.
    processed: u64,
    next_fault: std::iter::Peekable<std::vec::IntoIter<u64>>,
    bolt: Option<Box<dyn Bolt<M>>>,
    /// Per-link reliable-receive state (sequence cursor + reorder buffer),
    /// keyed by the sender's link identity. It lives here, not in the bolt
    /// instance, so dedup survives bolt crashes and restarts. (Only ever
    /// accessed by key — never iterated — so the randomized `HashMap`
    /// order cannot leak into delivery order.)
    links: HashMap<u64, ReliableRx<M>>,
    /// Tuples released for processing by the current envelope: one for a
    /// plain Data envelope, zero or more (in sequence order) for a Seq one.
    deliverable: Vec<(M, Timestamp)>,
}

impl<M: Message> BoltCore<M> {
    pub(crate) fn new(
        factory: Arc<Mutex<BoltFactory<M>>>,
        task: usize,
        expected_eos: usize,
        fault_points: Vec<u64>,
        restart_budget: u64,
    ) -> Self {
        let mut failures = Vec::new();
        let bolt = match build_bolt(&factory, task) {
            Ok(b) => Some(b),
            Err(msg) => {
                failures.push(msg);
                None
            }
        };
        Self {
            factory,
            task,
            expected_eos,
            eos_seen: 0,
            failures,
            restarts: 0,
            organic_restarts_left: restart_budget,
            processed: 0,
            next_fault: fault_points.into_iter().peekable(),
            bolt,
            links: HashMap::new(),
            deliverable: Vec::new(),
        }
    }

    fn rebuild(&mut self) {
        match build_bolt(&self.factory, self.task) {
            Ok(b) => {
                self.bolt = Some(b);
                self.restarts += 1;
            }
            Err(msg) => {
                self.failures.push(msg);
                self.bolt = None;
            }
        }
    }

    /// Processes one envelope. Returns `true` once the last expected EOS
    /// has arrived and `finish` has run — the caller then owns sending the
    /// task's own EOS downstream (blocking settle on the threaded path,
    /// incremental settle in simulation).
    pub(crate) fn handle(&mut self, envelope: Envelope<M>, outbox: &mut Outbox<M>) -> bool {
        match envelope {
            Envelope::Data(msg, sent_at) => self.deliverable.push((msg, sent_at)),
            Envelope::Seq {
                msg,
                sent_at,
                link,
                seq,
                ack,
            } => {
                // Acknowledge every receipt (duplicates included): the
                // sender may have retransmitted before the first ack
                // drained, and acks for already-settled sequence numbers
                // are simply ignored there.
                let _ = ack.send(Ack {
                    dest: self.task,
                    seq,
                });
                let state = self.links.entry(link).or_default();
                if state.accept(seq, msg, sent_at, &mut self.deliverable) {
                    outbox.metrics.dup_drops += 1;
                }
            }
            Envelope::Eos => {
                self.eos_seen += 1;
                if self.eos_seen == self.expected_eos {
                    if let Some(instance) = self.bolt.as_deref_mut() {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            instance.finish(outbox)
                        }));
                        if let Err(panic) = r {
                            self.failures.push(panic_message(panic));
                        }
                    }
                    return true;
                }
            }
        }
        // Moved out of `self` so the rebuild path can borrow the rest of
        // the core mutably; restored below to keep the buffer's capacity.
        let mut deliverable = std::mem::take(&mut self.deliverable);
        for (msg, sent_at) in deliverable.drain(..) {
            outbox
                .metrics
                .queue_wait
                .record(outbox.clock.now().saturating_since(sent_at));
            outbox.metrics.msgs_in += 1;
            outbox.metrics.bytes_in += msg.wire_bytes();
            // Injected crash boundary: the instance dies having fully
            // processed `processed` tuples, and a fresh instance —
            // which sees none of the old one's in-memory state — takes
            // over with this tuple, delivered exactly once.
            while self.bolt.is_some() && self.next_fault.next_if_eq(&self.processed).is_some() {
                self.failures.push(format!(
                    "injected fault: task crashed after {} tuples",
                    self.processed
                ));
                self.rebuild();
            }
            let Some(instance) = self.bolt.as_deref_mut() else {
                // A dead bolt keeps draining its queue so upstream
                // senders never block on a dead consumer; tuples are
                // discarded.
                continue;
            };
            let t0 = outbox.clock.now();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                instance.execute(msg, outbox)
            }));
            outbox.metrics.busy += outbox.clock.now().saturating_since(t0);
            outbox.trace_span(Stage::Execute, t0, self.processed, 0);
            match r {
                Ok(()) => self.processed += 1,
                Err(panic) => {
                    self.failures.push(panic_message(panic));
                    // An organic panic consumes its tuple: redelivering
                    // it to the fresh instance would just crash it
                    // again. The crashed instance counts as having
                    // processed it for fault-point bookkeeping — and is
                    // counted as a poisoned drop so the loss is never
                    // silent.
                    self.processed += 1;
                    outbox.metrics.dropped_poisoned += 1;
                    if self.organic_restarts_left > 0 {
                        self.organic_restarts_left -= 1;
                        self.rebuild();
                    } else {
                        self.bolt = None;
                    }
                }
            }
        }
        self.deliverable = deliverable;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct N(u64);
    impl Message for N {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    struct AddOne;
    impl Bolt<N> for AddOne {
        fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
            out.emit(N(msg.0 + 1));
        }
    }

    /// Buffers everything; emits on finish (tests the flush path).
    struct BufferAll {
        buf: Vec<N>,
    }
    impl Bolt<N> for BufferAll {
        fn execute(&mut self, msg: N, _out: &mut Outbox<N>) {
            self.buf.push(msg);
        }
        fn finish(&mut self, out: &mut Outbox<N>) {
            for m in self.buf.drain(..) {
                out.emit(m);
            }
        }
    }

    #[test]
    fn linear_pipeline() {
        let mut t = Topology::new();
        t.spout("src", (0..100u64).map(N));
        t.bolt("inc", 4, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "inc", Grouping::shuffle());
        t.wire("inc", "sink", Grouping::global());
        let report = t.run();
        let mut values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=100u64).collect::<Vec<_>>());
        assert_eq!(report.component("inc").msgs_in, 100);
        assert_eq!(report.component("sink").msgs_in, 100);
    }

    #[test]
    fn fifo_order_preserved_per_edge() {
        // Single-task bolt chain: global order must be preserved.
        let mut t = Topology::new();
        t.spout("src", (0..1000u64).map(N));
        t.bolt("inc", 1, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "inc", Grouping::global());
        t.wire("inc", "sink", Grouping::global());
        t.run();
        let values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        assert_eq!(values, (1..=1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn fields_grouping_partitions_consistently() {
        struct TagTask;
        impl Bolt<N> for TagTask {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                // Encode the handling task into the high bits.
                out.emit(N(msg.0 | ((out.task_index() as u64) << 32)));
            }
        }
        let mut t = Topology::new();
        t.spout("src", (0..200u64).map(|i| N(i % 10)));
        t.bolt("tag", 4, |_| TagTask);
        let out = t.collector("sink");
        t.wire("src", "tag", Grouping::fields(|n: &N| n.0));
        t.wire("tag", "sink", Grouping::global());
        t.run();
        // Every occurrence of the same key must have been handled by the
        // same task.
        let mut task_of_key = std::collections::HashMap::new();
        for n in out.lock().iter() {
            let key = n.0 & 0xFFFF_FFFF;
            let task = n.0 >> 32;
            let prev = task_of_key.insert(key, task);
            assert!(prev.is_none() || prev == Some(task), "key {key} split");
        }
        assert_eq!(out.lock().len(), 200);
    }

    #[test]
    fn broadcast_duplicates_to_all_tasks() {
        let mut t = Topology::new();
        t.spout("src", (0..10u64).map(N));
        t.bolt("copy", 3, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "copy", Grouping::broadcast());
        t.wire("copy", "sink", Grouping::global());
        let report = t.run();
        assert_eq!(out.lock().len(), 30);
        assert_eq!(report.component("copy").msgs_in, 30);
    }

    #[test]
    fn direct_grouping_addresses_tasks() {
        struct Route;
        impl Bolt<N> for Route {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                let target = (msg.0 % 3) as usize;
                out.emit_direct(target, msg);
            }
        }
        struct Tag;
        impl Bolt<N> for Tag {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                out.emit(N(msg.0 * 100 + out.task_index() as u64));
            }
        }
        let mut t = Topology::new();
        t.spout("src", (0..30u64).map(N));
        t.bolt("route", 1, |_| Route);
        t.bolt("worker", 3, |_| Tag);
        let out = t.collector("sink");
        t.wire("src", "route", Grouping::global());
        t.wire("route", "worker", Grouping::direct());
        t.wire("worker", "sink", Grouping::global());
        t.run();
        for n in out.lock().iter() {
            let original = n.0 / 100;
            let task = n.0 % 100;
            assert_eq!(task, original % 3, "value routed to the wrong task");
        }
    }

    #[test]
    fn finish_flushes_buffered_state() {
        let mut t = Topology::new();
        t.spout("src", (0..50u64).map(N));
        t.bolt("buffer", 2, |_| BufferAll { buf: Vec::new() });
        let out = t.collector("sink");
        t.wire("src", "buffer", Grouping::shuffle());
        t.wire("buffer", "sink", Grouping::global());
        t.run();
        assert_eq!(out.lock().len(), 50);
    }

    #[test]
    fn backpressure_with_tiny_channels() {
        let mut t = Topology::new().with_channel_capacity(1);
        t.spout("src", (0..500u64).map(N));
        t.bolt("inc", 1, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "inc", Grouping::global());
        t.wire("inc", "sink", Grouping::global());
        t.run();
        assert_eq!(out.lock().len(), 500);
    }

    #[test]
    fn diamond_topology_merges() {
        let mut t = Topology::new();
        t.spout("src", (0..20u64).map(N));
        t.bolt("left", 1, |_| AddOne);
        t.bolt("right", 1, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "left", Grouping::global());
        t.wire("src", "right", Grouping::global());
        t.wire("left", "sink", Grouping::global());
        t.wire("right", "sink", Grouping::global());
        t.run();
        assert_eq!(out.lock().len(), 40);
    }

    #[test]
    fn metrics_count_bytes() {
        let mut t = Topology::new();
        t.spout("src", (0..10u64).map(N));
        let out = t.collector("sink");
        t.wire("src", "sink", Grouping::global());
        let report = t.run();
        drop(out);
        assert_eq!(report.component("src").bytes_out, 80);
        assert_eq!(report.component("sink").bytes_in, 80);
        assert!(report.component("sink").queue_wait.count() == 10);
    }

    /// Panics on one specific value, passes the rest through.
    struct Minefield;
    impl Bolt<N> for Minefield {
        fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
            assert_ne!(msg.0, 13, "landed on the mine");
            out.emit(msg);
        }
    }

    #[test]
    fn panicking_bolt_is_isolated_and_reported() {
        let mut t = Topology::new();
        t.spout("src", (0..50u64).map(N));
        t.bolt("mine", 1, |_| Minefield);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        assert!(!report.is_clean());
        assert_eq!(report.failures.len(), 1);
        let (comp, task, msg) = &report.failures[0];
        assert_eq!(comp, "mine");
        assert_eq!(*task, 0);
        assert!(msg.contains("mine"), "panic message propagated: {msg}");
        // Tuples before the mine made it through; the rest were discarded.
        assert_eq!(out.lock().len(), 13);
    }

    #[test]
    fn panicking_bolt_does_not_stall_backpressured_upstream() {
        // Tiny channels: if the failed task stopped draining, the spout
        // would block forever and run() would hang.
        let mut t = Topology::new().with_channel_capacity(1);
        t.spout("src", (0..500u64).map(N));
        t.bolt("mine", 1, |_| Minefield);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        assert!(!report.is_clean());
        assert_eq!(out.lock().len(), 13);
    }

    #[test]
    fn panicking_spout_still_drains() {
        let source = (0..20u64).map(|i| {
            assert!(i < 7, "spout exploded");
            N(i)
        });
        let mut t = Topology::new();
        t.spout("src", source);
        let out = t.collector("sink");
        t.wire("src", "sink", Grouping::global());
        let report = t.run();
        assert!(!report.is_clean());
        assert_eq!(report.failures[0].0, "src");
        assert_eq!(out.lock().len(), 7);
    }

    #[test]
    fn clean_run_reports_no_failures() {
        let mut t = Topology::new();
        t.spout("src", (0..5u64).map(N));
        let _out = t.collector("sink");
        t.wire("src", "sink", Grouping::global());
        assert!(t.run().is_clean());
    }

    /// Tags each value with the incarnation of the instance that handled
    /// it, so tests can see exactly where a restart happened and that no
    /// tuple was lost or duplicated across it.
    struct IncarnationTag {
        incarnation: u64,
    }
    impl Bolt<N> for IncarnationTag {
        fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
            out.emit(N(msg.0 | (self.incarnation << 32)));
        }
    }

    fn incarnation_topology(plan: crate::FaultPlan) -> (Vec<(u64, u64)>, RunReport) {
        let spawned = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut t = Topology::new().with_fault_plan(plan);
        t.spout("src", (0..50u64).map(N));
        let spawned2 = Arc::clone(&spawned);
        t.bolt("tag", 1, move |_| IncarnationTag {
            incarnation: spawned2.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
        });
        let out = t.collector("sink");
        t.wire("src", "tag", Grouping::global());
        t.wire("tag", "sink", Grouping::global());
        let report = t.run();
        let tagged: Vec<(u64, u64)> = out
            .lock()
            .iter()
            .map(|n| (n.0 >> 32, n.0 & 0xFFFF_FFFF))
            .collect();
        (tagged, report)
    }

    #[test]
    fn injected_fault_restarts_and_redelivers_exactly_once() {
        let (tagged, report) = incarnation_topology(crate::FaultPlan::new().crash("tag", 0, 20));
        // Every tuple delivered exactly once, in order, across the crash.
        let values: Vec<u64> = tagged.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (0..50u64).collect::<Vec<_>>());
        // Tuples 0..20 handled by incarnation 0; the boundary tuple (20)
        // and everything after by the restarted incarnation 1.
        for &(inc, v) in &tagged {
            assert_eq!(inc, u64::from(v >= 20), "value {v} by incarnation {inc}");
        }
        assert_eq!(report.restarts, vec![("tag".to_owned(), 0, 1)]);
        assert_eq!(report.total_restarts(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].2.contains("injected fault"));
    }

    #[test]
    fn injected_fault_before_first_tuple() {
        let (tagged, report) = incarnation_topology(crate::FaultPlan::new().crash("tag", 0, 0));
        assert_eq!(tagged.len(), 50);
        // Incarnation 0 dies untouched; incarnation 1 handles everything.
        assert!(tagged.iter().all(|&(inc, _)| inc == 1));
        assert_eq!(report.total_restarts(), 1);
    }

    #[test]
    fn multiple_injected_faults_on_one_task() {
        let plan = crate::FaultPlan::new()
            .crash("tag", 0, 10)
            .crash("tag", 0, 30);
        let (tagged, report) = incarnation_topology(plan);
        let values: Vec<u64> = tagged.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (0..50u64).collect::<Vec<_>>());
        for &(inc, v) in &tagged {
            let expect = if v < 10 {
                0
            } else if v < 30 {
                1
            } else {
                2
            };
            assert_eq!(inc, expect, "value {v} by incarnation {inc}");
        }
        assert_eq!(report.total_restarts(), 2);
    }

    #[test]
    fn fault_point_past_stream_end_never_fires() {
        let (tagged, report) =
            incarnation_topology(crate::FaultPlan::new().crash("tag", 0, 1_000_000));
        assert_eq!(tagged.len(), 50);
        assert!(tagged.iter().all(|&(inc, _)| inc == 0));
        assert!(report.restarts.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn fault_plan_with_unknown_component_rejected() {
        let mut t = Topology::new();
        t.spout("src", (0..5u64).map(N));
        let _out = t.collector("sink");
        t.wire("src", "sink", Grouping::global());
        t.with_fault_plan(crate::FaultPlan::new().crash("nope", 0, 1))
            .run();
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn fault_plan_with_out_of_range_task_rejected() {
        let mut t = Topology::new();
        t.spout("src", (0..5u64).map(N));
        t.bolt("inc", 2, |_| AddOne);
        let _out = t.collector("sink");
        t.wire("src", "inc", Grouping::global());
        t.wire("inc", "sink", Grouping::global());
        t.with_fault_plan(crate::FaultPlan::new().crash("inc", 2, 1))
            .run();
    }

    #[test]
    fn supervised_restart_survives_organic_panic_without_redelivery() {
        let mut t = Topology::new().with_supervised_restarts(1);
        t.spout("src", (0..50u64).map(N));
        t.bolt("mine", 1, |_| Minefield);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        // The poison tuple (13) is consumed by the crash, not retried; the
        // restarted instance handles everything after it.
        let values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        let expect: Vec<u64> = (0..50u64).filter(|&v| v != 13).collect();
        assert_eq!(values, expect);
        assert_eq!(report.total_restarts(), 1);
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn organic_restart_budget_is_exhausted() {
        // Two mines, budget one: the second panic kills the task for good.
        struct TwoMines;
        impl Bolt<N> for TwoMines {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                assert!(msg.0 != 5 && msg.0 != 10, "mine at {}", msg.0);
                out.emit(msg);
            }
        }
        let mut t = Topology::new().with_supervised_restarts(1);
        t.spout("src", (0..20u64).map(N));
        t.bolt("mine", 1, |_| TwoMines);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        let values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        // 0..5 pass, 5 crashes (restart), 6..10 pass, 10 crashes (budget
        // spent → drain discards the rest).
        let expect: Vec<u64> = (0..10u64).filter(|&v| v != 5).collect();
        assert_eq!(values, expect);
        assert_eq!(report.total_restarts(), 1);
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    fn metrics_reconcile_across_wires() {
        // Multi-stage, multi-task chain: tuples emitted onto each wire must
        // equal tuples received from it, whether or not a fault fired.
        for plan in [
            crate::FaultPlan::new(),
            crate::FaultPlan::new().crash("stage2", 1, 7),
        ] {
            let mut t = Topology::new().with_fault_plan(plan);
            t.spout("src", (0..300u64).map(N));
            t.bolt("stage1", 2, |_| AddOne);
            t.bolt("stage2", 3, |_| AddOne);
            let out = t.collector("sink");
            t.wire("src", "stage1", Grouping::shuffle());
            t.wire("stage1", "stage2", Grouping::shuffle());
            t.wire("stage2", "sink", Grouping::global());
            let report = t.run();
            drop(out);
            let src = report.component("src");
            let s1 = report.component("stage1");
            let s2 = report.component("stage2");
            let sink = report.component("sink");
            assert_eq!(src.msgs_out, s1.msgs_in, "src→stage1 edge leaked");
            assert_eq!(s1.msgs_out, s2.msgs_in, "stage1→stage2 edge leaked");
            assert_eq!(s2.msgs_out, sink.msgs_in, "stage2→sink edge leaked");
            assert_eq!(src.bytes_out, s1.bytes_in, "src→stage1 bytes leaked");
            assert_eq!(s1.bytes_out, s2.bytes_in, "stage1→stage2 bytes leaked");
            assert_eq!(s2.bytes_out, sink.bytes_in, "stage2→sink bytes leaked");
            // With restart-on-injected-fault, nothing is drained: every
            // tuple entering a stage leaves it.
            assert_eq!(sink.msgs_in, 300);
        }
    }

    use crate::delivery::{Delivery, RetryConfig};
    use crate::link::{LinkFault, LinkFaultPlan};
    use std::time::Duration;

    /// A fast retry config so chaos tests don't sleep through default
    /// timeouts.
    fn fast_retry() -> RetryConfig {
        RetryConfig {
            base_timeout: Duration::from_micros(300),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(8),
        }
    }

    /// src → relay → sink with the relay→sink wire under test.
    fn relay_topology(n: u64, delivery: Delivery, plan: LinkFaultPlan) -> (Vec<u64>, RunReport) {
        let mut t = Topology::new().with_link_faults(plan);
        t.spout("src", (0..n).map(N));
        t.bolt("relay", 1, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "relay", Grouping::global());
        t.wire_with("relay", "sink", Grouping::global(), delivery);
        let report = t.run();
        let values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        (values, report)
    }

    #[test]
    fn best_effort_link_faults_are_observable_and_accounted() {
        // Pure drops on a best-effort wire: at-most-once, every loss
        // accounted by the link_dropped counter.
        let fault = LinkFault {
            drop_rate: 0.3,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
        };
        let plan = LinkFaultPlan::new(11).lossy("relay", "sink", fault);
        let (values, report) = relay_topology(300, Delivery::BestEffort, plan);
        let (dropped, _, _) = report.link_faults();
        assert!(dropped > 0, "a 30% drop rate must fire on 300 tuples");
        assert_eq!(values.len() as u64 + dropped, 300);
    }

    #[test]
    fn best_effort_duplication_double_delivers() {
        let fault = LinkFault {
            drop_rate: 0.0,
            dup_rate: 0.3,
            delay_rate: 0.0,
            max_delay: 1,
        };
        let plan = LinkFaultPlan::new(5).lossy("relay", "sink", fault);
        let (values, report) = relay_topology(300, Delivery::BestEffort, plan);
        let (_, duped, _) = report.link_faults();
        assert!(duped > 0);
        assert_eq!(values.len() as u64, 300 + duped);
    }

    #[test]
    fn best_effort_delay_reorders_within_bound() {
        let fault = LinkFault {
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.4,
            max_delay: 4,
        };
        let plan = LinkFaultPlan::new(9).lossy("relay", "sink", fault);
        let (values, report) = relay_topology(300, Delivery::BestEffort, plan);
        let (_, _, delayed) = report.link_faults();
        assert!(delayed > 0);
        // Nothing lost, everything displaced by at most max_delay.
        assert_eq!(values.len(), 300);
        for (pos, &v) in values.iter().enumerate() {
            let emitted = (v - 1) as i64; // AddOne offset
            assert!(
                (pos as i64 - emitted).abs() <= 4,
                "value {v} displaced from {emitted} to {pos}"
            );
        }
    }

    #[test]
    fn at_least_once_masks_chaos_for_100_seeds() {
        // The acceptance bar: over ≥100 seeds, a seeded LinkFaultPlan on an
        // AtLeastOnce wire yields output identical to the fault-free run —
        // not just as a multiset: the single-sender FIFO order survives
        // too.
        let n = 60u64;
        let expect: Vec<u64> = (1..=n).collect();
        for seed in 0..100 {
            let plan = LinkFaultPlan::new(seed).lossy("relay", "sink", LinkFault::seeded(seed));
            let (values, report) = relay_topology(n, Delivery::AtLeastOnce(fast_retry()), plan);
            assert_eq!(values, expect, "seed {seed} corrupted the stream");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn reliable_wire_counts_retries_and_dup_drops() {
        // Heavy chaos: drops force retries, dups force receiver dedup.
        let fault = LinkFault {
            drop_rate: 0.35,
            dup_rate: 0.35,
            delay_rate: 0.2,
            max_delay: 3,
        };
        let plan = LinkFaultPlan::new(21).lossy("relay", "sink", fault);
        let (values, report) = relay_topology(200, Delivery::AtLeastOnce(fast_retry()), plan);
        assert_eq!(values, (1..=200u64).collect::<Vec<_>>());
        assert!(report.total_retries() > 0, "drops must trigger retries");
        assert!(report.total_dup_drops() > 0, "dups must be deduped");
        assert!(report.max_backoff() >= fast_retry().base_timeout);
        // Receiver-side msgs_in counts only delivered tuples, so wire
        // accounting still reconciles exactly.
        assert_eq!(report.component("sink").msgs_in, 200);
        assert_eq!(report.component("relay").msgs_out, 200);
    }

    #[test]
    fn at_least_once_composes_with_injected_crashes() {
        // A task crash mid-stream and a lossy reliable input wire at the
        // same time: restart redelivery plus link-level retry/dedup must
        // still produce the exact stream.
        let plan = LinkFaultPlan::new(3).lossy("relay", "sink", LinkFault::seeded(3));
        let mut t = Topology::new()
            .with_link_faults(plan)
            .with_fault_plan(crate::FaultPlan::new().crash("sink", 0, 25));
        t.spout("src", (0..80u64).map(N));
        t.bolt("relay", 1, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "relay", Grouping::global());
        t.wire_with(
            "relay",
            "sink",
            Grouping::global(),
            Delivery::AtLeastOnce(fast_retry()),
        );
        let report = t.run();
        let values: Vec<u64> = out.lock().iter().map(|n| n.0).collect();
        assert_eq!(values, (1..=80u64).collect::<Vec<_>>());
        assert_eq!(report.total_restarts(), 1);
    }

    #[test]
    fn reliable_multi_task_wire_is_exact_per_destination() {
        // Direct routing from one sender to 3 destinations over a lossy
        // reliable wire: per-(link, dest) sequence numbers must keep every
        // destination's stream exact and in order.
        struct Route;
        impl Bolt<N> for Route {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                let target = (msg.0 % 3) as usize;
                out.emit_direct(target, msg);
            }
        }
        struct Tag;
        impl Bolt<N> for Tag {
            fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
                out.emit(N(msg.0 * 100 + out.task_index() as u64));
            }
        }
        let plan = LinkFaultPlan::new(17).lossy("route", "worker", LinkFault::seeded(17));
        let mut t = Topology::new().with_link_faults(plan);
        t.spout("src", (0..90u64).map(N));
        t.bolt("route", 1, |_| Route);
        t.bolt("worker", 3, |_| Tag);
        let out = t.collector("sink");
        t.wire("src", "route", Grouping::global());
        t.wire_with(
            "route",
            "worker",
            Grouping::direct(),
            Delivery::AtLeastOnce(fast_retry()),
        );
        t.wire("worker", "sink", Grouping::global());
        t.run();
        let mut seen: Vec<u64> = out.lock().iter().map(|n| n.0 / 100).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..90u64).collect::<Vec<_>>());
        for n in out.lock().iter() {
            assert_eq!(n.0 % 100, (n.0 / 100) % 3, "routed to the wrong task");
        }
    }

    #[test]
    fn poisoned_tuple_drop_is_counted() {
        // Satellite regression: the tuple consumed by an organic panic is
        // no longer a silent loss — dropped_poisoned traces it.
        let mut t = Topology::new().with_supervised_restarts(1);
        t.spout("src", (0..50u64).map(N));
        t.bolt("mine", 1, |_| Minefield);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        assert_eq!(out.lock().len(), 49);
        assert_eq!(report.dropped_poisoned(), 1);
        assert_eq!(report.component("mine").dropped_poisoned, 1);
        // The accounting closes the loop: in + poisoned drops == out for a
        // 1:1 bolt.
        let mine = report.component("mine");
        assert_eq!(mine.msgs_in, mine.msgs_out + mine.dropped_poisoned);
    }

    #[test]
    fn poisoned_drops_counted_even_without_restart_budget() {
        let mut t = Topology::new(); // budget 0: task dies on first panic
        t.spout("src", (0..50u64).map(N));
        t.bolt("mine", 1, |_| Minefield);
        let out = t.collector("sink");
        t.wire("src", "mine", Grouping::global());
        t.wire("mine", "sink", Grouping::global());
        let report = t.run();
        drop(out);
        assert_eq!(report.dropped_poisoned(), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent wire")]
    fn link_plan_targeting_unknown_wire_rejected() {
        let mut t = Topology::new();
        t.spout("src", (0..5u64).map(N));
        let _out = t.collector("sink");
        t.wire("src", "sink", Grouping::global());
        t.with_link_faults(LinkFaultPlan::new(0).lossy("sink", "src", LinkFault::seeded(0)))
            .run();
    }

    #[test]
    #[should_panic(expected = "retries could never succeed")]
    fn reliable_wire_dropping_everything_rejected() {
        let fault = LinkFault {
            drop_rate: 1.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
        };
        let mut t = Topology::new();
        t.spout("src", (0..5u64).map(N));
        let _out = t.collector("sink");
        t.wire_with(
            "src",
            "sink",
            Grouping::global(),
            Delivery::AtLeastOnce(RetryConfig::default()),
        );
        t.with_link_faults(LinkFaultPlan::new(0).lossy("src", "sink", fault))
            .run();
    }

    #[test]
    #[should_panic(expected = "no inbound wire")]
    fn dangling_bolt_rejected() {
        let mut t = Topology::new();
        t.spout("src", std::iter::empty::<N>());
        t.bolt("orphan", 1, |_| AddOne);
        t.run();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        let mut t = Topology::new();
        t.spout("src", std::iter::empty::<N>());
        t.bolt("a", 1, |_| AddOne);
        t.bolt("b", 1, |_| AddOne);
        t.wire("src", "a", Grouping::global());
        t.wire("a", "b", Grouping::global());
        t.wire("b", "a", Grouping::global());
        t.run();
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.spout("x", std::iter::empty::<N>());
        t.bolt("x", 1, |_| AddOne);
    }

    #[test]
    #[should_panic(expected = "cannot wire into a spout")]
    fn wiring_into_spout_rejected() {
        let mut t = Topology::new();
        t.spout("a", std::iter::empty::<N>());
        t.spout("b", std::iter::empty::<N>());
        t.wire("a", "b", Grouping::global());
    }
}
