//! Per-wire delivery semantics.
//!
//! Every wire defaults to [`Delivery::BestEffort`]: tuples are pushed once
//! into the destination channel and never tracked. Over a perfect
//! in-process channel that is exactly-once FIFO; over a wire made lossy by
//! a [`LinkFaultPlan`](crate::LinkFaultPlan) it degrades to at-most-once
//! with reordering.
//!
//! [`Delivery::AtLeastOnce`] upgrades a wire to a reliable protocol:
//!
//! * the sender stamps each tuple with a dense per-(sender task, receiver
//!   task) sequence number and keeps it until acknowledged;
//! * the receiver acknowledges the first receipt of each sequence number,
//!   discards duplicates, and buffers out-of-order arrivals so the bolt
//!   sees strictly in-order input;
//! * the sender retransmits unacknowledged tuples after a timeout, backing
//!   off exponentially ([`RetryConfig`]), and blocks at end-of-stream until
//!   every tuple is acknowledged — only then is the EOS marker sent.
//!
//! The combination yields *effectively-once FIFO* delivery to the bolt even
//! when the link drops, duplicates, or reorders transmissions: every
//! sequence number is eventually delivered (retry), delivered at most once
//! to the bolt (dedup), and in order (reorder buffer). Because all data is
//! acknowledged before EOS, and the underlying channel itself is FIFO, no
//! tuple can arrive after the EOS marker.

use std::time::Duration;

/// Delivery semantics of one wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Delivery {
    /// Fire-and-forget: exactly-once over a perfect channel, at-most-once
    /// (and possibly reordered) over a lossy one. The default; adds no
    /// tracking overhead.
    #[default]
    BestEffort,
    /// Sequence numbers + acks + retry + receiver dedup: the bolt observes
    /// effectively-once FIFO input even over a lossy link.
    AtLeastOnce(RetryConfig),
}

impl Delivery {
    /// Whether this wire runs the reliable protocol.
    pub fn is_reliable(&self) -> bool {
        matches!(self, Delivery::AtLeastOnce(_))
    }
}

/// Retransmission policy for an [`Delivery::AtLeastOnce`] wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Wait this long after a transmission before the first retry.
    pub base_timeout: Duration,
    /// Multiply the timeout by this (integer) factor after every retry of
    /// the same tuple.
    pub backoff_factor: u32,
    /// Never wait longer than this between retries of one tuple.
    pub max_timeout: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            base_timeout: Duration::from_millis(2),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(64),
        }
    }
}

impl RetryConfig {
    /// The nominal retry timeout after `retries` previous retransmissions
    /// of a tuple: `base * factor^retries`, capped at `max_timeout`.
    pub(crate) fn timeout_after(&self, retries: u32) -> Duration {
        let factor = self.backoff_factor.max(1).saturating_pow(retries.min(16));
        (self.base_timeout * factor).min(self.max_timeout)
    }

    /// The *jittered* retry timeout actually used by the sender: a
    /// deterministic value in `[nominal/2, nominal]`, keyed on `salt`.
    ///
    /// When a lossy link heals, every unacked tuple on the wire would
    /// otherwise retransmit at exactly the same instant (all timers were
    /// armed by the same backoff schedule), stampeding the receiver.
    /// Spreading each tuple's timer over the half-open lower half of the
    /// nominal timeout de-synchronizes the herd. The jitter is a pure
    /// function of `salt` — callers key it on (link, destination, sequence
    /// number, retry count) — so the deterministic simulator computes the
    /// identical deadline whether it is *checking* for an overdue tuple or
    /// *idle-jumping* the virtual clock to the next deadline.
    pub(crate) fn jittered_timeout(&self, retries: u32, salt: u64) -> Duration {
        let nominal = self.timeout_after(retries).as_nanos() as u64;
        // splitmix64 finalizer: uncorrelated bits from structured salts.
        let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // nominal/2 + uniform draw from [0, nominal/2].
        let half = nominal / 2;
        let jitter = if half == 0 { 0 } else { z % (half + 1) };
        Duration::from_nanos(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = RetryConfig {
            base_timeout: Duration::from_millis(1),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(10),
        };
        assert_eq!(cfg.timeout_after(0), Duration::from_millis(1));
        assert_eq!(cfg.timeout_after(1), Duration::from_millis(2));
        assert_eq!(cfg.timeout_after(2), Duration::from_millis(4));
        assert_eq!(cfg.timeout_after(3), Duration::from_millis(8));
        assert_eq!(cfg.timeout_after(4), Duration::from_millis(10));
        assert_eq!(cfg.timeout_after(30), Duration::from_millis(10));
    }

    #[test]
    fn jitter_stays_within_half_to_full_nominal() {
        let cfg = RetryConfig::default();
        for retries in 0..8u32 {
            let nominal = cfg.timeout_after(retries);
            for salt in 0..500u64 {
                let j = cfg.jittered_timeout(retries, salt.wrapping_mul(0x5851_f42d_4c95_7f2d));
                assert!(
                    j >= nominal / 2 && j <= nominal,
                    "retries={retries} salt={salt}: {j:?} outside [{:?}, {nominal:?}]",
                    nominal / 2
                );
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_and_salt_sensitive() {
        let cfg = RetryConfig::default();
        assert_eq!(
            cfg.jittered_timeout(3, 12345),
            cfg.jittered_timeout(3, 12345)
        );
        // Different salts must not all collapse onto one deadline.
        let distinct: std::collections::BTreeSet<Duration> =
            (0..64u64).map(|s| cfg.jittered_timeout(3, s)).collect();
        assert!(distinct.len() > 32, "jitter barely varies: {distinct:?}");
    }

    #[test]
    fn zero_timeout_yields_zero_jitter() {
        let cfg = RetryConfig {
            base_timeout: Duration::ZERO,
            backoff_factor: 2,
            max_timeout: Duration::ZERO,
        };
        assert_eq!(cfg.jittered_timeout(0, 99), Duration::ZERO);
    }

    #[test]
    fn default_is_best_effort() {
        assert_eq!(Delivery::default(), Delivery::BestEffort);
        assert!(!Delivery::BestEffort.is_reliable());
        assert!(Delivery::AtLeastOnce(RetryConfig::default()).is_reliable());
    }
}
