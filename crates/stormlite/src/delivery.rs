//! Per-wire delivery semantics.
//!
//! Every wire defaults to [`Delivery::BestEffort`]: tuples are pushed once
//! into the destination channel and never tracked. Over a perfect
//! in-process channel that is exactly-once FIFO; over a wire made lossy by
//! a [`LinkFaultPlan`](crate::LinkFaultPlan) it degrades to at-most-once
//! with reordering.
//!
//! [`Delivery::AtLeastOnce`] upgrades a wire to a reliable protocol:
//!
//! * the sender stamps each tuple with a dense per-(sender task, receiver
//!   task) sequence number and keeps it until acknowledged;
//! * the receiver acknowledges the first receipt of each sequence number,
//!   discards duplicates, and buffers out-of-order arrivals so the bolt
//!   sees strictly in-order input;
//! * the sender retransmits unacknowledged tuples after a timeout, backing
//!   off exponentially ([`RetryConfig`]), and blocks at end-of-stream until
//!   every tuple is acknowledged — only then is the EOS marker sent.
//!
//! The combination yields *effectively-once FIFO* delivery to the bolt even
//! when the link drops, duplicates, or reorders transmissions: every
//! sequence number is eventually delivered (retry), delivered at most once
//! to the bolt (dedup), and in order (reorder buffer). Because all data is
//! acknowledged before EOS, and the underlying channel itself is FIFO, no
//! tuple can arrive after the EOS marker.

use std::time::Duration;

/// Delivery semantics of one wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Delivery {
    /// Fire-and-forget: exactly-once over a perfect channel, at-most-once
    /// (and possibly reordered) over a lossy one. The default; adds no
    /// tracking overhead.
    #[default]
    BestEffort,
    /// Sequence numbers + acks + retry + receiver dedup: the bolt observes
    /// effectively-once FIFO input even over a lossy link.
    AtLeastOnce(RetryConfig),
}

impl Delivery {
    /// Whether this wire runs the reliable protocol.
    pub fn is_reliable(&self) -> bool {
        matches!(self, Delivery::AtLeastOnce(_))
    }
}

/// Retransmission policy for an [`Delivery::AtLeastOnce`] wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Wait this long after a transmission before the first retry.
    pub base_timeout: Duration,
    /// Multiply the timeout by this (integer) factor after every retry of
    /// the same tuple.
    pub backoff_factor: u32,
    /// Never wait longer than this between retries of one tuple.
    pub max_timeout: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            base_timeout: Duration::from_millis(2),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(64),
        }
    }
}

impl RetryConfig {
    /// The retry timeout after `retries` previous retransmissions of a
    /// tuple: `base * factor^retries`, capped at `max_timeout`.
    pub(crate) fn timeout_after(&self, retries: u32) -> Duration {
        let factor = self.backoff_factor.max(1).saturating_pow(retries.min(16));
        (self.base_timeout * factor).min(self.max_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = RetryConfig {
            base_timeout: Duration::from_millis(1),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(10),
        };
        assert_eq!(cfg.timeout_after(0), Duration::from_millis(1));
        assert_eq!(cfg.timeout_after(1), Duration::from_millis(2));
        assert_eq!(cfg.timeout_after(2), Duration::from_millis(4));
        assert_eq!(cfg.timeout_after(3), Duration::from_millis(8));
        assert_eq!(cfg.timeout_after(4), Duration::from_millis(10));
        assert_eq!(cfg.timeout_after(30), Duration::from_millis(10));
    }

    #[test]
    fn default_is_best_effort() {
        assert_eq!(Delivery::default(), Delivery::BestEffort);
        assert!(!Delivery::BestEffort.is_reliable());
        assert!(Delivery::AtLeastOnce(RetryConfig::default()).is_reliable());
    }
}
