//! stormlite — a miniature Storm-shaped stream processing engine.
//!
//! The paper runs its topology (dispatcher → joiners → sink) on Apache
//! Storm. The join algorithms only rely on Storm's dataflow contract:
//! named components with parallel tasks, tuples routed between them by a
//! grouping (shuffle / fields / broadcast / direct / global), per-edge FIFO
//! order, and a completion signal. stormlite provides exactly that,
//! in-process: one OS thread per task, bounded crossbeam channels between
//! them (providing natural backpressure), an end-of-stream protocol, and
//! per-task metrics (throughput, queue wait, bytes moved).
//!
//! ```
//! use stormlite::{Bolt, Grouping, Message, Outbox, Topology};
//!
//! #[derive(Clone)]
//! struct Num(u64);
//! impl Message for Num {}
//!
//! struct Double;
//! impl Bolt<Num> for Double {
//!     fn execute(&mut self, msg: Num, out: &mut Outbox<Num>) {
//!         out.emit(Num(msg.0 * 2));
//!     }
//! }
//!
//! let mut t = Topology::new();
//! t.spout("src", (0..10u64).map(Num));
//! t.bolt("double", 2, |_task| Double);
//! let collected = t.collector("sink");
//! t.wire("src", "double", Grouping::shuffle());
//! t.wire("double", "sink", Grouping::global());
//! let report = t.run();
//! assert_eq!(collected.lock().len(), 10);
//! assert!(report.total_processed() >= 10);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod delivery;
pub mod fault;
pub mod grouping;
pub mod link;
pub mod message;
pub mod metrics;
pub mod sim;
pub mod topology;

pub use clock::{Clock, Timestamp};
pub use delivery::{Delivery, RetryConfig};
pub use fault::{FaultPlan, FaultSpec};
pub use grouping::Grouping;
pub use link::{LinkFault, LinkFaultPlan, LinkFaultSpec};
pub use message::{BarrierAligner, Bolt, CollectorBolt, Message, Outbox};
pub use metrics::{LatencyHistogram, RunReport, TaskMetrics};
pub use obs::{RunTrace, Stage, TraceConfig, TraceSink};
pub use sim::{Scheduler, SimConfig, SimRun, Transcript};
pub use topology::Topology;
