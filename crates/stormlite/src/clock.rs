//! The time source every latency measurement flows through.
//!
//! stormlite never calls [`std::time::Instant::now`] on a metrics path
//! directly; tasks read the topology's [`Clock`] instead. A real run uses a
//! [wall clock](Clock::wall) anchored at topology start, so timestamps are
//! nanoseconds of real elapsed run time. A simulated run (see
//! [`crate::sim`]) uses a *virtual* clock that only moves when the
//! scheduler advances it — queue-wait histograms, retry backoff timers and
//! end-to-end latencies then measure deterministic virtual time, and the
//! same seed reproduces the same numbers bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point in run time: nanoseconds since the topology started, on
/// whichever clock ([wall](Clock::wall) or virtual) the run uses.
///
/// Timestamps are plain ordered integers, so they are `Copy`, comparable,
/// and serialize trivially into transcripts. `Timestamp::default()` is the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The start of the run.
    pub const ZERO: Timestamp = Timestamp(0);

    /// A timestamp `ns` nanoseconds into the run.
    pub fn from_nanos(ns: u64) -> Self {
        Timestamp(ns)
    }

    /// Nanoseconds since the start of the run.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp shifted `d` later.
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

enum ClockInner {
    /// Real time, measured from the anchor instant (topology start).
    Wall(Instant),
    /// Virtual time in nanoseconds, advanced explicitly by the simulation
    /// scheduler and frozen everywhere else.
    Virtual(AtomicU64),
}

/// A cloneable handle on the run's time source.
///
/// All clones observe the same time: the handle is an `Arc` internally, so
/// every task of a topology shares one clock. Reading the clock is cheap
/// (one `Instant::elapsed` or one atomic load).
#[derive(Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.inner {
            ClockInner::Wall(_) => write!(f, "Clock::Wall(t={:?})", self.now()),
            ClockInner::Virtual(_) => write!(f, "Clock::Virtual(t={:?})", self.now()),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::wall()
    }
}

impl Clock {
    /// A wall clock anchored at the moment of this call; [`now`](Self::now)
    /// returns real elapsed time since then.
    pub fn wall() -> Self {
        Clock {
            inner: Arc::new(ClockInner::Wall(Instant::now())),
        }
    }

    /// A virtual clock frozen at [`Timestamp::ZERO`]. Time only moves via
    /// [`advance`](Self::advance) / [`advance_to`](Self::advance_to) — the
    /// simulation scheduler owns that.
    pub fn virtual_start() -> Self {
        Clock {
            inner: Arc::new(ClockInner::Virtual(AtomicU64::new(0))),
        }
    }

    /// The current run time.
    pub fn now(&self) -> Timestamp {
        match &*self.inner {
            ClockInner::Wall(anchor) => {
                Timestamp(anchor.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            }
            ClockInner::Virtual(ns) => Timestamp(ns.load(Ordering::Relaxed)),
        }
    }

    /// Whether this is a virtual (simulation) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(&*self.inner, ClockInner::Virtual(_))
    }

    /// Moves a virtual clock forward by `d`. No-op on a wall clock (real
    /// time cannot be steered).
    pub fn advance(&self, d: Duration) {
        if let ClockInner::Virtual(ns) = &*self.inner {
            ns.fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        }
    }

    /// Moves a virtual clock forward to `t` if `t` is in the future; never
    /// moves time backwards. No-op on a wall clock.
    pub fn advance_to(&self, t: Timestamp) {
        if let ClockInner::Virtual(ns) = &*self.inner {
            ns.fetch_max(t.0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_frozen_until_advanced() {
        let c = Clock::virtual_start();
        assert!(c.is_virtual());
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now(), Timestamp::from_nanos(5_000));
        c.advance_to(Timestamp::from_nanos(3_000)); // backwards: no-op
        assert_eq!(c.now(), Timestamp::from_nanos(5_000));
        c.advance_to(Timestamp::from_nanos(9_000));
        assert_eq!(c.now(), Timestamp::from_nanos(9_000));
    }

    #[test]
    fn clones_share_time() {
        let c = Clock::virtual_start();
        let c2 = c.clone();
        c.advance(Duration::from_nanos(42));
        assert_eq!(c2.now().as_nanos(), 42);
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let c = Clock::wall();
        assert!(!c.is_virtual());
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now() > t0);
        c.advance(Duration::from_secs(3600)); // no-op on wall clocks
        assert!(c.now().saturating_since(t0) < Duration::from_secs(60));
    }

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp::from_nanos(1_000);
        let b = a.plus(Duration::from_nanos(500));
        assert_eq!(b.as_nanos(), 1_500);
        assert_eq!(b.saturating_since(a), Duration::from_nanos(500));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }
}
