//! Per-task execution metrics and a log-bucket latency histogram.
//!
//! Nothing in this module reads the wall clock. Every duration recorded
//! here (queue wait, busy time, end-to-end elapsed) is measured by the
//! running topology through its [`Clock`](crate::Clock) — so under
//! [`Scheduler::Sim`](crate::Scheduler::Sim) all reported latencies are
//! *virtual-time* readings: deterministic, seed-reproducible, and counted
//! in scheduler ticks rather than host nanoseconds. A threaded run uses a
//! wall-anchored clock and reports real time through the same types.

use std::fmt;
use std::time::Duration;

// The histogram now lives in the `obs` crate (shared with the metrics
// registry and exporters); re-exported here so existing `stormlite`
// paths keep working.
pub use obs::LatencyHistogram;

/// Counters for one task of one component.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    /// Data tuples received.
    pub msgs_in: u64,
    /// Data tuples emitted.
    pub msgs_out: u64,
    /// Bytes received (per [`Message::wire_bytes`](crate::Message::wire_bytes)).
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// Wall time spent inside `execute`.
    pub busy: Duration,
    /// Time tuples spent waiting in this task's input queue.
    pub queue_wait: LatencyHistogram,
    /// Retransmissions sent on this task's
    /// [`AtLeastOnce`](crate::Delivery::AtLeastOnce) outgoing wires.
    pub retries: u64,
    /// Duplicate transmissions discarded by this task's receiver-side
    /// dedup (reliable wires only).
    pub dup_drops: u64,
    /// Transmissions dropped by injected link faults on outgoing wires.
    pub link_dropped: u64,
    /// Transmissions duplicated by injected link faults.
    pub link_duped: u64,
    /// Transmissions delayed (reordered) by injected link faults.
    pub link_delayed: u64,
    /// Input records shed by this task's overload policy
    /// (see [`Outbox::record_shed`](crate::Outbox::record_shed)).
    pub shed: u64,
    /// Tuples consumed by an organic bolt panic and never redelivered
    /// (see [`Topology::with_supervised_restarts`](crate::Topology::with_supervised_restarts)).
    pub dropped_poisoned: u64,
    /// Largest retry backoff reached on this task's reliable wires.
    pub max_backoff: Duration,
    /// Checkpoint snapshots captured by this task
    /// (see [`Outbox::record_checkpoint`](crate::Outbox::record_checkpoint)).
    pub checkpoints: u64,
    /// Total serialized bytes of this task's checkpoint snapshots.
    pub checkpoint_bytes: u64,
    /// End-to-end latency of checkpoint epochs this task completed
    /// (barrier injection → last snapshot published); recorded only on the
    /// task whose snapshot completed the epoch.
    pub checkpoint_latency: LatencyHistogram,
    /// Time barrier control tuples stalled between upstream injection and
    /// this task aligning on them.
    pub barrier_stall: LatencyHistogram,
}

impl TaskMetrics {
    /// Adds another task's counters into this one.
    pub fn merge(&mut self, other: &TaskMetrics) {
        self.msgs_in += other.msgs_in;
        self.msgs_out += other.msgs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.busy += other.busy;
        self.queue_wait.merge(&other.queue_wait);
        self.retries += other.retries;
        self.dup_drops += other.dup_drops;
        self.link_dropped += other.link_dropped;
        self.link_duped += other.link_duped;
        self.link_delayed += other.link_delayed;
        self.shed += other.shed;
        self.dropped_poisoned += other.dropped_poisoned;
        self.max_backoff = self.max_backoff.max(other.max_backoff);
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoint_latency.merge(&other.checkpoint_latency);
        self.barrier_stall.merge(&other.barrier_stall);
    }
}

/// The outcome of a topology run.
#[derive(Debug)]
pub struct RunReport {
    /// `(component, task_index, metrics)` for every task.
    pub tasks: Vec<(String, usize, TaskMetrics)>,
    /// Tasks that panicked: `(component, task_index, panic message)`.
    /// Injected faults are recorded here too. A failed task that is out of
    /// restart budget drains (and discards) its remaining input, so the
    /// topology always completes; results are partial unless the
    /// application layer recovers the lost state.
    pub failures: Vec<(String, usize, String)>,
    /// Tasks that were rebuilt after a crash:
    /// `(component, task_index, restart count)`. Only restarted tasks
    /// appear.
    pub restarts: Vec<(String, usize, u64)>,
    /// Wall-clock duration from launch to full drain.
    pub elapsed: Duration,
}

impl RunReport {
    /// Whether every task completed without panicking.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total task restarts across the run (injected and organic).
    pub fn total_restarts(&self) -> u64 {
        self.restarts.iter().map(|(_, _, n)| n).sum()
    }

    /// Sum of tuples processed across all tasks.
    pub fn total_processed(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.msgs_in).sum()
    }

    /// Sum of tuples emitted across all tasks.
    pub fn total_emitted(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.msgs_out).sum()
    }

    /// Sum of bytes moved between tasks (counted at emission).
    pub fn total_bytes(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.bytes_out).sum()
    }

    /// Records shed by overload policies across all tasks. Every shed
    /// record is an explicit, accounted recall loss — never a silent drop.
    pub fn shed(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.shed).sum()
    }

    /// Tuples consumed by organic bolt panics across all tasks (the
    /// poisoned tuple is intentionally not redelivered; this counter is
    /// its trace).
    pub fn dropped_poisoned(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.dropped_poisoned).sum()
    }

    /// Retransmissions across all reliable wires.
    pub fn total_retries(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.retries).sum()
    }

    /// Duplicate transmissions discarded by receiver-side dedup across all
    /// tasks.
    pub fn total_dup_drops(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.dup_drops).sum()
    }

    /// Transmissions affected by injected link faults across all tasks:
    /// `(dropped, duplicated, delayed)`.
    pub fn link_faults(&self) -> (u64, u64, u64) {
        self.tasks.iter().fold((0, 0, 0), |(d, u, l), (_, _, m)| {
            (d + m.link_dropped, u + m.link_duped, l + m.link_delayed)
        })
    }

    /// Largest retry backoff reached on any task's reliable wires.
    pub fn max_backoff(&self) -> Duration {
        self.tasks
            .iter()
            .map(|(_, _, m)| m.max_backoff)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Checkpoint snapshots captured across all tasks.
    pub fn checkpoints(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.checkpoints).sum()
    }

    /// Total serialized snapshot bytes across all tasks.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.checkpoint_bytes).sum()
    }

    /// Merged per-epoch checkpoint latency histogram (barrier injection →
    /// epoch complete) across all tasks.
    pub fn checkpoint_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (_, _, m) in &self.tasks {
            h.merge(&m.checkpoint_latency);
        }
        h
    }

    /// Merged barrier-alignment stall histogram across all tasks.
    pub fn barrier_stall(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (_, _, m) in &self.tasks {
            h.merge(&m.barrier_stall);
        }
        h
    }

    /// Aggregated metrics of one component across its tasks.
    pub fn component(&self, name: &str) -> TaskMetrics {
        let mut agg = TaskMetrics::default();
        for (comp, _, m) in &self.tasks {
            if comp == name {
                agg.merge(m);
            }
        }
        agg
    }

    /// Samples every counter and histogram of this report into an
    /// exportable [`obs::MetricsSnapshot`], one sample per task labelled
    /// `comp`/`task`, plus run-level totals. Iteration is metric-major
    /// (all tasks of one metric before the next) so same-name samples are
    /// adjacent, as the Prometheus exposition format requires; task order
    /// follows [`RunReport::tasks`], which both executors assemble in
    /// deterministic task order — so the rendered text is byte-stable.
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        // (name, help, per-task getter) rows of the export table.
        type CounterRow = (&'static str, &'static str, fn(&TaskMetrics) -> u64);
        type HistRow = (
            &'static str,
            &'static str,
            fn(&TaskMetrics) -> &LatencyHistogram,
        );
        let mut snap = obs::MetricsSnapshot::new();
        let counters: [CounterRow; 14] = [
            ("dssj_msgs_in_total", "Data tuples received", |m| m.msgs_in),
            ("dssj_msgs_out_total", "Data tuples emitted", |m| m.msgs_out),
            ("dssj_bytes_in_total", "Bytes received", |m| m.bytes_in),
            ("dssj_bytes_out_total", "Bytes emitted", |m| m.bytes_out),
            (
                "dssj_busy_ns_total",
                "Nanoseconds spent inside execute",
                |m| m.busy.as_nanos().min(u128::from(u64::MAX)) as u64,
            ),
            (
                "dssj_retries_total",
                "Retransmissions on reliable wires",
                |m| m.retries,
            ),
            (
                "dssj_dup_drops_total",
                "Duplicates discarded by receiver dedup",
                |m| m.dup_drops,
            ),
            (
                "dssj_link_dropped_total",
                "Transmissions dropped by link faults",
                |m| m.link_dropped,
            ),
            (
                "dssj_link_duped_total",
                "Transmissions duplicated by link faults",
                |m| m.link_duped,
            ),
            (
                "dssj_link_delayed_total",
                "Transmissions delayed by link faults",
                |m| m.link_delayed,
            ),
            ("dssj_shed_total", "Records shed by overload policy", |m| {
                m.shed
            }),
            (
                "dssj_dropped_poisoned_total",
                "Tuples consumed by organic panics",
                |m| m.dropped_poisoned,
            ),
            (
                "dssj_checkpoints_total",
                "Checkpoint snapshots captured",
                |m| m.checkpoints,
            ),
            (
                "dssj_checkpoint_bytes_total",
                "Serialized checkpoint bytes",
                |m| m.checkpoint_bytes,
            ),
        ];
        for (name, help, get) in counters {
            for (comp, task, m) in &self.tasks {
                let task = task.to_string();
                snap.push_counter(name, help, &[("comp", comp), ("task", &task)], get(m));
            }
        }
        for (comp, task, m) in &self.tasks {
            let task = task.to_string();
            snap.push_gauge(
                "dssj_max_backoff_ns",
                "Largest retry backoff reached",
                &[("comp", comp), ("task", &task)],
                m.max_backoff.as_nanos().min(i64::MAX as u128) as i64,
            );
        }
        let hists: [HistRow; 3] = [
            ("dssj_queue_wait_ns", "Input queue wait latency", |m| {
                &m.queue_wait
            }),
            (
                "dssj_checkpoint_latency_ns",
                "Per-epoch checkpoint latency",
                |m| &m.checkpoint_latency,
            ),
            ("dssj_barrier_stall_ns", "Barrier alignment stall", |m| {
                &m.barrier_stall
            }),
        ];
        for (name, help, get) in hists {
            for (comp, task, m) in &self.tasks {
                let task = task.to_string();
                snap.push_histogram(name, help, &[("comp", comp), ("task", &task)], get(m));
            }
        }
        snap.push_counter(
            "dssj_task_failures_total",
            "Task panics across the run (injected and organic)",
            &[],
            self.failures.len() as u64,
        );
        snap.push_counter(
            "dssj_task_restarts_total",
            "Task restarts across the run",
            &[],
            self.total_restarts(),
        );
        snap.push_gauge(
            "dssj_run_elapsed_ns",
            "Run duration from launch to full drain",
            &[],
            self.elapsed.as_nanos().min(i64::MAX as u128) as i64,
        );
        snap
    }

    /// Per-task `msgs_in` of one component (load-balance reporting).
    pub fn component_task_loads(&self, name: &str) -> Vec<u64> {
        let mut loads: Vec<(usize, u64)> = self
            .tasks
            .iter()
            .filter(|(comp, _, _)| comp == name)
            .map(|(_, task, m)| (*task, m.msgs_in))
            .collect();
        loads.sort_unstable();
        loads.into_iter().map(|(_, l)| l).collect()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>5} {:>12} {:>12} {:>12} {:>10}",
            "component", "task", "msgs_in", "msgs_out", "bytes_out", "busy_ms"
        )?;
        for (comp, task, m) in &self.tasks {
            writeln!(
                f,
                "{:<14} {:>5} {:>12} {:>12} {:>12} {:>10.1}",
                comp,
                task,
                m.msgs_in,
                m.msgs_out,
                m.bytes_out,
                m.busy.as_secs_f64() * 1000.0
            )?;
        }
        write!(f, "elapsed: {:.1} ms", self.elapsed.as_secs_f64() * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregation() {
        let m1 = TaskMetrics {
            msgs_in: 5,
            bytes_out: 100,
            ..TaskMetrics::default()
        };
        let m2 = TaskMetrics {
            msgs_in: 7,
            bytes_out: 50,
            ..TaskMetrics::default()
        };
        let report = RunReport {
            tasks: vec![
                ("joiner".into(), 1, m2),
                ("joiner".into(), 0, m1),
                ("sink".into(), 0, TaskMetrics::default()),
            ],
            failures: Vec::new(),
            restarts: Vec::new(),
            elapsed: Duration::from_millis(1),
        };
        assert!(report.is_clean());
        assert_eq!(report.total_restarts(), 0);
        assert_eq!(report.total_processed(), 12);
        assert_eq!(report.component("joiner").msgs_in, 12);
        assert_eq!(report.component_task_loads("joiner"), vec![5, 7]);
        assert_eq!(report.total_bytes(), 150);
        let text = report.to_string();
        assert!(text.contains("joiner"));
    }

    /// Every [`TaskMetrics`] field plus the run-level counters must appear
    /// in the exported snapshot — this list is the export-schema contract.
    #[test]
    fn metrics_snapshot_covers_every_report_field() {
        let mut m = TaskMetrics {
            msgs_in: 1,
            msgs_out: 2,
            bytes_in: 3,
            bytes_out: 4,
            busy: Duration::from_nanos(5),
            retries: 6,
            dup_drops: 7,
            link_dropped: 8,
            link_duped: 9,
            link_delayed: 10,
            shed: 11,
            dropped_poisoned: 12,
            max_backoff: Duration::from_nanos(13),
            checkpoints: 14,
            checkpoint_bytes: 15,
            ..TaskMetrics::default()
        };
        m.queue_wait.record(Duration::from_nanos(16));
        m.checkpoint_latency.record(Duration::from_nanos(17));
        m.barrier_stall.record(Duration::from_nanos(18));
        let report = RunReport {
            tasks: vec![
                ("joiner".into(), 0, m),
                ("sink".into(), 0, TaskMetrics::default()),
            ],
            failures: vec![("joiner".into(), 0, "boom".into())],
            restarts: vec![("joiner".into(), 0, 2)],
            elapsed: Duration::from_nanos(99),
        };
        let snap = report.metrics_snapshot();
        let expected = [
            "dssj_msgs_in_total",
            "dssj_msgs_out_total",
            "dssj_bytes_in_total",
            "dssj_bytes_out_total",
            "dssj_busy_ns_total",
            "dssj_retries_total",
            "dssj_dup_drops_total",
            "dssj_link_dropped_total",
            "dssj_link_duped_total",
            "dssj_link_delayed_total",
            "dssj_shed_total",
            "dssj_dropped_poisoned_total",
            "dssj_checkpoints_total",
            "dssj_checkpoint_bytes_total",
            "dssj_max_backoff_ns",
            "dssj_queue_wait_ns",
            "dssj_checkpoint_latency_ns",
            "dssj_barrier_stall_ns",
            "dssj_task_failures_total",
            "dssj_task_restarts_total",
            "dssj_run_elapsed_ns",
        ];
        assert_eq!(snap.names(), expected.to_vec());
        let text = obs::prometheus(&snap);
        for name in expected {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "metric {name} missing from exposition"
            );
        }
        assert!(text.contains("dssj_msgs_in_total{comp=\"joiner\",task=\"0\"} 1"));
        assert!(text.contains("dssj_msgs_in_total{comp=\"sink\",task=\"0\"} 0"));
        assert!(text.contains("dssj_task_failures_total 1"));
        assert!(text.contains("dssj_task_restarts_total 2"));
        assert!(text.contains("dssj_run_elapsed_ns 99"));
        // Byte-stable: a second snapshot renders identically.
        assert_eq!(obs::prometheus(&report.metrics_snapshot()), text);
    }
}
