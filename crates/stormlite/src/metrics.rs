//! Per-task execution metrics and a log-bucket latency histogram.
//!
//! Nothing in this module reads the wall clock. Every duration recorded
//! here (queue wait, busy time, end-to-end elapsed) is measured by the
//! running topology through its [`Clock`](crate::Clock) — so under
//! [`Scheduler::Sim`](crate::Scheduler::Sim) all reported latencies are
//! *virtual-time* readings: deterministic, seed-reproducible, and counted
//! in scheduler ticks rather than host nanoseconds. A threaded run uses a
//! wall-anchored clock and reports real time through the same types.

use std::fmt;
use std::time::Duration;

/// A latency histogram with logarithmic (power-of-two nanosecond) buckets:
/// constant memory, O(1) record, ~2× relative quantile error — plenty for
/// throughput/latency reporting without external dependencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the upper edge of the bucket
    /// containing the q-th sample.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(1u64 << (b + 1).min(63));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counters for one task of one component.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    /// Data tuples received.
    pub msgs_in: u64,
    /// Data tuples emitted.
    pub msgs_out: u64,
    /// Bytes received (per [`Message::wire_bytes`](crate::Message::wire_bytes)).
    pub bytes_in: u64,
    /// Bytes emitted.
    pub bytes_out: u64,
    /// Wall time spent inside `execute`.
    pub busy: Duration,
    /// Time tuples spent waiting in this task's input queue.
    pub queue_wait: LatencyHistogram,
    /// Retransmissions sent on this task's
    /// [`AtLeastOnce`](crate::Delivery::AtLeastOnce) outgoing wires.
    pub retries: u64,
    /// Duplicate transmissions discarded by this task's receiver-side
    /// dedup (reliable wires only).
    pub dup_drops: u64,
    /// Transmissions dropped by injected link faults on outgoing wires.
    pub link_dropped: u64,
    /// Transmissions duplicated by injected link faults.
    pub link_duped: u64,
    /// Transmissions delayed (reordered) by injected link faults.
    pub link_delayed: u64,
    /// Input records shed by this task's overload policy
    /// (see [`Outbox::record_shed`](crate::Outbox::record_shed)).
    pub shed: u64,
    /// Tuples consumed by an organic bolt panic and never redelivered
    /// (see [`Topology::with_supervised_restarts`](crate::Topology::with_supervised_restarts)).
    pub dropped_poisoned: u64,
    /// Largest retry backoff reached on this task's reliable wires.
    pub max_backoff: Duration,
    /// Checkpoint snapshots captured by this task
    /// (see [`Outbox::record_checkpoint`](crate::Outbox::record_checkpoint)).
    pub checkpoints: u64,
    /// Total serialized bytes of this task's checkpoint snapshots.
    pub checkpoint_bytes: u64,
    /// End-to-end latency of checkpoint epochs this task completed
    /// (barrier injection → last snapshot published); recorded only on the
    /// task whose snapshot completed the epoch.
    pub checkpoint_latency: LatencyHistogram,
    /// Time barrier control tuples stalled between upstream injection and
    /// this task aligning on them.
    pub barrier_stall: LatencyHistogram,
}

impl TaskMetrics {
    /// Adds another task's counters into this one.
    pub fn merge(&mut self, other: &TaskMetrics) {
        self.msgs_in += other.msgs_in;
        self.msgs_out += other.msgs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.busy += other.busy;
        self.queue_wait.merge(&other.queue_wait);
        self.retries += other.retries;
        self.dup_drops += other.dup_drops;
        self.link_dropped += other.link_dropped;
        self.link_duped += other.link_duped;
        self.link_delayed += other.link_delayed;
        self.shed += other.shed;
        self.dropped_poisoned += other.dropped_poisoned;
        self.max_backoff = self.max_backoff.max(other.max_backoff);
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoint_latency.merge(&other.checkpoint_latency);
        self.barrier_stall.merge(&other.barrier_stall);
    }
}

/// The outcome of a topology run.
#[derive(Debug)]
pub struct RunReport {
    /// `(component, task_index, metrics)` for every task.
    pub tasks: Vec<(String, usize, TaskMetrics)>,
    /// Tasks that panicked: `(component, task_index, panic message)`.
    /// Injected faults are recorded here too. A failed task that is out of
    /// restart budget drains (and discards) its remaining input, so the
    /// topology always completes; results are partial unless the
    /// application layer recovers the lost state.
    pub failures: Vec<(String, usize, String)>,
    /// Tasks that were rebuilt after a crash:
    /// `(component, task_index, restart count)`. Only restarted tasks
    /// appear.
    pub restarts: Vec<(String, usize, u64)>,
    /// Wall-clock duration from launch to full drain.
    pub elapsed: Duration,
}

impl RunReport {
    /// Whether every task completed without panicking.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total task restarts across the run (injected and organic).
    pub fn total_restarts(&self) -> u64 {
        self.restarts.iter().map(|(_, _, n)| n).sum()
    }

    /// Sum of tuples processed across all tasks.
    pub fn total_processed(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.msgs_in).sum()
    }

    /// Sum of tuples emitted across all tasks.
    pub fn total_emitted(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.msgs_out).sum()
    }

    /// Sum of bytes moved between tasks (counted at emission).
    pub fn total_bytes(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.bytes_out).sum()
    }

    /// Records shed by overload policies across all tasks. Every shed
    /// record is an explicit, accounted recall loss — never a silent drop.
    pub fn shed(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.shed).sum()
    }

    /// Tuples consumed by organic bolt panics across all tasks (the
    /// poisoned tuple is intentionally not redelivered; this counter is
    /// its trace).
    pub fn dropped_poisoned(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.dropped_poisoned).sum()
    }

    /// Retransmissions across all reliable wires.
    pub fn total_retries(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.retries).sum()
    }

    /// Duplicate transmissions discarded by receiver-side dedup across all
    /// tasks.
    pub fn total_dup_drops(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.dup_drops).sum()
    }

    /// Transmissions affected by injected link faults across all tasks:
    /// `(dropped, duplicated, delayed)`.
    pub fn link_faults(&self) -> (u64, u64, u64) {
        self.tasks.iter().fold((0, 0, 0), |(d, u, l), (_, _, m)| {
            (d + m.link_dropped, u + m.link_duped, l + m.link_delayed)
        })
    }

    /// Largest retry backoff reached on any task's reliable wires.
    pub fn max_backoff(&self) -> Duration {
        self.tasks
            .iter()
            .map(|(_, _, m)| m.max_backoff)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Checkpoint snapshots captured across all tasks.
    pub fn checkpoints(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.checkpoints).sum()
    }

    /// Total serialized snapshot bytes across all tasks.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.tasks.iter().map(|(_, _, m)| m.checkpoint_bytes).sum()
    }

    /// Merged per-epoch checkpoint latency histogram (barrier injection →
    /// epoch complete) across all tasks.
    pub fn checkpoint_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (_, _, m) in &self.tasks {
            h.merge(&m.checkpoint_latency);
        }
        h
    }

    /// Merged barrier-alignment stall histogram across all tasks.
    pub fn barrier_stall(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (_, _, m) in &self.tasks {
            h.merge(&m.barrier_stall);
        }
        h
    }

    /// Aggregated metrics of one component across its tasks.
    pub fn component(&self, name: &str) -> TaskMetrics {
        let mut agg = TaskMetrics::default();
        for (comp, _, m) in &self.tasks {
            if comp == name {
                agg.merge(m);
            }
        }
        agg
    }

    /// Per-task `msgs_in` of one component (load-balance reporting).
    pub fn component_task_loads(&self, name: &str) -> Vec<u64> {
        let mut loads: Vec<(usize, u64)> = self
            .tasks
            .iter()
            .filter(|(comp, _, _)| comp == name)
            .map(|(_, task, m)| (*task, m.msgs_in))
            .collect();
        loads.sort_unstable();
        loads.into_iter().map(|(_, l)| l).collect()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>5} {:>12} {:>12} {:>12} {:>10}",
            "component", "task", "msgs_in", "msgs_out", "bytes_out", "busy_ms"
        )?;
        for (comp, task, m) in &self.tasks {
            writeln!(
                f,
                "{:<14} {:>5} {:>12} {:>12} {:>12} {:>10.1}",
                comp,
                task,
                m.msgs_in,
                m.msgs_out,
                m.bytes_out,
                m.busy.as_secs_f64() * 1000.0
            )?;
        }
        write!(f, "elapsed: {:.1} ms", self.elapsed.as_secs_f64() * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(200));
        h.record(Duration::from_micros(10));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Duration::from_micros(10));
        assert!(h.mean() >= Duration::from_nanos(100));
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 1000));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        // Log buckets: within 2x of the true values.
        assert!(p50 >= Duration::from_nanos(500_000 / 2));
        assert!(p99 <= Duration::from_nanos(4 * 990_000));
    }

    #[test]
    fn histogram_bucket_edge_at_one_nanosecond() {
        // 1 ns lands in bucket 0 ([1, 2) ns): the quantile estimate is the
        // bucket's upper edge, 2 ns — exactly the documented 2× bound.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(2));
        assert_eq!(h.max(), Duration::from_nanos(1));
        // 0 ns is clamped into bucket 0 rather than shifting out of range.
        let mut z = LatencyHistogram::new();
        z.record(Duration::ZERO);
        assert_eq!(z.quantile(1.0), Duration::from_nanos(2));
    }

    #[test]
    fn histogram_bucket_edges_at_powers_of_two() {
        // A sample of exactly 2^k sits at the lower edge of bucket k, so
        // the estimate 2^(k+1) is exactly 2× — the worst case the bound
        // promises. One below (2^k - 1) stays in bucket k-1.
        for k in 1..62u32 {
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(1u64 << k));
            assert_eq!(
                h.quantile(1.0),
                Duration::from_nanos(1u64 << (k + 1)),
                "2^{k} must report its bucket's upper edge"
            );
            let mut low = LatencyHistogram::new();
            low.record(Duration::from_nanos((1u64 << k) - 1));
            assert_eq!(
                low.quantile(1.0),
                Duration::from_nanos(1u64 << k),
                "2^{k} - 1 must stay in the bucket below"
            );
        }
    }

    #[test]
    fn histogram_bucket_edge_at_u64_max() {
        // u64::MAX ns lands in the top bucket (63), whose reported edge is
        // clamped to 2^63 ns so the estimate stays representable; the
        // estimate errs *low* here but still within the 2× bound
        // (u64::MAX / 2^63 < 2).
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(1u64 << 63));
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        assert!(u64::MAX as f64 / (1u64 << 63) as f64 <= 2.0);
    }

    #[test]
    fn histogram_quantile_error_is_within_2x() {
        // The documented guarantee: for any sample set and any quantile,
        // estimate / true ∈ [1, 2] (buckets below the clamp). Exercise a
        // mix of scales, including exact powers of two.
        let samples: Vec<u64> = (0..2000u64)
            .map(|i| (i % 60).pow(2) * 37 + i + 1)
            .chain((0..10).map(|k| 1u64 << (k * 5)))
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.quantile(q).as_nanos() as u64;
            assert!(
                est >= truth && est <= truth.saturating_mul(2),
                "q={q}: estimate {est} outside [{truth}, {}]",
                truth.saturating_mul(2)
            );
        }
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_nanos(1_000_000));
    }

    #[test]
    fn report_aggregation() {
        let m1 = TaskMetrics {
            msgs_in: 5,
            bytes_out: 100,
            ..TaskMetrics::default()
        };
        let m2 = TaskMetrics {
            msgs_in: 7,
            bytes_out: 50,
            ..TaskMetrics::default()
        };
        let report = RunReport {
            tasks: vec![
                ("joiner".into(), 1, m2),
                ("joiner".into(), 0, m1),
                ("sink".into(), 0, TaskMetrics::default()),
            ],
            failures: Vec::new(),
            restarts: Vec::new(),
            elapsed: Duration::from_millis(1),
        };
        assert!(report.is_clean());
        assert_eq!(report.total_restarts(), 0);
        assert_eq!(report.total_processed(), 12);
        assert_eq!(report.component("joiner").msgs_in, 12);
        assert_eq!(report.component_task_loads("joiner"), vec![5, 7]);
        assert_eq!(report.total_bytes(), 150);
        let text = report.to_string();
        assert!(text.contains("joiner"));
    }
}
