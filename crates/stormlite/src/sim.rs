//! Deterministic single-threaded simulation of a topology.
//!
//! The thread-per-task executor ([`Topology::run`]) is faithful to real
//! deployments but nondeterministic: the OS scheduler decides every
//! interleaving, so a failing chaos test cannot be replayed bit for bit.
//! The simulation scheduler closes that gap, in the style of
//! FoundationDB-class deterministic simulation testing:
//!
//! * **One thread.** Every task (spout or bolt) becomes a cooperatively
//!   scheduled state machine; channels are unbounded, so no step blocks.
//! * **A seeded scheduler.** Each step, the set of *runnable* tasks (spouts
//!   with input left, bolts with a queued envelope) is computed in task
//!   order and a SplitMix64 step-choice RNG seeded from
//!   [`SimConfig::seed`] picks the one to run. Same seed ⇒ same
//!   interleaving.
//! * **A virtual clock.** The topology runs on a
//!   [`Clock::virtual_start`] clock that advances by [`SimConfig::tick`]
//!   per step — and jumps straight to the earliest retransmission deadline
//!   whenever every task is blocked waiting on retry backoff. Timers
//!   (at-least-once retries, backoff, queue-wait and end-to-end latency
//!   metrics) therefore run entirely on virtual time and are exactly
//!   reproducible.
//! * **All fault machinery included.** `FaultPlan` crashes,
//!   `LinkFaultPlan` drop/dup/delay dice, reliable-delivery retries and
//!   receiver dedup run unmodified — they were already deterministic per
//!   seed; the scheduler removes the last source of nondeterminism, the
//!   interleaving.
//!
//! Every scheduler decision is recorded in a [`Transcript`]: same seed ⇒
//! byte-identical transcript, so a failure reproduces from its seed alone
//! and a diff of two transcripts pinpoints the first diverging step.
//!
//! ```
//! use stormlite::{Grouping, Message, SimConfig, Topology};
//!
//! #[derive(Clone)]
//! struct Num(u64);
//! impl Message for Num {}
//!
//! let build = || {
//!     let mut t = Topology::new();
//!     t.spout("src", (0..10u64).map(Num));
//!     let out = t.collector("sink");
//!     t.wire("src", "sink", Grouping::shuffle());
//!     (t, out)
//! };
//! let (t1, out1) = build();
//! let (t2, out2) = build();
//! let a = t1.run_sim(SimConfig::seeded(7));
//! let b = t2.run_sim(SimConfig::seeded(7));
//! assert_eq!(a.transcript, b.transcript); // bit-for-bit replay
//! assert_eq!(out1.lock().len(), out2.lock().len());
//! ```

use crate::clock::{Clock, Timestamp};
use crate::link::mix;
use crate::message::{Envelope, Message, Outbox};
use crate::metrics::RunReport;
use crate::topology::{build_outbox, expected_eos_counts, panic_message, BoltCore, Kind, Topology};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{Stage, TaskTracer};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// How a topology executes: real threads or deterministic simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scheduler {
    /// One OS thread per task, bounded channels, wall-clock time — the
    /// production-shaped executor ([`Topology::run`]). The default.
    #[default]
    Threads,
    /// Single-threaded deterministic simulation on a virtual clock (see
    /// [`crate::sim`]).
    Sim(SimConfig),
}

/// Parameters of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Seed of the step-choice RNG. The seed alone determines the
    /// interleaving — and with it the full transcript.
    pub seed: u64,
    /// Virtual time added per scheduler step. Retry backoff timers fire
    /// once enough steps (or an idle jump) have passed this much virtual
    /// time. The default of 1µs keeps default retry timeouts a few
    /// thousand steps long.
    pub tick: Duration,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            tick: Duration::from_micros(1),
        }
    }
}

impl SimConfig {
    /// The default configuration with the given scheduler seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// The recorded decision log of one simulated run: one line per scheduler
/// event (task step, settle transition, idle clock jump).
///
/// Transcripts are plain text — commit one as a golden file and any
/// scheduler change that silently alters delivery order fails loudly as a
/// byte diff.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    lines: Vec<String>,
}

impl Transcript {
    /// The recorded lines, in scheduling order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Renders the transcript as newline-terminated text (the golden-file
    /// format).
    pub fn to_text(&self) -> String {
        let mut s = self.lines.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Parses text previously produced by [`to_text`](Self::to_text).
    pub fn from_text(text: &str) -> Self {
        Self {
            lines: text.lines().map(str::to_owned).collect(),
        }
    }

    /// The index of the first line where the two transcripts differ (or
    /// where one ends), `None` if they are identical.
    pub fn first_divergence(&self, other: &Transcript) -> Option<usize> {
        let n = self.lines.len().min(other.lines.len());
        (0..n)
            .find(|&i| self.lines[i] != other.lines[i])
            .or((self.lines.len() != other.lines.len()).then_some(n))
    }
}

/// The outcome of a simulated run: the ordinary [`RunReport`] (latencies
/// in virtual time) plus the scheduler transcript.
#[derive(Debug)]
pub struct SimRun {
    /// Per-task metrics, failures and restarts, as from [`Topology::run`];
    /// `elapsed` and every latency histogram measure *virtual* time.
    pub report: RunReport,
    /// The deterministic decision log of this run.
    pub transcript: Transcript,
}

/// SplitMix64 step-choice RNG: `state += golden; mix(state)`.
struct SimRng {
    state: u64,
}

impl SimRng {
    fn new(seed: u64) -> Self {
        Self {
            // Decorrelate from the chaos dice streams, which hash raw
            // seeds through the same mixer.
            state: mix(seed ^ 0x5EED_5C4E_D01E_5EED),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still pulling / consuming input.
    Running,
    /// Input finished (or spout exhausted); draining reliable wires before
    /// the task's own EOS may go out.
    Settling,
    /// EOS sent; the task no longer schedules.
    Done,
}

enum TaskKind<M: Message> {
    Spout(Box<dyn Iterator<Item = M> + Send>),
    Bolt {
        // Boxed: BoltCore is much larger than the spout variant and each
        // task holds exactly one, so the indirection costs nothing.
        core: Box<BoltCore<M>>,
        rx: Receiver<Envelope<M>>,
    },
}

struct SimTask<M: Message> {
    name: String,
    task: usize,
    outbox: Outbox<M>,
    kind: TaskKind<M>,
    phase: Phase,
    spout_failures: Vec<String>,
    /// Records pulled so far (spouts only): the dispatch-event ordinal.
    pulls: u64,
}

impl<M: Message> SimTask<M> {
    fn runnable(&self) -> bool {
        if self.phase != Phase::Running {
            return false;
        }
        match &self.kind {
            // A spout can always attempt a pull (exhaustion is discovered
            // by the pull itself).
            TaskKind::Spout(_) => true,
            TaskKind::Bolt { rx, .. } => !rx.is_empty(),
        }
    }
}

/// Runs the topology to completion under the simulation scheduler.
pub(crate) fn execute<M: Message>(topology: Topology<M>, cfg: SimConfig) -> SimRun {
    topology.validate();
    let n = topology.components.len();
    let clock = Clock::virtual_start();

    // Unbounded input channels: a single-threaded scheduler must never
    // block on a full queue (the consumer could not run concurrently).
    // Backpressure is irrelevant here — the scheduler controls all rates.
    let mut senders: Vec<Vec<Sender<Envelope<M>>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Vec<Option<Receiver<Envelope<M>>>>> = Vec::with_capacity(n);
    for c in &topology.components {
        let mut comp_senders = Vec::new();
        let mut comp_receivers = Vec::new();
        if matches!(c.kind, Kind::Bolt(_)) {
            for _ in 0..c.parallelism {
                let (s, r) = unbounded();
                comp_senders.push(s);
                comp_receivers.push(Some(r));
            }
        }
        senders.push(comp_senders);
        receivers.push(comp_receivers);
    }

    let expected_eos = expected_eos_counts(&topology.components, &topology.wires);
    let names: Vec<String> = topology.components.iter().map(|c| c.name.clone()).collect();
    let trace = topology.trace.clone();
    let tracer_for = |comp: &str, task: usize| {
        trace
            .as_ref()
            .map(|(_, cfg)| TaskTracer::new(comp, task, cfg.ring_capacity))
    };

    let mut tasks: Vec<SimTask<M>> = Vec::new();
    for (i, c) in topology.components.into_iter().enumerate() {
        match c.kind {
            Kind::Spout(mut source) => {
                let outbox = build_outbox(
                    &topology.wires,
                    &names,
                    &topology.link_plan,
                    &senders,
                    &clock,
                    i,
                    0,
                    tracer_for(&c.name, 0),
                );
                tasks.push(SimTask {
                    name: c.name,
                    task: 0,
                    outbox,
                    kind: TaskKind::Spout(source.take().expect("spout source present")),
                    phase: Phase::Running,
                    spout_failures: Vec::new(),
                    pulls: 0,
                });
            }
            Kind::Bolt(factory) => {
                let factory = Arc::new(Mutex::new(factory));
                let comp_receivers = std::mem::take(&mut receivers[i]);
                for (task, rx_slot) in comp_receivers.into_iter().enumerate() {
                    let outbox = build_outbox(
                        &topology.wires,
                        &names,
                        &topology.link_plan,
                        &senders,
                        &clock,
                        i,
                        task,
                        tracer_for(&c.name, task),
                    );
                    let core = Box::new(BoltCore::new(
                        Arc::clone(&factory),
                        task,
                        expected_eos[i],
                        topology.fault_plan.points_for(&c.name, task),
                        topology.restart_budget,
                    ));
                    tasks.push(SimTask {
                        name: c.name.clone(),
                        task,
                        outbox,
                        kind: TaskKind::Bolt {
                            core,
                            rx: rx_slot.expect("receiver unclaimed"),
                        },
                        phase: Phase::Running,
                        spout_failures: Vec::new(),
                        pulls: 0,
                    });
                }
            }
        }
    }
    drop(senders);
    drop(receivers);

    let mut rng = SimRng::new(cfg.seed);
    let mut lines: Vec<String> = Vec::new();
    let mut step: u64 = 0;
    loop {
        // Settle phase: poll every settling task, in task order, for one
        // non-blocking settle round. A fully settled task sends its EOS
        // and is done; a blocked one reports its earliest retry deadline.
        let mut earliest: Option<Timestamp> = None;
        for t in tasks.iter_mut() {
            if t.phase != Phase::Settling {
                continue;
            }
            match t.outbox.sim_settle() {
                None => {
                    t.outbox.send_eos_raw();
                    t.phase = Phase::Done;
                    lines.push(format!(
                        "t={} {}/{} settled eos-out",
                        clock.now().as_nanos(),
                        t.name,
                        t.task
                    ));
                }
                Some(deadline) => {
                    earliest = Some(match earliest {
                        Some(e) if e <= deadline => e,
                        _ => deadline,
                    });
                }
            }
        }

        let runnable: Vec<usize> = (0..tasks.len()).filter(|&i| tasks[i].runnable()).collect();
        if runnable.is_empty() {
            if tasks.iter().all(|t| t.phase == Phase::Done) {
                break;
            }
            if let Some(deadline) = earliest {
                // Everyone is idle until a retransmission comes due: jump
                // the virtual clock straight to that deadline.
                let target = deadline.max(clock.now().plus(cfg.tick));
                clock.advance_to(target);
                lines.push(format!("t={} idle-jump", clock.now().as_nanos()));
                continue;
            }
            // No runnable task, nothing settling, not everyone done: the
            // topology cannot make progress. With validated (acyclic,
            // EOS-counted) topologies this is unreachable.
            let stuck: Vec<String> = tasks
                .iter()
                .filter(|t| t.phase != Phase::Done)
                .map(|t| format!("{}/{}", t.name, t.task))
                .collect();
            panic!("simulation deadlock: tasks {stuck:?} can never progress");
        }

        let pick = runnable[(rng.next() % runnable.len() as u64) as usize];
        step += 1;
        clock.advance(cfg.tick);
        let now_ns = clock.now().as_nanos();
        let t = &mut tasks[pick];
        match &mut t.kind {
            TaskKind::Spout(source) => {
                let next = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| source.next()));
                match next {
                    Ok(Some(msg)) => {
                        t.outbox.trace_instant(Stage::Dispatch, t.pulls, 0);
                        t.pulls += 1;
                        t.outbox.emit(msg);
                        lines.push(format!("{step} t={now_ns} {}/{} pull", t.name, t.task));
                    }
                    Ok(None) => {
                        t.phase = Phase::Settling;
                        lines.push(format!("{step} t={now_ns} {}/{} exhausted", t.name, t.task));
                    }
                    Err(panic) => {
                        t.spout_failures.push(panic_message(panic));
                        t.phase = Phase::Settling;
                        lines.push(format!(
                            "{step} t={now_ns} {}/{} spout-panic",
                            t.name, t.task
                        ));
                    }
                }
            }
            TaskKind::Bolt { core, rx } => {
                let envelope = rx.try_recv().expect("runnable bolt has queued input");
                let desc = match &envelope {
                    Envelope::Data(..) => "data".to_owned(),
                    Envelope::Seq { link, seq, .. } => format!("seq link={link} seq={seq}"),
                    Envelope::Eos => "eos".to_owned(),
                };
                let finished = core.handle(envelope, &mut t.outbox);
                lines.push(format!("{step} t={now_ns} {}/{} {desc}", t.name, t.task));
                if finished {
                    t.phase = Phase::Settling;
                    lines.push(format!("{step} t={now_ns} {}/{} finish", t.name, t.task));
                }
            }
        }
    }

    // Assemble the report in task order — the same order the threaded
    // executor joins its handles in.
    let mut report_tasks = Vec::new();
    let mut failures = Vec::new();
    let mut restarts = Vec::new();
    for mut t in tasks {
        if let (Some((sink, _)), Some(tt)) = (&trace, t.outbox.take_trace()) {
            sink.push(tt);
        }
        let metrics = std::mem::take(&mut t.outbox.metrics);
        let (task_failures, restart_count) = match t.kind {
            TaskKind::Spout(_) => (t.spout_failures, 0),
            TaskKind::Bolt { mut core, .. } => (std::mem::take(&mut core.failures), core.restarts),
        };
        for msg in task_failures {
            failures.push((t.name.clone(), t.task, msg));
        }
        if restart_count > 0 {
            restarts.push((t.name.clone(), t.task, restart_count));
        }
        report_tasks.push((t.name, t.task, metrics));
    }
    SimRun {
        report: RunReport {
            tasks: report_tasks,
            failures,
            restarts,
            elapsed: clock.now().saturating_since(Timestamp::ZERO),
        },
        transcript: Transcript { lines },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::{Delivery, RetryConfig};
    use crate::fault::FaultPlan;
    use crate::grouping::Grouping;
    use crate::link::{LinkFault, LinkFaultPlan};

    #[derive(Clone, Debug, PartialEq)]
    struct N(u64);
    impl Message for N {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    struct AddOne;
    impl crate::message::Bolt<N> for AddOne {
        fn execute(&mut self, msg: N, out: &mut Outbox<N>) {
            out.emit(N(msg.0 + 1));
        }
    }

    fn pipeline(
        n: u64,
        delivery: Delivery,
        link_plan: LinkFaultPlan,
        fault_plan: FaultPlan,
    ) -> (Topology<N>, Arc<Mutex<Vec<N>>>) {
        let mut t = Topology::new()
            .with_link_faults(link_plan)
            .with_fault_plan(fault_plan);
        t.spout("src", (0..n).map(N));
        t.bolt("relay", 2, |_| AddOne);
        let out = t.collector("sink");
        t.wire("src", "relay", Grouping::shuffle());
        t.wire_with("relay", "sink", Grouping::global(), delivery);
        (t, out)
    }

    fn sorted(values: &Arc<Mutex<Vec<N>>>) -> Vec<u64> {
        let mut v: Vec<u64> = values.lock().iter().map(|n| n.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn sim_runs_a_plain_pipeline_to_completion() {
        let (t, out) = pipeline(
            100,
            Delivery::BestEffort,
            LinkFaultPlan::default(),
            FaultPlan::new(),
        );
        let run = t.run_sim(SimConfig::seeded(1));
        assert_eq!(sorted(&out), (1..=100u64).collect::<Vec<_>>());
        assert!(run.report.is_clean());
        assert_eq!(run.report.component("sink").msgs_in, 100);
        // Virtual time moved: one tick per step at least.
        assert!(run.report.elapsed >= Duration::from_micros(100));
        assert!(!run.transcript.is_empty());
    }

    #[test]
    fn same_seed_same_transcript_different_seed_differs() {
        let run_once = |seed| {
            let (t, out) = pipeline(
                60,
                Delivery::BestEffort,
                LinkFaultPlan::default(),
                FaultPlan::new(),
            );
            let run = t.run_sim(SimConfig::seeded(seed));
            (run, sorted(&out))
        };
        let (a, va) = run_once(42);
        let (b, vb) = run_once(42);
        assert_eq!(a.transcript, b.transcript, "same seed must replay exactly");
        assert_eq!(a.transcript.first_divergence(&b.transcript), None);
        assert_eq!(va, vb);
        // A different seed explores a different interleaving (with 2 relay
        // tasks the schedules virtually cannot coincide).
        let (c, vc) = run_once(43);
        assert_ne!(a.transcript, c.transcript);
        assert!(a.transcript.first_divergence(&c.transcript).is_some());
        assert_eq!(va, vc, "results stay seed-independent");
    }

    #[test]
    fn transcript_round_trips_through_text() {
        let (t, _out) = pipeline(
            20,
            Delivery::BestEffort,
            LinkFaultPlan::default(),
            FaultPlan::new(),
        );
        let run = t.run_sim(SimConfig::seeded(9));
        let text = run.transcript.to_text();
        assert_eq!(Transcript::from_text(&text), run.transcript);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn sim_masks_chaos_on_reliable_wires() {
        // The threaded acceptance bar, now deterministic: seeded link
        // faults on an at-least-once wire leave the output exact.
        for seed in 0..20u64 {
            let plan = LinkFaultPlan::new(seed).lossy("relay", "sink", LinkFault::seeded(seed));
            let retry = RetryConfig {
                base_timeout: Duration::from_micros(300),
                backoff_factor: 2,
                max_timeout: Duration::from_millis(8),
            };
            let (t, out) = pipeline(60, Delivery::AtLeastOnce(retry), plan, FaultPlan::new());
            let run = t.run_sim(SimConfig::seeded(seed));
            assert_eq!(
                sorted(&out),
                (1..=60u64).collect::<Vec<_>>(),
                "seed {seed} corrupted the stream"
            );
            assert!(run.report.is_clean());
        }
    }

    #[test]
    fn sim_reliable_chaos_is_transcript_deterministic() {
        let run_once = || {
            let plan = LinkFaultPlan::new(5).lossy("relay", "sink", LinkFault::seeded(5));
            let (t, out) = pipeline(
                40,
                Delivery::AtLeastOnce(RetryConfig::default()),
                plan,
                FaultPlan::new().crash("relay", 1, 7),
            );
            let run = t.run_sim(SimConfig::seeded(11));
            (run, sorted(&out))
        };
        let (a, va) = run_once();
        let (b, vb) = run_once();
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(va, vb);
        assert_eq!(a.report.total_restarts(), 1);
        assert_eq!(va, (1..=40u64).collect::<Vec<_>>());
    }

    #[test]
    fn sim_latencies_are_virtual_time() {
        let (t, _out) = pipeline(
            50,
            Delivery::BestEffort,
            LinkFaultPlan::default(),
            FaultPlan::new(),
        );
        let run = t.run_sim(SimConfig::seeded(3));
        let sink = run.report.component("sink");
        assert_eq!(sink.queue_wait.count(), 50);
        // Every queue wait is a whole number of ticks > 0: tuples wait at
        // least one scheduling step, and virtual time is quantized.
        assert!(sink.queue_wait.max() >= Duration::from_micros(1));
        // Busy time never advances on the frozen-within-step clock.
        assert_eq!(sink.busy, Duration::ZERO);
    }

    #[test]
    fn sim_crash_redelivers_exactly_once() {
        let (t, out) = pipeline(
            50,
            Delivery::BestEffort,
            LinkFaultPlan::default(),
            FaultPlan::new().crash("relay", 0, 10),
        );
        let run = t.run_sim(SimConfig::seeded(2));
        assert_eq!(sorted(&out), (1..=50u64).collect::<Vec<_>>());
        assert_eq!(run.report.total_restarts(), 1);
        assert!(run
            .report
            .failures
            .iter()
            .any(|(_, _, m)| m.contains("injected fault")));
    }

    #[test]
    fn sim_tracing_is_deterministic_and_leaves_transcript_unchanged() {
        let run_once = |traced: bool| {
            let plan = LinkFaultPlan::new(5).lossy("relay", "sink", LinkFault::seeded(5));
            let (t, out) = pipeline(
                40,
                Delivery::AtLeastOnce(RetryConfig::default()),
                plan,
                FaultPlan::new(),
            );
            let sink = obs::TraceSink::new();
            let t = if traced {
                t.with_tracing(sink.clone(), obs::TraceConfig::default())
            } else {
                t
            };
            let run = t.run_sim(SimConfig::seeded(11));
            (run, sorted(&out), obs::trace_jsonl(&sink.collect()))
        };
        let (a, va, ta) = run_once(true);
        let (b, vb, tb) = run_once(true);
        assert_eq!(ta, tb, "same seed must produce a byte-identical trace");
        assert!(!ta.is_empty());
        // Every pipeline stage the topology exercises shows up.
        for span in ["dispatch", "deliver", "retry", "execute"] {
            assert!(
                ta.contains(&format!("\"span\":\"{span}\"")),
                "missing {span}"
            );
        }
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(va, vb);
        // Tracing is purely observational: disabling it changes neither
        // the transcript nor the output.
        let (c, vc, tc) = run_once(false);
        assert_eq!(a.transcript, c.transcript);
        assert_eq!(va, vc);
        assert!(tc.is_empty());
    }

    #[test]
    fn run_with_dispatches_to_both_schedulers() {
        let build = || {
            let mut t = Topology::new();
            t.spout("src", (0..10u64).map(N));
            let out = t.collector("sink");
            t.wire("src", "sink", Grouping::global());
            (t, out)
        };
        let (t, out) = build();
        t.run_with(Scheduler::Threads);
        assert_eq!(out.lock().len(), 10);
        let (t, out) = build();
        t.run_with(Scheduler::Sim(SimConfig::seeded(0)));
        assert_eq!(out.lock().len(), 10);
    }
}
