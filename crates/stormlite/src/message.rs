//! Messages, bolts and the emission context.

use crate::clock::{Clock, Timestamp};
use crate::delivery::RetryConfig;
use crate::grouping::Grouping;
use crate::link::{ChaosDice, LinkAction};
use crate::metrics::TaskMetrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::{Event, Stage, TaskTrace, TaskTracer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A tuple payload flowing through a topology.
///
/// `wire_bytes` is what the communication-cost accounting charges per hop —
/// override it to match what a binary codec would put on the network
/// (the default charges the in-memory size, which is only right for plain
/// data types).
pub trait Message: Send + Clone + 'static {
    /// Serialized size of this message in bytes.
    fn wire_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
    }
}

/// An acknowledgement flowing back from a receiver to the sending task of
/// one reliable wire: "task `dest` has received sequence number `seq`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ack {
    pub(crate) dest: usize,
    pub(crate) seq: u64,
}

/// The envelope moving through channels: payload plus queueing metadata,
/// or the end-of-stream marker.
pub(crate) enum Envelope<M> {
    /// A data tuple and the run time it was enqueued (for queue-wait
    /// metrics). Best-effort wires only.
    Data(M, Timestamp),
    /// A data tuple on a reliable wire: stamped with its link identity and
    /// per-destination sequence number, and carrying the handle the
    /// receiver acknowledges on. Retransmissions reuse the original
    /// `sent_at` so queue-wait metrics include retry latency.
    Seq {
        /// The payload.
        msg: M,
        /// Original emission time.
        sent_at: Timestamp,
        /// Identity of the (wire, sender task) link this flows on.
        link: u64,
        /// Dense per-(link, destination) sequence number.
        seq: u64,
        /// Where the receiver acknowledges receipt.
        ack: Sender<Ack>,
    },
    /// One upstream task finished.
    Eos,
}

impl<M: std::fmt::Debug> std::fmt::Debug for Envelope<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Envelope::Data(m, _) => f.debug_tuple("Data").field(m).finish(),
            Envelope::Seq { msg, link, seq, .. } => f
                .debug_struct("Seq")
                .field("msg", msg)
                .field("link", link)
                .field("seq", seq)
                .finish(),
            Envelope::Eos => f.write_str("Eos"),
        }
    }
}

/// A processing vertex: receives tuples, may emit downstream.
pub trait Bolt<M: Message>: Send {
    /// Handles one tuple.
    fn execute(&mut self, msg: M, out: &mut Outbox<M>);

    /// Called once, after every upstream task has finished, before the
    /// bolt's own end-of-stream propagates. Flush buffered state here.
    fn finish(&mut self, out: &mut Outbox<M>) {
        let _ = out;
    }
}

/// A terminal bolt collecting every received tuple into a shared vector.
pub struct CollectorBolt<M> {
    out: Arc<Mutex<Vec<M>>>,
}

impl<M> CollectorBolt<M> {
    /// A collector writing into `out`.
    pub fn new(out: Arc<Mutex<Vec<M>>>) -> Self {
        Self { out }
    }
}

impl<M: Message> Bolt<M> for CollectorBolt<M> {
    fn execute(&mut self, msg: M, _out: &mut Outbox<M>) {
        self.out.lock().push(msg);
    }
}

/// A transmittable unit: what the chaos layer and the retry loop re-send.
enum Packet<M> {
    Plain(M, Timestamp),
    Seq(M, Timestamp, u64),
}

impl<M: Clone> Clone for Packet<M> {
    fn clone(&self) -> Self {
        match self {
            Packet::Plain(m, t) => Packet::Plain(m.clone(), *t),
            Packet::Seq(m, t, s) => Packet::Seq(m.clone(), *t, *s),
        }
    }
}

/// Sender-side chaos state of one lossy link: the decision dice plus the
/// buffer of delayed transmissions (each released after its countdown of
/// subsequent transmissions reaches zero).
pub(crate) struct Chaos<M> {
    dice: ChaosDice,
    delayed: Vec<(usize, usize, Packet<M>)>,
}

impl<M> Chaos<M> {
    pub(crate) fn new(dice: ChaosDice) -> Self {
        Self {
            dice,
            delayed: Vec::new(),
        }
    }
}

/// One tuple awaiting acknowledgement on a reliable wire.
struct Pending<M> {
    msg: M,
    sent_at: Timestamp,
    last_tx: Timestamp,
    retries: u32,
}

/// Sender-side state of one [`AtLeastOnce`](crate::Delivery::AtLeastOnce)
/// wire: per-destination sequence counters, the unacknowledged window, and
/// the ack backchannel. The sender keeps its own `ack_tx` clone so the ack
/// channel can never disconnect while tuples are in flight.
///
/// The unacknowledged window is an ordered map so the retransmit scan
/// visits tuples in a deterministic (destination, sequence) order — a
/// requirement for the simulation scheduler, whose transcripts must be
/// byte-identical across runs of the same seed.
pub(crate) struct ReliableTx<M> {
    retry: RetryConfig,
    next_seq: Vec<u64>,
    unacked: BTreeMap<(usize, u64), Pending<M>>,
    ack_tx: Sender<Ack>,
    ack_rx: Receiver<Ack>,
}

impl<M> ReliableTx<M> {
    pub(crate) fn new(retry: RetryConfig, n_dests: usize) -> Self {
        let (ack_tx, ack_rx) = unbounded();
        Self {
            retry,
            next_seq: vec![0; n_dests],
            unacked: BTreeMap::new(),
            ack_tx,
            ack_rx,
        }
    }
}

/// Receiver-side state of one reliable link: the next expected sequence
/// number and the reorder buffer. Lives in the task's receive loop (not in
/// the bolt instance), so it survives bolt crashes and restarts — dedup
/// therefore composes with application-level replay.
pub(crate) struct ReliableRx<M> {
    next: u64,
    pending: BTreeMap<u64, (M, Timestamp)>,
}

impl<M> Default for ReliableRx<M> {
    fn default() -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
        }
    }
}

impl<M> ReliableRx<M> {
    /// Accepts one transmission. Returns `true` if it was a duplicate;
    /// otherwise pushes every tuple that is now deliverable in sequence
    /// order onto `deliverable`.
    pub(crate) fn accept(
        &mut self,
        seq: u64,
        msg: M,
        sent_at: Timestamp,
        deliverable: &mut Vec<(M, Timestamp)>,
    ) -> bool {
        if seq < self.next || self.pending.contains_key(&seq) {
            return true;
        }
        self.pending.insert(seq, (msg, sent_at));
        while let Some(entry) = self.pending.remove(&self.next) {
            deliverable.push(entry);
            self.next += 1;
        }
        false
    }
}

/// One outgoing wire from a task: the grouping plus a sender per
/// destination task, and the optional chaos / reliable-delivery layers.
pub(crate) struct OutWire<M> {
    pub(crate) grouping: Grouping<M>,
    pub(crate) senders: Vec<Sender<Envelope<M>>>,
    pub(crate) rr_next: usize,
    /// Identity of this (wire, sender task) link, carried in every `Seq`
    /// envelope so receivers keep independent per-link sequence state.
    pub(crate) link: u64,
    pub(crate) chaos: Option<Chaos<M>>,
    pub(crate) reliable: Option<ReliableTx<M>>,
    /// The run's time source; all retry deadlines and emission stamps read
    /// it, so a virtual clock makes the whole wire simulation-steerable.
    pub(crate) clock: Clock,
}

impl<M: Message> OutWire<M> {
    /// A perfect best-effort wire (test construction convenience).
    #[cfg(test)]
    pub(crate) fn plain(grouping: Grouping<M>, senders: Vec<Sender<Envelope<M>>>) -> Self {
        Self {
            grouping,
            senders,
            rr_next: 0,
            link: 0,
            chaos: None,
            reliable: None,
            clock: Clock::wall(),
        }
    }

    /// Records one Deliver trace event for a packet entering a channel.
    /// Purely observational: no clock mutation, no RNG draw, so enabling
    /// tracing cannot perturb transcripts.
    fn trace_deliver(&self, tracer: &mut Option<TaskTracer>, packet: &Packet<M>) {
        if let Some(tr) = tracer {
            let seq = match packet {
                Packet::Seq(_, _, s) => *s,
                Packet::Plain(..) => 0,
            };
            tr.record(Event::instant(
                self.clock.now().as_nanos(),
                Stage::Deliver,
                self.link,
                seq,
            ));
        }
    }

    /// Queues one logical emission to `dest`, through the reliable layer
    /// (sequence stamping + retry tracking) and the chaos layer.
    fn dispatch(
        &mut self,
        dest: usize,
        msg: M,
        now: Timestamp,
        metrics: &mut TaskMetrics,
        tracer: &mut Option<TaskTracer>,
    ) {
        metrics.msgs_out += 1;
        metrics.bytes_out += msg.wire_bytes();
        let packet = if let Some(rel) = &mut self.reliable {
            let seq = rel.next_seq[dest];
            rel.next_seq[dest] = seq + 1;
            rel.unacked.insert(
                (dest, seq),
                Pending {
                    msg: msg.clone(),
                    sent_at: now,
                    last_tx: self.clock.now(),
                    retries: 0,
                },
            );
            Packet::Seq(msg, now, seq)
        } else {
            Packet::Plain(msg, now)
        };
        self.transmit(dest, packet, metrics, tracer);
        self.pump(metrics, tracer);
    }

    /// One physical transmission attempt: rolls the chaos dice (if the
    /// link is lossy), ages the delay buffer by one transmission, and
    /// releases any delayed packets that have come due.
    fn transmit(
        &mut self,
        dest: usize,
        packet: Packet<M>,
        metrics: &mut TaskMetrics,
        tracer: &mut Option<TaskTracer>,
    ) {
        let Some(chaos) = &mut self.chaos else {
            self.trace_deliver(tracer, &packet);
            self.send_packet(dest, packet);
            return;
        };
        // Age previously delayed packets by this transmission; collect the
        // ones whose countdown expired.
        let mut due = Vec::new();
        let mut i = 0;
        while i < chaos.delayed.len() {
            chaos.delayed[i].0 -= 1;
            if chaos.delayed[i].0 == 0 {
                let (_, d, p) = chaos.delayed.swap_remove(i);
                due.push((d, p));
            } else {
                i += 1;
            }
        }
        match chaos.dice.roll() {
            LinkAction::Pass => {
                self.trace_deliver(tracer, &packet);
                self.send_packet(dest, packet);
            }
            LinkAction::Drop => {
                metrics.link_dropped += 1;
            }
            LinkAction::Duplicate => {
                metrics.link_duped += 1;
                self.trace_deliver(tracer, &packet);
                self.trace_deliver(tracer, &packet);
                self.send_packet(dest, packet.clone());
                self.send_packet(dest, packet);
            }
            LinkAction::Delay(countdown) => {
                metrics.link_delayed += 1;
                self.chaos
                    .as_mut()
                    .expect("chaos checked above")
                    .delayed
                    .push((countdown, dest, packet));
            }
        }
        for (d, p) in due {
            // A delayed packet already had its fault; deliver it directly.
            self.trace_deliver(tracer, &p);
            self.send_packet(d, p);
        }
    }

    /// Pushes one packet into the destination channel.
    fn send_packet(&self, dest: usize, packet: Packet<M>) {
        let envelope = match packet {
            Packet::Plain(msg, sent_at) => Envelope::Data(msg, sent_at),
            Packet::Seq(msg, sent_at, seq) => Envelope::Seq {
                msg,
                sent_at,
                link: self.link,
                seq,
                ack: self
                    .reliable
                    .as_ref()
                    .expect("Seq packets exist only on reliable wires")
                    .ack_tx
                    .clone(),
            },
        };
        self.senders[dest]
            .send(envelope)
            .expect("receiver alive until EOS");
    }

    /// Drains pending acknowledgements from the backchannel.
    fn drain_acks(&mut self) {
        if let Some(rel) = &mut self.reliable {
            while let Ok(ack) = rel.ack_rx.try_recv() {
                rel.unacked.remove(&(ack.dest, ack.seq));
            }
        }
    }

    /// The deterministic jitter salt for one pending tuple's retry timer:
    /// a pure function of (link, destination, sequence, retry count), so
    /// the overdue check and the simulator's idle-jump deadline agree.
    fn retry_salt(link: u64, dest: usize, seq: u64, retries: u32) -> u64 {
        link ^ (dest as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ seq.wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ ((retries as u64) << 56)
    }

    /// Retransmits every unacknowledged tuple whose (jittered) retry
    /// timeout has expired. Retransmissions go through the chaos layer
    /// again — each attempt rolls fresh dice, so a retried tuple is never
    /// deterministically re-dropped.
    fn retransmit_overdue(&mut self, metrics: &mut TaskMetrics, tracer: &mut Option<TaskTracer>) {
        let now = self.clock.now();
        let link = self.link;
        let mut to_retx = Vec::new();
        if let Some(rel) = &mut self.reliable {
            for ((dest, seq), p) in rel.unacked.iter_mut() {
                let salt = Self::retry_salt(link, *dest, *seq, p.retries);
                if now.saturating_since(p.last_tx) >= rel.retry.jittered_timeout(p.retries, salt) {
                    p.retries += 1;
                    p.last_tx = now;
                    metrics.retries += 1;
                    metrics.max_backoff =
                        metrics.max_backoff.max(rel.retry.timeout_after(p.retries));
                    if let Some(tr) = tracer {
                        tr.record(Event::instant(
                            now.as_nanos(),
                            Stage::Retry,
                            *seq,
                            u64::from(p.retries),
                        ));
                    }
                    to_retx.push((*dest, Packet::Seq(p.msg.clone(), p.sent_at, *seq)));
                }
            }
        }
        for (dest, packet) in to_retx {
            self.transmit(dest, packet, metrics, tracer);
        }
    }

    /// Opportunistic maintenance, piggybacked on every emission: drain
    /// acks, then retransmit anything overdue. A no-op on best-effort
    /// wires and O(1) when nothing is pending.
    fn pump(&mut self, metrics: &mut TaskMetrics, tracer: &mut Option<TaskTracer>) {
        let Some(rel) = &self.reliable else { return };
        let idle = rel.unacked.is_empty() && rel.ack_rx.is_empty();
        if idle {
            return;
        }
        self.drain_acks();
        self.retransmit_overdue(metrics, tracer);
    }

    /// Releases every still-delayed packet immediately. Called at
    /// end-of-stream (no further transmissions would age the buffer) and
    /// between settle rounds.
    fn flush_delayed(&mut self, tracer: &mut Option<TaskTracer>) {
        if let Some(chaos) = &mut self.chaos {
            for (_, dest, packet) in std::mem::take(&mut chaos.delayed) {
                self.trace_deliver(tracer, &packet);
                self.send_packet(dest, packet);
            }
        }
    }

    /// Blocks until every tuple sent on this wire has been acknowledged,
    /// retransmitting as needed. Once this returns, the (FIFO) channel
    /// holds no data the receiver has not already seen — so the EOS marker
    /// sent after it cannot overtake any tuple.
    ///
    /// Threaded execution only: the wait spins on wall-clock
    /// `recv_timeout`. Simulated runs settle incrementally through
    /// [`sim_settle`](Self::sim_settle) instead.
    fn settle(&mut self, metrics: &mut TaskMetrics, tracer: &mut Option<TaskTracer>) {
        self.flush_delayed(tracer);
        loop {
            self.drain_acks();
            let Some(rel) = &mut self.reliable else {
                return;
            };
            if rel.unacked.is_empty() {
                return;
            }
            // Wait briefly for in-flight acks before retrying; acks ride an
            // unbounded channel the sender itself keeps open, so this can
            // only time out, never disconnect, while tuples are pending.
            let wait = rel.retry.base_timeout.min(Duration::from_millis(1));
            if let Ok(ack) = rel.ack_rx.recv_timeout(wait) {
                rel.unacked.remove(&(ack.dest, ack.seq));
            }
            self.retransmit_overdue(metrics, tracer);
            self.flush_delayed(tracer);
        }
    }

    /// One non-blocking settle round: flush delayed packets, drain acks,
    /// retransmit anything overdue at the current (virtual) time. Returns
    /// `None` once nothing on this wire awaits acknowledgement; otherwise
    /// the earliest deadline at which a pending tuple becomes overdue, so
    /// the simulation scheduler knows how far to advance the clock when
    /// every task is otherwise idle.
    pub(crate) fn sim_settle(
        &mut self,
        metrics: &mut TaskMetrics,
        tracer: &mut Option<TaskTracer>,
    ) -> Option<Timestamp> {
        self.flush_delayed(tracer);
        self.drain_acks();
        self.retransmit_overdue(metrics, tracer);
        self.flush_delayed(tracer);
        self.drain_acks();
        let link = self.link;
        let rel = self.reliable.as_ref()?;
        rel.unacked
            .iter()
            .map(|((dest, seq), p)| {
                let salt = Self::retry_salt(link, *dest, *seq, p.retries);
                p.last_tx.plus(rel.retry.jittered_timeout(p.retries, salt))
            })
            .min()
    }
}

/// The emission context handed to bolts (and used by spout drivers).
///
/// `emit` routes a tuple along every outgoing non-direct wire according to
/// its grouping; `emit_direct` addresses a specific task on the direct
/// wires. Emission blocks when a downstream queue is full — that is the
/// backpressure path.
pub struct Outbox<M: Message> {
    pub(crate) wires: Vec<OutWire<M>>,
    pub(crate) task_index: usize,
    pub(crate) metrics: TaskMetrics,
    pub(crate) clock: Clock,
    /// Per-task trace ring; `None` (the default) disables instrumentation
    /// entirely — every trace helper is then a branch on a `None` and the
    /// hot path stays as it was before tracing existed.
    pub(crate) tracer: Option<TaskTracer>,
}

impl<M: Message> Outbox<M> {
    /// This task's index within its component (0-based).
    pub fn task_index(&self) -> usize {
        self.task_index
    }

    /// Whether trace collection is enabled for this task. Bolts can gate
    /// any extra bookkeeping (e.g. stage histograms) on this so disabled
    /// runs pay nothing.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records an instant trace event at the current clock reading.
    /// No-op when tracing is disabled. Purely observational: records no
    /// randomness and never advances the clock, so enabling tracing
    /// cannot change a simulated run's transcript.
    #[inline]
    pub fn trace_instant(&mut self, stage: Stage, a: u64, b: u64) {
        if let Some(tr) = &mut self.tracer {
            tr.record(Event::instant(self.clock.now().as_nanos(), stage, a, b));
        }
    }

    /// Records a span trace event covering `start ..` now. Under the
    /// simulation scheduler the clock is frozen within an execute step, so
    /// intra-step spans deterministically report zero duration; threaded
    /// runs report real durations. No-op when tracing is disabled.
    #[inline]
    pub fn trace_span(&mut self, stage: Stage, start: Timestamp, a: u64, b: u64) {
        if let Some(tr) = &mut self.tracer {
            let dur = self.clock.now().saturating_since(start).as_nanos() as u64;
            tr.record(Event::span(start.as_nanos(), stage, dur, a, b));
        }
    }

    /// Detaches and freezes this task's trace ring (if tracing was
    /// enabled) for deposit into the run's trace sink.
    pub(crate) fn take_trace(&mut self) -> Option<TaskTrace> {
        self.tracer.take().map(TaskTracer::finish)
    }

    /// The current run time on the topology's clock: real elapsed time in
    /// a threaded run, deterministic virtual time in a simulated one. Use
    /// this — never [`std::time::Instant`] — to stamp tuples whose
    /// latencies the topology's metrics will measure.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Emits along all non-direct outgoing wires.
    pub fn emit(&mut self, msg: M) {
        let now = self.clock.now();
        let n_wires = self.wires.len();
        for w in 0..n_wires {
            let wire = &mut self.wires[w];
            match &wire.grouping {
                Grouping::Direct => continue,
                Grouping::Shuffle => {
                    let t = wire.rr_next % wire.senders.len();
                    wire.rr_next = wire.rr_next.wrapping_add(1);
                    let m = msg.clone();
                    wire.dispatch(t, m, now, &mut self.metrics, &mut self.tracer);
                }
                Grouping::Global => {
                    let m = msg.clone();
                    wire.dispatch(0, m, now, &mut self.metrics, &mut self.tracer);
                }
                Grouping::Fields(f) => {
                    let t = (f(&msg) % wire.senders.len() as u64) as usize;
                    let m = msg.clone();
                    wire.dispatch(t, m, now, &mut self.metrics, &mut self.tracer);
                }
                Grouping::Broadcast => {
                    for t in 0..wire.senders.len() {
                        let m = msg.clone();
                        wire.dispatch(t, m, now, &mut self.metrics, &mut self.tracer);
                    }
                }
            }
        }
    }

    /// Emits to one specific task along every direct outgoing wire.
    ///
    /// # Panics
    /// Panics if no outgoing wire uses [`Grouping::Direct`] or the task
    /// index is out of range.
    pub fn emit_direct(&mut self, task: usize, msg: M) {
        let now = self.clock.now();
        let mut hit = false;
        for wire in &mut self.wires {
            if !matches!(wire.grouping, Grouping::Direct) {
                continue;
            }
            hit = true;
            let m = msg.clone();
            wire.dispatch(task, m, now, &mut self.metrics, &mut self.tracer);
        }
        assert!(hit, "emit_direct requires a Direct-grouped outgoing wire");
    }

    /// Current depth of `task`'s input queue, maximized over this task's
    /// Direct-grouped outgoing wires — the signal an overload policy
    /// watches before deciding to shed (zero when there is no direct
    /// wire).
    pub fn direct_queue_depth(&self, task: usize) -> usize {
        self.wires
            .iter()
            .filter(|w| matches!(w.grouping, Grouping::Direct))
            .map(|w| w.senders[task].len())
            .max()
            .unwrap_or(0)
    }

    /// Records `n` input records dropped by this task's overload policy.
    /// Shedding must always be accounted: the counter surfaces as
    /// [`RunReport::shed`](crate::RunReport::shed).
    pub fn record_shed(&mut self, n: u64) {
        self.metrics.shed += n;
    }

    /// Records one checkpoint snapshot captured by this task, of
    /// `bytes` serialized bytes. Surfaces as
    /// [`RunReport::checkpoints`](crate::RunReport::checkpoints) /
    /// [`RunReport::checkpoint_bytes`](crate::RunReport::checkpoint_bytes).
    pub fn record_checkpoint(&mut self, bytes: u64) {
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_bytes += bytes;
    }

    /// Records how long a barrier control tuple stalled between injection
    /// upstream and this task aligning on it (virtual time under the
    /// simulator).
    pub fn record_barrier_stall(&mut self, stall: Duration) {
        self.metrics.barrier_stall.record(stall);
    }

    /// Records the end-to-end latency of one completed checkpoint epoch:
    /// barrier injection to the last task's snapshot publication.
    pub fn record_checkpoint_latency(&mut self, latency: Duration) {
        self.metrics.checkpoint_latency.record(latency);
    }

    pub(crate) fn send_eos(&mut self) {
        for w in 0..self.wires.len() {
            let wire = &mut self.wires[w];
            // Reliable wires first settle (flush delayed transmissions,
            // await every ack); only then may EOS enter the channel.
            wire.settle(&mut self.metrics, &mut self.tracer);
            wire.flush_delayed(&mut self.tracer);
        }
        self.send_eos_raw();
    }

    /// One non-blocking settle round over every wire. `None` means fully
    /// settled (EOS may go out); otherwise the earliest retry deadline
    /// across all wires.
    pub(crate) fn sim_settle(&mut self) -> Option<Timestamp> {
        let mut earliest: Option<Timestamp> = None;
        for w in 0..self.wires.len() {
            let wire = &mut self.wires[w];
            if let Some(deadline) = wire.sim_settle(&mut self.metrics, &mut self.tracer) {
                earliest = Some(match earliest {
                    Some(e) if e <= deadline => e,
                    _ => deadline,
                });
            }
        }
        earliest
    }

    /// Sends the EOS marker on every wire without settling first. The
    /// simulation scheduler calls this only after
    /// [`sim_settle`](Self::sim_settle) reported every wire settled.
    pub(crate) fn send_eos_raw(&mut self) {
        for wire in &mut self.wires {
            wire.flush_delayed(&mut self.tracer);
            for s in &wire.senders {
                s.send(Envelope::Eos).expect("receiver alive until EOS");
            }
        }
    }
}

/// Alignment bookkeeping for barrier control tuples arriving from several
/// upstream tasks.
///
/// A coordinated checkpoint injects one barrier per epoch into every wire
/// feeding a bolt; the bolt must not snapshot until the barrier has
/// arrived on *all* upstream links, or the snapshot would mix pre-barrier
/// state from one link with post-barrier tuples from another. Feed every
/// arriving barrier to [`observe`](Self::observe); it returns `true`
/// exactly once per epoch, when the last expected copy lands.
///
/// This tracks arrival counts only — it does not buffer the data tuples
/// that overtake a partially-aligned barrier. On FIFO effectively-once
/// links fed by a *single* upstream task per epoch source (the
/// dispatcher topology in ssj-distrib) no such buffering is needed:
/// alignment is immediate and the aligner degenerates to pass-through.
#[derive(Debug)]
pub struct BarrierAligner {
    expected: usize,
    seen: BTreeMap<u64, usize>,
}

impl BarrierAligner {
    /// An aligner expecting one barrier copy per epoch from each of
    /// `expected` upstream tasks.
    ///
    /// # Panics
    /// Panics if `expected` is zero.
    pub fn new(expected: usize) -> Self {
        assert!(
            expected > 0,
            "a bolt with no upstream links sees no barriers"
        );
        Self {
            expected,
            seen: BTreeMap::new(),
        }
    }

    /// Records one arrived barrier for `epoch`; returns `true` when this
    /// was the last expected copy (the epoch is now aligned and its state
    /// is forgotten).
    pub fn observe(&mut self, epoch: u64) -> bool {
        let n = self.seen.entry(epoch).or_insert(0);
        *n += 1;
        if *n >= self.expected {
            self.seen.remove(&epoch);
            true
        } else {
            false
        }
    }

    /// Number of epochs currently part-aligned (some but not all copies
    /// arrived).
    pub fn pending(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[derive(Clone, Debug, PartialEq)]
    struct N(u64);
    impl Message for N {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    fn outbox_with(
        grouping: Grouping<N>,
        n: usize,
    ) -> (Outbox<N>, Vec<crossbeam::channel::Receiver<Envelope<N>>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        (
            Outbox {
                wires: vec![OutWire::plain(grouping, senders)],
                task_index: 0,
                metrics: TaskMetrics::default(),
                clock: Clock::wall(),
                tracer: None,
            },
            receivers,
        )
    }

    fn data_count(r: &crossbeam::channel::Receiver<Envelope<N>>) -> usize {
        r.try_iter()
            .filter(|e| matches!(e, Envelope::Data(..) | Envelope::Seq { .. }))
            .count()
    }

    #[test]
    fn shuffle_round_robins() {
        let (mut o, rs) = outbox_with(Grouping::shuffle(), 3);
        for i in 0..9 {
            o.emit(N(i));
        }
        for r in &rs {
            assert_eq!(data_count(r), 3);
        }
        assert_eq!(o.metrics.msgs_out, 9);
        assert_eq!(o.metrics.bytes_out, 72);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (mut o, rs) = outbox_with(Grouping::broadcast(), 4);
        o.emit(N(7));
        for r in &rs {
            assert_eq!(data_count(r), 1);
        }
        assert_eq!(o.metrics.msgs_out, 4);
    }

    #[test]
    fn fields_grouping_is_sticky() {
        let (mut o, rs) = outbox_with(Grouping::fields(|m: &N| m.0), 2);
        for _ in 0..5 {
            o.emit(N(4)); // 4 % 2 == 0
        }
        assert_eq!(data_count(&rs[0]), 5);
        assert_eq!(data_count(&rs[1]), 0);
    }

    #[test]
    fn global_goes_to_task_zero() {
        let (mut o, rs) = outbox_with(Grouping::global(), 3);
        o.emit(N(1));
        assert_eq!(data_count(&rs[0]), 1);
        assert_eq!(data_count(&rs[1]), 0);
    }

    #[test]
    fn direct_targets_one_task() {
        let (mut o, rs) = outbox_with(Grouping::Direct, 3);
        o.emit_direct(2, N(5));
        o.emit(N(9)); // no non-direct wires: silently routes nowhere
        assert_eq!(data_count(&rs[0]), 0);
        assert_eq!(data_count(&rs[2]), 1);
    }

    #[test]
    #[should_panic(expected = "Direct-grouped")]
    fn emit_direct_without_direct_wire_panics() {
        let (mut o, _rs) = outbox_with(Grouping::shuffle(), 2);
        o.emit_direct(0, N(1));
    }

    #[test]
    fn eos_fans_out() {
        let (mut o, rs) = outbox_with(Grouping::shuffle(), 2);
        o.send_eos();
        for r in &rs {
            assert!(matches!(r.try_recv().unwrap(), Envelope::Eos));
        }
    }

    #[test]
    fn direct_queue_depth_tracks_backlog() {
        let (mut o, rs) = outbox_with(Grouping::Direct, 2);
        assert_eq!(o.direct_queue_depth(0), 0);
        o.emit_direct(0, N(1));
        o.emit_direct(0, N(2));
        o.emit_direct(1, N(3));
        assert_eq!(o.direct_queue_depth(0), 2);
        assert_eq!(o.direct_queue_depth(1), 1);
        assert_eq!(data_count(&rs[0]), 2);
        assert_eq!(o.direct_queue_depth(0), 0);
    }

    #[test]
    fn record_shed_counts_in_metrics() {
        let (mut o, _rs) = outbox_with(Grouping::global(), 1);
        o.record_shed(3);
        o.record_shed(2);
        assert_eq!(o.metrics.shed, 5);
    }

    #[test]
    fn reliable_rx_delivers_in_order_and_dedups() {
        let mut rx = ReliableRx::default();
        let now = Timestamp::ZERO;
        let mut out = Vec::new();
        // Out of order: 1 buffers, 0 releases both.
        assert!(!rx.accept(1, N(1), now, &mut out));
        assert!(out.is_empty());
        assert!(!rx.accept(0, N(0), now, &mut out));
        assert_eq!(out.iter().map(|(m, _)| m.0).collect::<Vec<_>>(), [0, 1]);
        // Duplicates of delivered and pending seqs are rejected.
        assert!(rx.accept(0, N(0), now, &mut out));
        assert!(!rx.accept(3, N(3), now, &mut out));
        assert!(rx.accept(3, N(3), now, &mut out));
        assert_eq!(out.len(), 2);
        // The gap fills, everything drains.
        assert!(!rx.accept(2, N(2), now, &mut out));
        assert_eq!(
            out.iter().map(|(m, _)| m.0).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn single_upstream_barrier_aligns_immediately() {
        let mut a = BarrierAligner::new(1);
        assert!(a.observe(1));
        assert!(a.observe(2));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn multi_upstream_barrier_aligns_on_last_copy() {
        let mut a = BarrierAligner::new(3);
        assert!(!a.observe(1));
        assert!(!a.observe(1));
        assert_eq!(a.pending(), 1);
        assert!(a.observe(1));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn interleaved_epochs_align_independently() {
        let mut a = BarrierAligner::new(2);
        assert!(!a.observe(5));
        assert!(!a.observe(6));
        assert_eq!(a.pending(), 2);
        assert!(a.observe(6));
        assert!(a.observe(5));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "no upstream links")]
    fn zero_upstream_aligner_is_rejected() {
        let _ = BarrierAligner::new(0);
    }
}
