//! Messages, bolts and the emission context.

use crate::grouping::Grouping;
use crate::metrics::TaskMetrics;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// A tuple payload flowing through a topology.
///
/// `wire_bytes` is what the communication-cost accounting charges per hop —
/// override it to match what a binary codec would put on the network
/// (the default charges the in-memory size, which is only right for plain
/// data types).
pub trait Message: Send + Clone + 'static {
    /// Serialized size of this message in bytes.
    fn wire_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
    }
}

/// The envelope moving through channels: payload plus queueing metadata,
/// or the end-of-stream marker.
#[derive(Debug)]
pub(crate) enum Envelope<M> {
    /// A data tuple and the instant it was enqueued (for queue-wait
    /// metrics).
    Data(M, Instant),
    /// One upstream task finished.
    Eos,
}

/// A processing vertex: receives tuples, may emit downstream.
pub trait Bolt<M: Message>: Send {
    /// Handles one tuple.
    fn execute(&mut self, msg: M, out: &mut Outbox<M>);

    /// Called once, after every upstream task has finished, before the
    /// bolt's own end-of-stream propagates. Flush buffered state here.
    fn finish(&mut self, out: &mut Outbox<M>) {
        let _ = out;
    }
}

/// A terminal bolt collecting every received tuple into a shared vector.
pub struct CollectorBolt<M> {
    out: Arc<Mutex<Vec<M>>>,
}

impl<M> CollectorBolt<M> {
    /// A collector writing into `out`.
    pub fn new(out: Arc<Mutex<Vec<M>>>) -> Self {
        Self { out }
    }
}

impl<M: Message> Bolt<M> for CollectorBolt<M> {
    fn execute(&mut self, msg: M, _out: &mut Outbox<M>) {
        self.out.lock().push(msg);
    }
}

/// One outgoing wire from a task: the grouping plus a sender per
/// destination task.
pub(crate) struct OutWire<M> {
    pub(crate) grouping: Grouping<M>,
    pub(crate) senders: Vec<Sender<Envelope<M>>>,
    pub(crate) rr_next: usize,
}

/// The emission context handed to bolts (and used by spout drivers).
///
/// `emit` routes a tuple along every outgoing non-direct wire according to
/// its grouping; `emit_direct` addresses a specific task on the direct
/// wires. Emission blocks when a downstream queue is full — that is the
/// backpressure path.
pub struct Outbox<M: Message> {
    pub(crate) wires: Vec<OutWire<M>>,
    pub(crate) task_index: usize,
    pub(crate) metrics: TaskMetrics,
}

impl<M: Message> Outbox<M> {
    /// This task's index within its component (0-based).
    pub fn task_index(&self) -> usize {
        self.task_index
    }

    /// Emits along all non-direct outgoing wires.
    pub fn emit(&mut self, msg: M) {
        let now = Instant::now();
        let n_wires = self.wires.len();
        for w in 0..n_wires {
            let wire = &mut self.wires[w];
            match &wire.grouping {
                Grouping::Direct => continue,
                Grouping::Shuffle => {
                    let t = wire.rr_next % wire.senders.len();
                    wire.rr_next = wire.rr_next.wrapping_add(1);
                    let m = msg.clone();
                    self.metrics.msgs_out += 1;
                    self.metrics.bytes_out += m.wire_bytes();
                    wire.senders[t]
                        .send(Envelope::Data(m, now))
                        .expect("receiver alive until EOS");
                }
                Grouping::Global => {
                    let m = msg.clone();
                    self.metrics.msgs_out += 1;
                    self.metrics.bytes_out += m.wire_bytes();
                    wire.senders[0]
                        .send(Envelope::Data(m, now))
                        .expect("receiver alive until EOS");
                }
                Grouping::Fields(f) => {
                    let t = (f(&msg) % wire.senders.len() as u64) as usize;
                    let m = msg.clone();
                    self.metrics.msgs_out += 1;
                    self.metrics.bytes_out += m.wire_bytes();
                    wire.senders[t]
                        .send(Envelope::Data(m, now))
                        .expect("receiver alive until EOS");
                }
                Grouping::Broadcast => {
                    for t in 0..wire.senders.len() {
                        let m = msg.clone();
                        self.metrics.msgs_out += 1;
                        self.metrics.bytes_out += m.wire_bytes();
                        wire.senders[t]
                            .send(Envelope::Data(m, now))
                            .expect("receiver alive until EOS");
                    }
                }
            }
        }
    }

    /// Emits to one specific task along every direct outgoing wire.
    ///
    /// # Panics
    /// Panics if no outgoing wire uses [`Grouping::Direct`] or the task
    /// index is out of range.
    pub fn emit_direct(&mut self, task: usize, msg: M) {
        let now = Instant::now();
        let mut hit = false;
        for wire in &mut self.wires {
            if !matches!(wire.grouping, Grouping::Direct) {
                continue;
            }
            hit = true;
            let m = msg.clone();
            self.metrics.msgs_out += 1;
            self.metrics.bytes_out += m.wire_bytes();
            wire.senders[task]
                .send(Envelope::Data(m, now))
                .expect("receiver alive until EOS");
        }
        assert!(hit, "emit_direct requires a Direct-grouped outgoing wire");
    }

    pub(crate) fn send_eos(&mut self) {
        for wire in &mut self.wires {
            for s in &wire.senders {
                s.send(Envelope::Eos).expect("receiver alive until EOS");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[derive(Clone, Debug, PartialEq)]
    struct N(u64);
    impl Message for N {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    fn outbox_with(
        grouping: Grouping<N>,
        n: usize,
    ) -> (Outbox<N>, Vec<crossbeam::channel::Receiver<Envelope<N>>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        (
            Outbox {
                wires: vec![OutWire {
                    grouping,
                    senders,
                    rr_next: 0,
                }],
                task_index: 0,
                metrics: TaskMetrics::default(),
            },
            receivers,
        )
    }

    fn data_count(r: &crossbeam::channel::Receiver<Envelope<N>>) -> usize {
        r.try_iter()
            .filter(|e| matches!(e, Envelope::Data(..)))
            .count()
    }

    #[test]
    fn shuffle_round_robins() {
        let (mut o, rs) = outbox_with(Grouping::shuffle(), 3);
        for i in 0..9 {
            o.emit(N(i));
        }
        for r in &rs {
            assert_eq!(data_count(r), 3);
        }
        assert_eq!(o.metrics.msgs_out, 9);
        assert_eq!(o.metrics.bytes_out, 72);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (mut o, rs) = outbox_with(Grouping::broadcast(), 4);
        o.emit(N(7));
        for r in &rs {
            assert_eq!(data_count(r), 1);
        }
        assert_eq!(o.metrics.msgs_out, 4);
    }

    #[test]
    fn fields_grouping_is_sticky() {
        let (mut o, rs) = outbox_with(Grouping::fields(|m: &N| m.0), 2);
        for _ in 0..5 {
            o.emit(N(4)); // 4 % 2 == 0
        }
        assert_eq!(data_count(&rs[0]), 5);
        assert_eq!(data_count(&rs[1]), 0);
    }

    #[test]
    fn global_goes_to_task_zero() {
        let (mut o, rs) = outbox_with(Grouping::global(), 3);
        o.emit(N(1));
        assert_eq!(data_count(&rs[0]), 1);
        assert_eq!(data_count(&rs[1]), 0);
    }

    #[test]
    fn direct_targets_one_task() {
        let (mut o, rs) = outbox_with(Grouping::Direct, 3);
        o.emit_direct(2, N(5));
        o.emit(N(9)); // no non-direct wires: silently routes nowhere
        assert_eq!(data_count(&rs[0]), 0);
        assert_eq!(data_count(&rs[2]), 1);
    }

    #[test]
    #[should_panic(expected = "Direct-grouped")]
    fn emit_direct_without_direct_wire_panics() {
        let (mut o, _rs) = outbox_with(Grouping::shuffle(), 2);
        o.emit_direct(0, N(1));
    }

    #[test]
    fn eos_fans_out() {
        let (mut o, rs) = outbox_with(Grouping::shuffle(), 2);
        o.send_eos();
        for r in &rs {
            assert!(matches!(r.try_recv().unwrap(), Envelope::Eos));
        }
    }
}
