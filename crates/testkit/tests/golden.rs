//! Golden-transcript regression: the committed transcript of the
//! reference simulated run must replay byte-identically, forever.
//!
//! The transcript fixes the complete interleaving of
//! [`testkit::reference_run`] — scheduler choices, retry timers, link
//! faults, the injected crash, and the virtual-clock readings on every
//! line. Any change to the simulation's decision order (a new RNG draw, a
//! reordered settle poll, a changed transcript format) breaks this test
//! *loudly*, which is the point: determinism regressions must never land
//! silently. After an *intentional* change, regenerate with
//!
//! ```text
//! cargo test -p testkit --test golden regenerate -- --ignored
//! ```
//!
//! and review the transcript diff like any other golden-file change.

use testkit::transcript::{diff, Transcript};

const GOLDEN_SEED: u64 = 7;
const GOLDEN: &str = include_str!("../golden/reference_seed7.transcript");
const GOLDEN_CHECKPOINT: &str = include_str!("../golden/checkpoint_seed7.transcript");

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/reference_seed7.transcript")
}

fn checkpoint_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/checkpoint_seed7.transcript")
}

#[test]
fn golden_transcript_replays_byte_identical() {
    let run = testkit::reference_run(GOLDEN_SEED);
    let got = run.transcript.to_text();
    if got != GOLDEN {
        let report = diff(&Transcript::from_text(GOLDEN), &run.transcript)
            .unwrap_or_else(|| "(same lines, different trailing bytes)".into());
        panic!(
            "replay diverged from the committed golden transcript.\n{report}\n\
             If the change is intentional, regenerate with\n  \
             cargo test -p testkit --test golden regenerate -- --ignored"
        );
    }
}

#[test]
fn two_consecutive_runs_are_byte_identical() {
    let a = testkit::reference_run(GOLDEN_SEED).transcript.to_text();
    let b = testkit::reference_run(GOLDEN_SEED).transcript.to_text();
    assert_eq!(a, b, "same seed must replay the exact same interleaving");
}

#[test]
fn checkpointed_golden_transcript_replays_byte_identical() {
    let run = testkit::reference_checkpoint_run(GOLDEN_SEED);
    let transcript = run.transcript.expect("sim runs record a transcript");
    let got = transcript.to_text();
    if got != GOLDEN_CHECKPOINT {
        let report = diff(&Transcript::from_text(GOLDEN_CHECKPOINT), &transcript)
            .unwrap_or_else(|| "(same lines, different trailing bytes)".into());
        panic!(
            "checkpointed replay diverged from the committed golden transcript.\n{report}\n\
             If the change is intentional, regenerate with\n  \
             cargo test -p testkit --test golden regenerate -- --ignored"
        );
    }
}

#[test]
#[ignore = "rewrites the golden files; run only after an intentional simulation change"]
fn regenerate() {
    let run = testkit::reference_run(GOLDEN_SEED);
    std::fs::write(golden_path(), run.transcript.to_text()).expect("write golden transcript");
    let ckpt = testkit::reference_checkpoint_run(GOLDEN_SEED);
    std::fs::write(
        checkpoint_golden_path(),
        ckpt.transcript.expect("sim transcript").to_text(),
    )
    .expect("write checkpoint golden transcript");
}
