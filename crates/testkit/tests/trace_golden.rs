//! Golden-trace regression: the structured trace of the traced reference
//! run must render byte-identically, forever.
//!
//! The JSONL trace is the observability counterpart of the golden
//! transcript: every span's virtual-clock timestamp, operands, and the
//! deterministic per-task flush order are frozen by the committed file.
//! Any change that perturbs the schedule, adds or drops an instrumentation
//! point, or alters the exporter's formatting breaks this test loudly.
//! After an *intentional* change, regenerate with
//!
//! ```text
//! cargo test -p testkit --test trace_golden regenerate_trace -- --ignored
//! ```
//!
//! and review the diff like any other golden-file change.

use testkit::{reference_trace_run, reference_traceable_run};

const GOLDEN_SEED: u64 = 7;
const GOLDEN_TRACE: &str = include_str!("../golden/trace_seed7.jsonl");

fn trace_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/trace_seed7.jsonl")
}

fn render(run: &ssj_distrib::DistributedJoinResult) -> String {
    obs::trace_jsonl(run.trace.as_ref().expect("traced run records a trace"))
}

#[test]
fn golden_trace_renders_byte_identical() {
    let got = render(&reference_trace_run(GOLDEN_SEED));
    if got != GOLDEN_TRACE {
        let first = GOLDEN_TRACE
            .lines()
            .zip(got.lines())
            .position(|(a, b)| a != b);
        panic!(
            "trace diverged from the committed golden (first differing line: {first:?}, \
             golden {} lines, got {}).\nIf the change is intentional, regenerate with\n  \
             cargo test -p testkit --test trace_golden regenerate_trace -- --ignored",
            GOLDEN_TRACE.lines().count(),
            got.lines().count()
        );
    }
}

#[test]
fn two_traced_runs_render_byte_identical() {
    let a = render(&reference_trace_run(GOLDEN_SEED));
    let b = render(&reference_trace_run(GOLDEN_SEED));
    assert_eq!(a, b, "same seed must render the exact same trace");
    assert!(!a.is_empty());
}

#[test]
fn disabling_instrumentation_changes_nothing_but_the_trace() {
    let traced = reference_traceable_run(GOLDEN_SEED, true);
    let plain = reference_traceable_run(GOLDEN_SEED, false);
    // Tracing is observation-only: the schedule (transcript), the results,
    // and the run counters are identical with and without it.
    assert_eq!(
        traced.transcript, plain.transcript,
        "tracing must not perturb the simulated schedule"
    );
    let keys = |r: &ssj_distrib::DistributedJoinResult| {
        let mut k: Vec<_> = r.pairs.iter().map(|m| m.key()).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(keys(&traced), keys(&plain));
    assert_eq!(
        obs::prometheus(&traced.report.metrics_snapshot()),
        obs::prometheus(&plain.report.metrics_snapshot()),
        "run counters must not depend on tracing"
    );
    // And the disabled run carries no observability state at all.
    assert!(plain.trace.is_none());
    assert!(plain.stages.is_empty());
    assert!(traced.trace.is_some());
}

#[test]
fn exported_metrics_schema_is_complete_and_stable() {
    let run = reference_trace_run(GOLDEN_SEED);
    let snap = run.report.metrics_snapshot();
    let text = obs::prometheus(&snap);
    // Every metric family appears exactly once, with HELP before TYPE.
    for name in snap.names() {
        assert_eq!(
            text.matches(&format!("# TYPE {name} ")).count(),
            1,
            "{name} must have exactly one TYPE line"
        );
        assert_eq!(
            text.matches(&format!("# HELP {name} ")).count(),
            1,
            "{name} must have exactly one HELP line"
        );
    }
    // The chaos / checkpoint machinery this run exercises is all visible.
    for name in [
        "dssj_msgs_in_total",
        "dssj_retries_total",
        "dssj_link_dropped_total",
        "dssj_checkpoints_total",
        "dssj_barrier_stall_ns",
        "dssj_task_failures_total",
        "dssj_run_elapsed_ns",
    ] {
        assert!(text.contains(name), "metrics export must include {name}");
    }
    // Rendering is a pure function of the snapshot.
    assert_eq!(text, obs::prometheus(&snap));
}

#[test]
#[ignore = "rewrites the golden trace; run only after an intentional instrumentation change"]
fn regenerate_trace() {
    let got = render(&reference_trace_run(GOLDEN_SEED));
    std::fs::write(trace_golden_path(), got).expect("write golden trace");
}
