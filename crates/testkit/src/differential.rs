//! Differential execution: run the real distributed system under
//! deterministic simulation and compare its output against the
//! [`oracle`], exactly.
//!
//! [`run_differential`] is the single entry point: it derives a workload
//! from a seed, runs any [`Strategy`] × [`LocalAlgo`] × window
//! configuration — optionally with injected joiner crashes, lossy links,
//! and load shedding — under [`Scheduler::Sim`] with the same seed, and
//! panics unless the produced pair set (keys *and* similarity values)
//! equals the oracle's. Because the whole run is simulated, a failing seed
//! replays the exact same interleaving every time: paste the seed into a
//! test and debug a perfectly reproducible execution.

use crate::oracle;
use ssj_core::{JoinConfig, MatchPair};
use ssj_distrib::{
    run_bistream_distributed, run_distributed, CheckpointConfig, DistributedJoinConfig,
    DistributedJoinResult, LocalAlgo, MemStore, SnapshotStore, Strategy,
};
use ssj_text::Record;
use ssj_workloads::{DatasetProfile, LengthDist, StreamGenerator};
use std::sync::Arc;
use stormlite::{FaultPlan, Scheduler, SimConfig};

/// The workload profile differential tests run on: moderate skew, short
/// sets, and a high near-duplicate rate so that every seed produces a
/// non-trivial number of matching pairs at the usual thresholds.
pub fn differential_profile() -> DatasetProfile {
    DatasetProfile {
        name: "differential",
        vocab: 300,
        skew: 0.8,
        len_dist: LengthDist::Uniform { lo: 2, hi: 24 },
        dup_rate: 0.4,
        dup_mutations: 2,
        recent_pool: 128,
    }
}

/// One differential scenario: everything about a run except the seed.
#[derive(Debug, Clone)]
pub struct DifferentialCase {
    /// Stream length.
    pub records: usize,
    /// Joiner parallelism.
    pub k: usize,
    /// Threshold and window.
    pub join: JoinConfig,
    /// Local algorithm on each joiner.
    pub local: LocalAlgo,
    /// Distribution strategy.
    pub strategy: Strategy,
    /// Run as a bi-stream (R–S) join: records with even ids form the left
    /// stream, odd ids the right.
    pub bistream: bool,
    /// Inject a seeded joiner crash (recovery must mask it exactly).
    pub crash: bool,
    /// Make every wire lossy and at-least-once (the protocol must mask the
    /// faults exactly).
    pub chaos: bool,
    /// Shed records above this dispatcher queue depth; the comparison then
    /// uses the shed-adjusted oracle. Incompatible with `bistream` (the
    /// bi-stream oracle has no shed accounting).
    pub shed_watermark: Option<usize>,
    /// Checkpoint every this many dispatched records into an in-memory
    /// store. Checkpointing must never change the output, so the oracle
    /// comparison is unchanged; it composes with every other knob.
    pub checkpoint_interval: Option<u64>,
}

impl DifferentialCase {
    /// A plain fault-free case with the given topology shape.
    pub fn new(
        records: usize,
        k: usize,
        join: JoinConfig,
        local: LocalAlgo,
        strategy: Strategy,
    ) -> Self {
        Self {
            records,
            k,
            join,
            local,
            strategy,
            bistream: false,
            crash: false,
            chaos: false,
            shed_watermark: None,
            checkpoint_interval: None,
        }
    }

    /// Runs as a bi-stream join.
    pub fn bistream(mut self) -> Self {
        self.bistream = true;
        self
    }

    /// Injects a seeded joiner crash.
    pub fn with_crash(mut self) -> Self {
        self.crash = true;
        self
    }

    /// Makes every wire lossy under at-least-once delivery.
    pub fn with_chaos(mut self) -> Self {
        self.chaos = true;
        self
    }

    /// Sheds load above the given queue depth.
    pub fn with_shedding(mut self, watermark: usize) -> Self {
        self.shed_watermark = Some(watermark);
        self
    }

    /// Checkpoints every `interval` dispatched records.
    pub fn with_checkpoints(mut self, interval: u64) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }
}

/// What a differential run produced, after the oracle comparison passed.
#[derive(Debug)]
pub struct DifferentialOutcome {
    /// Result pairs the system (and the oracle) produced.
    pub pairs: usize,
    /// Records shed by the dispatcher.
    pub shed: usize,
    /// Exact shed-adjusted recall (`1.0` when nothing was shed).
    pub recall: f64,
    /// The full run result, for further assertions.
    pub result: DistributedJoinResult,
}

/// Runs `case` under deterministic simulation with `seed` driving the
/// workload, the interleaving, and every injected fault — then asserts
/// the result set equals the reference oracle exactly (same pair keys,
/// same similarity values).
///
/// # Panics
///
/// Panics on any divergence from the oracle, naming the first offending
/// seed/key so the failure can be replayed verbatim.
pub fn run_differential(seed: u64, case: &DifferentialCase) -> DifferentialOutcome {
    assert!(
        !(case.bistream && case.shed_watermark.is_some()),
        "shed accounting is only defined for the self-join oracle"
    );
    let records = StreamGenerator::new(differential_profile(), seed).take_records(case.records);

    let mut cfg = DistributedJoinConfig {
        k: case.k,
        join: case.join,
        local: case.local,
        strategy: case.strategy.clone(),
        channel_capacity: 64,
        source_rate: None,
        fault: None,
        chaos_seed: case.chaos.then_some(seed),
        shed_watermark: case.shed_watermark,
        replay_buffer_cap: None,
        checkpoint: case.checkpoint_interval.map(CheckpointConfig::in_memory),
        restore_from: None,
        trace: None,
        scheduler: Scheduler::Sim(SimConfig::seeded(seed)),
    };
    if case.crash {
        // Crash point within the stream so the crash actually fires on
        // most seeds; recovery must reproduce the exact oracle result.
        let horizon = (case.records as u64 / 2).max(1);
        cfg.fault = Some(FaultPlan::new().crash_seeded("joiner", case.k, horizon, seed));
    }

    let (result, expect) = if case.bistream {
        let (left, right): (Vec<Record>, Vec<Record>) =
            records.iter().cloned().partition(|r| r.id().0 % 2 == 0);
        let result = run_bistream_distributed(&left, &right, &cfg);
        let expect = oracle::bistream_join(&left, &right, &case.join);
        (result, expect)
    } else {
        let result = run_distributed(&records, &cfg);
        let expect = oracle::self_join_surviving(&records, &case.join, &result.shed_records);
        (result, expect)
    };

    let got_keys = oracle::sorted_keys(&result.pairs);
    let expect_keys = oracle::sorted_keys(&expect);
    assert_eq!(
        got_keys, expect_keys,
        "seed {seed}: result pair set diverges from oracle ({case:?})"
    );
    let mut got_sorted = result.pairs.clone();
    got_sorted.sort_by_key(|m| m.key());
    let mut expect_sorted = expect;
    expect_sorted.sort_by_key(|m| m.key());
    for (g, e) in got_sorted.iter().zip(&expect_sorted) {
        assert!(
            (g.similarity - e.similarity).abs() < 1e-12,
            "seed {seed}: similarity diverges on {:?}: {} vs oracle {}",
            g.key(),
            g.similarity,
            e.similarity
        );
    }

    let recall = if case.shed_watermark.is_some() {
        oracle::shed_recall(&records, &case.join, &result.shed_records)
    } else {
        1.0
    };
    DifferentialOutcome {
        pairs: got_keys.len(),
        shed: result.shed_records.len(),
        recall,
        result,
    }
}

/// What a crash-and-restore differential produced, after both phases'
/// oracle comparisons passed.
#[derive(Debug)]
pub struct RestoreOutcome {
    /// Cut id of the checkpoint the second phase restored from (`None` if
    /// the first phase died before any epoch committed, in which case the
    /// restored run was compared against the full oracle).
    pub cut: Option<u64>,
    /// Result pairs the restored run (and the suffix oracle) produced.
    pub pairs: usize,
}

/// Differential crash-and-restore: proves a restored topology is exact.
///
/// Phase one streams ~60% of the workload with checkpointing enabled
/// (interval from [`DifferentialCase::checkpoint_interval`], default
/// `records / 6`) into a shared in-memory store, then the whole process
/// "dies" — everything but the store is discarded, composing with any
/// in-run crash/chaos the case injects. Phase two rebuilds the topology
/// from the store's latest complete checkpoint and streams the full
/// workload; the driver skips records the checkpoint covers. The restored
/// run must produce **exactly** the oracle pairs whose later (probing)
/// record is past the checkpoint's cut — same keys, byte-exact
/// similarities — for every strategy, local algorithm, and window kind.
///
/// # Panics
///
/// Panics on any divergence, or if the case requests shedding (the
/// shed-adjusted oracle is not defined across a restore boundary).
pub fn run_restore_differential(seed: u64, case: &DifferentialCase) -> RestoreOutcome {
    assert!(
        case.shed_watermark.is_none(),
        "shed accounting is not defined across a restore boundary"
    );
    let records = StreamGenerator::new(differential_profile(), seed).take_records(case.records);
    let store: Arc<dyn SnapshotStore> = Arc::new(MemStore::new());
    let interval = case
        .checkpoint_interval
        .unwrap_or((case.records as u64 / 6).max(1));

    let mut phase1 = DistributedJoinConfig {
        k: case.k,
        join: case.join,
        local: case.local,
        strategy: case.strategy.clone(),
        channel_capacity: 64,
        source_rate: None,
        fault: None,
        chaos_seed: case.chaos.then_some(seed),
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: Some(CheckpointConfig::new(interval, Arc::clone(&store))),
        restore_from: None,
        trace: None,
        scheduler: Scheduler::Sim(SimConfig::seeded(seed)),
    };
    if case.crash {
        let horizon = (case.records as u64 / 4).max(1);
        phase1.fault = Some(FaultPlan::new().crash_seeded("joiner", case.k, horizon, seed));
    }
    // The "whole-process crash": phase one sees only a prefix of the
    // stream, and nothing of it survives but the snapshot store.
    let survives = (records.len() * 3 / 5).max(1);
    let prefix = &records[..survives];

    let mut phase2 = phase1.clone();
    phase2.fault = None;
    phase2.checkpoint = None;
    phase2.restore_from = Some(Arc::clone(&store));
    phase2.scheduler = Scheduler::Sim(SimConfig::seeded(seed ^ 0x5eed));

    let split = |rs: &[Record]| -> (Vec<Record>, Vec<Record>) {
        rs.iter().cloned().partition(|r| r.id().0 % 2 == 0)
    };
    let (restored, oracle_pairs): (DistributedJoinResult, Vec<MatchPair>) = if case.bistream {
        let (pl, pr) = split(prefix);
        let _ = run_bistream_distributed(&pl, &pr, &phase1);
        let (l, r) = split(&records);
        let restored = run_bistream_distributed(&l, &r, &phase2);
        let expect = oracle::bistream_join(&l, &r, &case.join);
        (restored, expect)
    } else {
        let _ = run_distributed(prefix, &phase1);
        let restored = run_distributed(&records, &phase2);
        let expect = oracle::self_join_surviving(&records, &case.join, &[]);
        (restored, expect)
    };

    // The restored run owes exactly the pairs whose probing record is past
    // the cut: earlier pairs were phase one's to emit (and died with it).
    let cut = restored.restored_cut;
    let floor = cut.unwrap_or(0);
    let mut expect: Vec<MatchPair> = oracle_pairs
        .into_iter()
        .filter(|m| m.later.0 > floor)
        .collect();
    let got_keys = oracle::sorted_keys(&restored.pairs);
    let expect_keys = oracle::sorted_keys(&expect);
    assert_eq!(
        got_keys, expect_keys,
        "seed {seed}: restored run diverges from the post-cut oracle \
         (cut {cut:?}, {case:?})"
    );
    let mut got_sorted = restored.pairs.clone();
    got_sorted.sort_by_key(|m| m.key());
    expect.sort_by_key(|m| m.key());
    for (g, e) in got_sorted.iter().zip(&expect) {
        assert!(
            (g.similarity - e.similarity).abs() < 1e-12,
            "seed {seed}: restored similarity diverges on {:?}: {} vs oracle {}",
            g.key(),
            g.similarity,
            e.similarity
        );
    }
    RestoreOutcome {
        cut,
        pairs: got_keys.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::Window;
    use ssj_distrib::PartitionMethod;

    fn base_case() -> DifferentialCase {
        DifferentialCase::new(
            150,
            3,
            JoinConfig::jaccard(0.7),
            LocalAlgo::bundle(),
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 50,
            },
        )
    }

    #[test]
    fn plain_case_matches_oracle() {
        let out = run_differential(11, &base_case());
        assert!(
            out.pairs > 0,
            "workload produced no pairs — test is vacuous"
        );
        assert_eq!(out.shed, 0);
    }

    #[test]
    fn crash_and_chaos_case_matches_oracle() {
        let mut case = base_case().with_crash().with_chaos();
        case.join = case.join.with_window(Window::Count(60));
        run_differential(23, &case);
    }

    #[test]
    fn bistream_case_matches_oracle() {
        let out = run_differential(5, &base_case().bistream());
        assert!(out.pairs > 0, "bistream workload produced no pairs");
    }

    #[test]
    fn shedding_case_uses_adjusted_oracle() {
        let out = run_differential(3, &base_case().with_shedding(4));
        assert!(out.recall <= 1.0 && out.recall > 0.0);
    }

    #[test]
    fn checkpointing_leaves_the_oracle_comparison_unchanged() {
        let mut case = base_case().with_checkpoints(20).with_crash();
        case.join = case.join.with_window(Window::Count(60));
        let out = run_differential(17, &case);
        assert!(out.pairs > 0);
        assert!(
            out.result.report.checkpoints() > 0,
            "no snapshot was ever published — the knob did nothing"
        );
    }

    #[test]
    fn restore_differential_resumes_past_the_cut() {
        let out = run_restore_differential(9, &base_case());
        assert!(out.cut.is_some(), "phase one committed no epoch");
        assert!(out.pairs > 0, "post-cut suffix produced no pairs");
    }

    #[test]
    fn restore_differential_handles_bistream_and_windows() {
        let mut case = base_case().bistream();
        case.join = case.join.with_window(Window::Count(60));
        let out = run_restore_differential(13, &case);
        assert!(out.cut.is_some());
    }

    #[test]
    fn same_seed_same_outcome() {
        let case = base_case().with_chaos();
        let a = run_differential(42, &case);
        let b = run_differential(42, &case);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(
            oracle::sorted_keys(&a.result.pairs),
            oracle::sorted_keys(&b.result.pairs)
        );
        assert_eq!(a.result.report.elapsed, b.result.report.elapsed);
    }
}
