//! Transcript recording and diffing for golden-run regression tests.
//!
//! A [`Transcript`] is the full interleaving record
//! of a simulated run. [`reference_run`] executes a fixed topology —
//! exercising crashes, lossy links, at-least-once retries and the virtual
//! clock all at once — whose transcript for a given seed is *frozen*: a
//! golden copy is committed under `crates/testkit/golden/` and the
//! regression test asserts byte-identical replay. Any change to scheduler
//! order, retry timing, fault decisions, or transcript formatting shows up
//! as a diff against the golden file, with [`diff`] pinpointing the first
//! divergent step.

use std::time::Duration;
use stormlite::{
    Delivery, FaultPlan, Grouping, LinkFault, LinkFaultPlan, RetryConfig, SimConfig, SimRun,
    Topology,
};

pub use stormlite::Transcript;

/// The fixed simulated topology behind the golden transcripts: a 40-tuple
/// source feeding 2 worker tasks over a lossy at-least-once wire, one
/// seeded worker crash, and a global sink. Small enough to read by hand,
/// rich enough to cover every transcript event kind.
pub fn reference_run(seed: u64) -> SimRun {
    #[derive(Clone)]
    struct Val(u64);
    impl stormlite::Message for Val {}

    struct Double;
    impl stormlite::Bolt<Val> for Double {
        fn execute(&mut self, msg: Val, out: &mut stormlite::Outbox<Val>) {
            out.emit(Val(msg.0 * 2));
        }
    }

    let retry = RetryConfig {
        base_timeout: Duration::from_micros(500),
        backoff_factor: 2,
        max_timeout: Duration::from_millis(16),
    };
    let mut t: Topology<Val> = Topology::new();
    t.spout("source", (0..40u64).map(Val));
    t.bolt("double", 2, |_| Double);
    let _collected = t.collector("sink");
    t.wire_with(
        "source",
        "double",
        Grouping::shuffle(),
        Delivery::AtLeastOnce(retry),
    );
    t.wire_with(
        "double",
        "sink",
        Grouping::global(),
        Delivery::AtLeastOnce(retry),
    );
    t = t
        .with_fault_plan(FaultPlan::new().crash_seeded("double", 2, 15, seed))
        .with_link_faults(
            LinkFaultPlan::new(seed)
                .lossy("source", "double", LinkFault::seeded(seed ^ 1))
                .lossy("double", "sink", LinkFault::seeded(seed ^ 2)),
        );
    t.run_sim(SimConfig::seeded(seed))
}

/// The checkpointed counterpart of [`reference_run`]: the full distributed
/// join topology under simulation with epoch checkpointing, a seeded
/// joiner crash, and chaos-mode lossy wires all active at once. Its
/// transcript freezes the barrier/snapshot machinery's scheduling — epoch
/// injection points, snapshot publishes, replay-buffer truncation — on top
/// of everything the plain reference run covers.
pub fn reference_checkpoint_run(seed: u64) -> ssj_distrib::DistributedJoinResult {
    use ssj_core::JoinConfig;
    use ssj_distrib::{
        CheckpointConfig, DistributedJoinConfig, LocalAlgo, PartitionMethod, Strategy,
    };
    use ssj_workloads::StreamGenerator;

    let records =
        StreamGenerator::new(crate::differential::differential_profile(), seed).take_records(120);
    let cfg = DistributedJoinConfig {
        k: 2,
        join: JoinConfig::jaccard(0.7),
        local: LocalAlgo::PpJoin,
        strategy: Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 40,
        },
        channel_capacity: 32,
        source_rate: None,
        fault: Some(stormlite::FaultPlan::new().crash_seeded("joiner", 2, 40, seed)),
        chaos_seed: Some(seed),
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: Some(CheckpointConfig::in_memory(25)),
        restore_from: None,
        trace: None,
        scheduler: stormlite::Scheduler::Sim(SimConfig::seeded(seed)),
    };
    ssj_distrib::run_distributed(&records, &cfg)
}

/// The traced counterpart of [`reference_checkpoint_run`]: the identical
/// topology, workload, faults and seed, with structured tracing enabled.
/// Rendering its [`obs::RunTrace`] through [`obs::trace_jsonl`] must be
/// byte-identical for a given seed — the trace is golden-diffable exactly
/// like the transcript — and because tracing is observation-only, the
/// run's transcript and results must equal the untraced run's.
pub fn reference_trace_run(seed: u64) -> ssj_distrib::DistributedJoinResult {
    reference_traceable_run(seed, true)
}

/// [`reference_checkpoint_run`] with tracing switchable, so the
/// disabled-instrumentation regression test can compare the two paths.
pub fn reference_traceable_run(seed: u64, traced: bool) -> ssj_distrib::DistributedJoinResult {
    use ssj_core::JoinConfig;
    use ssj_distrib::{
        CheckpointConfig, DistributedJoinConfig, LocalAlgo, PartitionMethod, Strategy, TraceConfig,
    };
    use ssj_workloads::StreamGenerator;

    let records =
        StreamGenerator::new(crate::differential::differential_profile(), seed).take_records(120);
    let cfg = DistributedJoinConfig {
        k: 2,
        join: JoinConfig::jaccard(0.7),
        local: LocalAlgo::PpJoin,
        strategy: Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 40,
        },
        channel_capacity: 32,
        source_rate: None,
        fault: Some(stormlite::FaultPlan::new().crash_seeded("joiner", 2, 40, seed)),
        chaos_seed: Some(seed),
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: Some(CheckpointConfig::in_memory(25)),
        restore_from: None,
        trace: traced.then(TraceConfig::default),
        scheduler: stormlite::Scheduler::Sim(SimConfig::seeded(seed)),
    };
    ssj_distrib::run_distributed(&records, &cfg)
}

/// Human-readable report of the first divergence between two transcripts,
/// with three lines of context on each side; `None` when identical.
pub fn diff(a: &Transcript, b: &Transcript) -> Option<String> {
    let at = a.first_divergence(b)?;
    let context = |t: &Transcript, label: &str| {
        let lines = t.lines();
        let lo = at.saturating_sub(3);
        let hi = (at + 1).min(lines.len());
        let mut s = format!("{label} (lines {lo}..{hi} of {}):\n", lines.len());
        for (i, line) in lines.iter().enumerate().take(hi).skip(lo) {
            let marker = if i == at { ">>" } else { "  " };
            s.push_str(&format!("{marker} {i:5} {line}\n"));
        }
        s
    };
    Some(format!(
        "transcripts diverge at line {at}\n{}{}",
        context(a, "left"),
        context(b, "right")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_run_is_deterministic() {
        let a = reference_run(7);
        let b = reference_run(7);
        assert_eq!(a.transcript.to_text(), b.transcript.to_text());
        assert_eq!(a.report.elapsed, b.report.elapsed);
    }

    #[test]
    fn different_seeds_diverge_and_diff_reports_where() {
        let a = reference_run(1);
        let b = reference_run(2);
        let report = diff(&a.transcript, &b.transcript).expect("seeds 1/2 should diverge");
        assert!(report.contains("diverge at line"));
        assert!(diff(&a.transcript, &a.transcript).is_none());
    }
}
