//! The naive O(n²) reference oracle.
//!
//! Every correctness claim in this repository bottoms out here: a double
//! loop over the stream in arrival order that evaluates, for each
//! (earlier, later) pair, the *same* window predicate
//! ([`Window::expired`](ssj_core::Window::expired)) and the *same*
//! acceptance predicate
//! ([`Threshold::matches`](ssj_core::Threshold::matches)) the production
//! joiners use — but with none of their filtering, indexing, routing,
//! recovery or batching machinery. Because both predicates are single
//! deterministic `f64` comparisons shared with the joiners, oracle output
//! is *bit-identical* to a correct run, not merely approximately equal.
//!
//! The oracle is deliberately written as differently from the joiners as
//! possible (no prefix index, no eviction queue, no bundles) so a bug
//! would have to be independently invented twice to escape a differential
//! test.

use ssj_core::{JoinConfig, MatchPair};
use ssj_text::Record;
use std::collections::HashSet;

/// Exact intersection size of two token sets via sorted merge.
///
/// Records store strictly ascending token ids, so a linear merge is exact.
pub fn overlap(a: &Record, b: &Record) -> usize {
    let (ta, tb) = (a.tokens(), b.tokens());
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn pair(cfg: &JoinConfig, earlier: &Record, later: &Record) -> Option<MatchPair> {
    if cfg.window.expired(
        earlier.id().0,
        earlier.timestamp(),
        later.id().0,
        later.timestamp(),
    ) {
        return None;
    }
    let o = overlap(earlier, later);
    if !cfg.threshold.matches(o, earlier.len(), later.len()) {
        return None;
    }
    Some(MatchPair {
        earlier: earlier.id(),
        later: later.id(),
        similarity: cfg.threshold.similarity(o, earlier.len(), later.len()),
    })
}

fn assert_arrival_order(records: &[Record]) {
    assert!(
        records.windows(2).all(|w| w[0].id() < w[1].id()),
        "oracle input must be in arrival order (strictly ascending ids)"
    );
}

/// Exact windowed self-join result: all (earlier, later) pairs whose
/// overlap reaches the threshold and where the earlier record is still
/// inside the later record's window. `records` must be in arrival order.
///
/// Pairs are returned in probe order (grouped by `later`); use
/// [`sorted_keys`] for set comparison.
pub fn self_join(records: &[Record], cfg: &JoinConfig) -> Vec<MatchPair> {
    assert_arrival_order(records);
    let mut out = Vec::new();
    for (j, later) in records.iter().enumerate() {
        for earlier in &records[..j] {
            out.extend(pair(cfg, earlier, later));
        }
    }
    out
}

/// Exact windowed bi-stream (R–S) join result: only cross-side pairs, each
/// oriented (earlier, later) by global arrival id. Both inputs must be in
/// arrival order and ids must be globally unique across the two streams
/// (the same contract as
/// [`run_bistream_distributed`](ssj_distrib::run_bistream_distributed)).
pub fn bistream_join(left: &[Record], right: &[Record], cfg: &JoinConfig) -> Vec<MatchPair> {
    assert_arrival_order(left);
    assert_arrival_order(right);
    // Tag and merge by arrival id, then run the double loop restricted to
    // cross-side pairs.
    let mut merged: Vec<(bool, &Record)> = left
        .iter()
        .map(|r| (true, r))
        .chain(right.iter().map(|r| (false, r)))
        .collect();
    merged.sort_by_key(|(_, r)| r.id());
    assert!(
        merged.windows(2).all(|w| w[0].1.id() < w[1].1.id()),
        "record ids must be globally unique across both streams"
    );
    let mut out = Vec::new();
    for (j, &(later_side, later)) in merged.iter().enumerate() {
        for &(earlier_side, earlier) in &merged[..j] {
            if earlier_side != later_side {
                out.extend(pair(cfg, earlier, later));
            }
        }
    }
    out
}

/// Exact self-join over the records that *survived* load shedding: the
/// oracle for a degraded run. Shed records are dropped whole at the
/// dispatcher (they neither probe nor index), while window predicates use
/// global arrival coordinates carried by each record — so the reference is
/// simply the full oracle restricted to non-shed records, with their
/// original ids.
pub fn self_join_surviving(records: &[Record], cfg: &JoinConfig, shed: &[u64]) -> Vec<MatchPair> {
    let shed: HashSet<u64> = shed.iter().copied().collect();
    let kept: Vec<Record> = records
        .iter()
        .filter(|r| !shed.contains(&r.id().0))
        .cloned()
        .collect();
    self_join(&kept, cfg)
}

/// Exact shed-adjusted recall: the fraction of true result pairs a run
/// that shed `shed` could still produce. `1.0` when the full oracle is
/// empty (nothing was lost because nothing existed).
pub fn shed_recall(records: &[Record], cfg: &JoinConfig, shed: &[u64]) -> f64 {
    let full = self_join(records, cfg).len();
    if full == 0 {
        return 1.0;
    }
    self_join_surviving(records, cfg, shed).len() as f64 / full as f64
}

/// Canonical sorted key set for comparing result sets.
pub fn sorted_keys(pairs: &[MatchPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|m| m.key()).collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::{Threshold, Window};
    use ssj_text::{Record, RecordId, TokenId};

    fn rec(id: u64, ts: u64, tokens: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            ts,
            tokens.iter().map(|&t| TokenId(t)).collect(),
        )
    }

    #[test]
    fn overlap_is_exact_on_sorted_sets() {
        let a = rec(0, 0, &[1, 3, 5, 9]);
        let b = rec(1, 0, &[2, 3, 9, 11]);
        assert_eq!(overlap(&a, &b), 2);
        assert_eq!(overlap(&a, &a), 4);
    }

    #[test]
    fn self_join_reports_each_pair_once_oriented() {
        let records = vec![
            rec(0, 0, &[1, 2, 3]),
            rec(1, 1, &[1, 2, 3]),
            rec(2, 2, &[7]),
        ];
        let cfg = JoinConfig::jaccard(0.9);
        let got = self_join(&records, &cfg);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key(), (0, 1));
        assert_eq!(got[0].similarity, 1.0);
    }

    #[test]
    fn self_join_honours_count_window() {
        let records = vec![rec(0, 0, &[1, 2]), rec(5, 0, &[1, 2])];
        let cfg = JoinConfig::jaccard(0.9).with_window(Window::Count(4));
        assert!(self_join(&records, &cfg).is_empty());
        let cfg = JoinConfig::jaccard(0.9).with_window(Window::Count(5));
        assert_eq!(self_join(&records, &cfg).len(), 1);
    }

    #[test]
    fn bistream_join_is_cross_side_only() {
        let left = vec![rec(0, 0, &[1, 2]), rec(2, 2, &[1, 2])];
        let right = vec![rec(1, 1, &[1, 2])];
        let cfg = JoinConfig::jaccard(0.9);
        let keys = sorted_keys(&bistream_join(&left, &right, &cfg));
        // (0,2) is a same-side pair and must be absent.
        assert_eq!(keys, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn shed_recall_accounts_lost_pairs_exactly() {
        let records = vec![rec(0, 0, &[1, 2]), rec(1, 1, &[1, 2]), rec(2, 2, &[1, 2])];
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.9),
            window: Window::Unbounded,
        };
        // Full oracle: 3 pairs. Shedding record 1 kills (0,1) and (1,2).
        assert_eq!(self_join(&records, &cfg).len(), 3);
        let surviving = self_join_surviving(&records, &cfg, &[1]);
        assert_eq!(sorted_keys(&surviving), vec![(0, 2)]);
        let recall = shed_recall(&records, &cfg, &[1]);
        assert!((recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn unsorted_input_is_rejected() {
        let records = vec![rec(1, 0, &[1]), rec(0, 0, &[1])];
        self_join(&records, &JoinConfig::jaccard(0.5));
    }
}
