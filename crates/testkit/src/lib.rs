//! testkit — the differential oracle and simulation test harness.
//!
//! Production joiners are fast because they filter, batch, shed and
//! recover; proving they are also *correct* needs a reference that does
//! none of that. This crate provides:
//!
//! * [`oracle`] — a naive O(n²) reference join over windowed streams
//!   (self-join and bi-stream) sharing only the acceptance and window
//!   predicates with the real joiners, plus exact shed-adjusted recall
//!   accounting for degraded runs;
//! * [`differential`] — [`run_differential`]: execute any distribution
//!   strategy × local algorithm × window configuration under stormlite's
//!   deterministic simulation ([`stormlite::sim`]) and assert the result
//!   equals the oracle exactly — with crashes, lossy links and load
//!   shedding in play. A failing seed replays the identical interleaving.
//! * [`transcript`] — golden-transcript recording and diffing: a frozen
//!   reference run whose committed transcript must replay byte-identically.
//!
//! Seeds drive everything (workload, interleaving, faults), so a failure
//! report is a complete reproduction recipe: the seed plus the case.

#![warn(missing_docs)]

pub mod differential;
pub mod oracle;
pub mod transcript;

pub use differential::{
    differential_profile, run_differential, run_restore_differential, DifferentialCase,
    DifferentialOutcome, RestoreOutcome,
};
pub use oracle::{
    bistream_join, overlap, self_join, self_join_surviving, shed_recall, sorted_keys,
};
pub use transcript::{
    diff, reference_checkpoint_run, reference_run, reference_trace_run, reference_traceable_run,
};
