//! The experiment driver: regenerates every table and figure of the
//! evaluation (see EXPERIMENTS.md).
//!
//! ```text
//! experiments [--n N] [--quick] [--results DIR] <id>...
//!   ids: check t1 t2 f1 f2 f3 f4 f5 f6 f7 f8 f9 f10 f11 f12 f13 f14 a1 all
//! ```

use ssj_bench::{exps, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

const IDS: &[&str] = &[
    "check", "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12",
    "f13", "f14", "a1", "e2e",
];

fn usage() -> ExitCode {
    eprintln!("usage: experiments [--n N] [--quick] [--results DIR] <id>...");
    eprintln!("  ids: {} all", IDS.join(" "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut scale = Scale::default();
    let mut results = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                scale.n = v;
            }
            "--quick" => scale.quick = true,
            "--results" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                results = PathBuf::from(v);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            id if id.starts_with('-') => {
                eprintln!("unknown flag: {id}");
                return usage();
            }
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = IDS.iter().map(|s| (*s).to_owned()).collect();
    }

    println!(
        "# Distributed Streaming Set Similarity Join — experiments (n = {}, quick = {})\n",
        scale.n(),
        scale.quick
    );
    for id in &ids {
        let t0 = std::time::Instant::now();
        match id.as_str() {
            "check" => exps::check(&results),
            "t1" => exps::t1(scale, &results),
            "t2" => exps::t2(scale, &results),
            "f1" => exps::f1(scale, &results),
            "f2" => exps::f2(scale, &results),
            "f3" => exps::f3(scale, &results),
            "f4" => exps::f4(scale, &results),
            "f5" => exps::f5(scale, &results),
            "f6" => exps::f6(scale, &results),
            "f7" => exps::f7(scale, &results),
            "f8" => exps::f8(scale, &results),
            "f9" => exps::f9(scale, &results),
            "f10" => exps::f10(scale, &results),
            "f11" => exps::f11(scale, &results),
            "f12" => exps::f12(scale, &results),
            "f13" => exps::f13(scale, &results),
            "f14" => exps::f14(scale, &results),
            "a1" => exps::a1(scale, &results),
            "e2e" => exps::e2e(scale, &results),
            other => {
                eprintln!("unknown experiment id: {other}");
                return usage();
            }
        }
        eprintln!("[{id} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
