//! Workload construction shared by the experiments.

use ssj_text::Record;
use ssj_workloads::{DatasetProfile, StreamGenerator};

/// Fixed seed so every experiment run sees the same streams.
pub const SEED: u64 = 20200401;

/// Generates `n` records of a profile (deterministic).
pub fn records(profile: &DatasetProfile, n: usize) -> Vec<Record> {
    StreamGenerator::new(profile.clone(), SEED).take_records(n)
}

/// The two contrasting profiles most experiments sweep (short/skewed vs
/// long/heavy-tailed); `all` runs use the full four.
pub fn headline_profiles() -> Vec<DatasetProfile> {
    vec![DatasetProfile::aol(), DatasetProfile::enron()]
}

/// Re-export: arrival-rate pacing lives with the driver.
pub use ssj_distrib::PacedIter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_deterministic() {
        let a = records(&DatasetProfile::aol(), 100);
        let b = records(&DatasetProfile::aol(), 100);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens(), y.tokens());
        }
    }
}
