//! The experiment harness: one function per table/figure of the
//! evaluation (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! Every experiment prints an aligned table to stdout and writes the same
//! rows as CSV under `results/`. Absolute numbers are machine-dependent;
//! the *shapes* (who wins, by what factor, where crossovers sit) are what
//! EXPERIMENTS.md compares against the paper.

#![warn(missing_docs)]

pub mod exps;
pub mod table;
pub mod workload;

/// Global experiment scaling knobs (CLI `--n`, `--quick`).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Records per run.
    pub n: usize,
    /// Quick mode: fewer parameter points, smaller streams.
    pub quick: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            n: 20_000,
            quick: false,
        }
    }
}

impl Scale {
    /// Effective stream size (quick mode quarters it).
    pub fn n(&self) -> usize {
        if self.quick {
            (self.n / 4).max(500)
        } else {
            self.n
        }
    }
}
