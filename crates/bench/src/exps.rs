//! One function per table/figure of the evaluation.
//!
//! Each experiment is self-contained: it builds its workload, runs the
//! system(s), prints an aligned table and writes `results/<id>.csv`.
//! EXPERIMENTS.md documents the expected shape of every output.

use crate::table::{fnum, Table};
use crate::workload::{headline_profiles, records, SEED};
use crate::Scale;
use ssj_core::{
    join::run_stream, AllPairsJoiner, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner,
    StreamJoiner, Threshold, Window,
};
use ssj_distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler, Strategy,
};
use ssj_partition::{
    equal_depth, equal_width, imbalance, load_aware, load_aware_greedy, CostModel, EpochConfig,
    LengthHistogram,
};
use ssj_text::{FxHashSet, TokenId};
use ssj_workloads::{DatasetProfile, DriftConfig, DriftingGenerator};
use std::path::Path;
use std::time::Instant;
use stormlite::FaultPlan;

fn thresholds(scale: Scale) -> Vec<f64> {
    if scale.quick {
        vec![0.7, 0.9]
    } else {
        vec![0.6, 0.7, 0.8, 0.9]
    }
}

fn dist_cfg(
    k: usize,
    join: JoinConfig,
    local: LocalAlgo,
    strategy: Strategy,
) -> DistributedJoinConfig {
    DistributedJoinConfig {
        k,
        join,
        local,
        strategy,
        channel_capacity: 1024,
        source_rate: None,
        fault: None,
        chaos_seed: None,
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: None,
        restore_from: None,
        trace: None,
        scheduler: Scheduler::Threads,
    }
}

fn length_auto(sample: usize) -> Strategy {
    Strategy::LengthAuto {
        method: PartitionMethod::LoadAware,
        sample,
    }
}

/// T1 — dataset statistics (the evaluation's "Table 1").
pub fn t1(scale: Scale, results: &Path) {
    let n = scale.n();
    let mut t = Table::new(
        &format!("T1: dataset statistics (n = {n} per profile, seed {SEED})"),
        &[
            "dataset",
            "records",
            "avg_len",
            "max_len",
            "distinct_tokens",
            "dup_rate",
        ],
    );
    for p in DatasetProfile::all() {
        let recs = records(&p, n);
        let avg = recs.iter().map(|r| r.len()).sum::<usize>() as f64 / recs.len() as f64;
        let max = recs.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut distinct: FxHashSet<TokenId> = FxHashSet::default();
        for r in &recs {
            distinct.extend(r.tokens().iter().copied());
        }
        t.row(vec![
            p.name.into(),
            n.to_string(),
            fnum(avg),
            max.to_string(),
            distinct.len().to_string(),
            fnum(p.dup_rate),
        ]);
    }
    t.emit(results, "t1_datasets");
}

/// T2 — model-predicted partition quality (imbalance ratio, lower is
/// better; 1.0 = perfect balance).
pub fn t2(scale: Scale, results: &Path) {
    let n = scale.n();
    let tau = 0.8;
    let k = 8;
    let mut t = Table::new(
        &format!("T2: partition imbalance (model), tau = {tau}, k = {k}"),
        &[
            "dataset",
            "equal_width",
            "equal_depth",
            "load_aware",
            "load_aware_greedy",
        ],
    );
    for p in DatasetProfile::all() {
        let recs = records(&p, n);
        let hist = LengthHistogram::from_records(&recs);
        let cost = CostModel::build(&hist, Threshold::jaccard(tau), hist.max_len());
        let row = [
            imbalance(&equal_width(hist.max_len(), k), &cost),
            imbalance(&equal_depth(&hist, k), &cost),
            imbalance(&load_aware(&cost, k), &cost),
            imbalance(&load_aware_greedy(&cost, k), &cost),
        ];
        t.row(vec![
            p.name.into(),
            fnum(row[0]),
            fnum(row[1]),
            fnum(row[2]),
            fnum(row[3]),
        ]);
    }
    t.emit(results, "t2_partition_quality");
}

/// F1 — distributed throughput vs threshold: LD (ppjoin + bundle) vs PD vs
/// RD.
pub fn f1(scale: Scale, results: &Path) {
    let n = scale.n();
    let k = 8;
    let mut t = Table::new(
        &format!("F1: throughput (records/s) vs tau, k = {k}, n = {n}"),
        &[
            "dataset",
            "tau",
            "LD+bundle",
            "LD+ppjoin",
            "PD+ppjoin",
            "RD+ppjoin",
            "results",
        ],
    );
    for p in headline_profiles() {
        let recs = records(&p, n);
        for tau in thresholds(scale) {
            let join = JoinConfig::jaccard(tau);
            let sample = (n / 10).max(100);
            let runs = [
                dist_cfg(k, join, LocalAlgo::bundle(), length_auto(sample)),
                dist_cfg(k, join, LocalAlgo::PpJoin, length_auto(sample)),
                dist_cfg(k, join, LocalAlgo::PpJoin, Strategy::Prefix),
                dist_cfg(k, join, LocalAlgo::PpJoin, Strategy::Broadcast),
            ];
            let outs: Vec<_> = runs.iter().map(|c| run_distributed(&recs, c)).collect();
            t.row(vec![
                p.name.into(),
                fnum(tau),
                fnum(outs[0].throughput()),
                fnum(outs[1].throughput()),
                fnum(outs[2].throughput()),
                fnum(outs[3].throughput()),
                outs[0].pairs.len().to_string(),
            ]);
        }
    }
    t.emit(results, "f1_throughput_vs_tau");
}

/// F2 — scalability: throughput vs number of joiners.
pub fn f2(scale: Scale, results: &Path) {
    let n = scale.n();
    let tau = 0.8;
    let join = JoinConfig::jaccard(tau);
    let ks: Vec<usize> = if scale.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    // Wall-clock throughput cannot exceed the host's core budget (these
    // containers are often single-core), so the table also reports the
    // critical-path projection: records / busiest-stage busy time — the
    // bound a k-core deployment would see. The projection is what carries
    // the scaling shape.
    let mut t = Table::new(
        &format!("F2: throughput vs k (wall | critical-path model), tau = {tau}, n = {n}, dataset = dblp"),
        &["k", "LD+bundle", "LD+ppjoin", "PD+ppjoin", "RD+ppjoin",
          "LD+bundle*", "LD+ppjoin*", "PD+ppjoin*", "RD+ppjoin*"],
    );
    let recs = records(&DatasetProfile::dblp(), n);
    let sample = (n / 10).max(100);
    for &k in &ks {
        let runs = [
            dist_cfg(k, join, LocalAlgo::bundle(), length_auto(sample)),
            dist_cfg(k, join, LocalAlgo::PpJoin, length_auto(sample)),
            dist_cfg(k, join, LocalAlgo::PpJoin, Strategy::Prefix),
            dist_cfg(k, join, LocalAlgo::PpJoin, Strategy::Broadcast),
        ];
        let outs: Vec<_> = runs.iter().map(|c| run_distributed(&recs, c)).collect();
        let mut row = vec![k.to_string()];
        row.extend(outs.iter().map(|o| fnum(o.throughput())));
        row.extend(outs.iter().map(|o| fnum(o.modeled_throughput())));
        t.row(row);
    }
    t.emit(results, "f2_scalability");
}

/// F3 — communication cost: messages/bytes per record and replication.
pub fn f3(scale: Scale, results: &Path) {
    let n = scale.n();
    let k = 8;
    let mut t = Table::new(
        &format!("F3: communication per record, k = {k}, n = {n}"),
        &[
            "dataset",
            "tau",
            "strategy",
            "msgs/rec",
            "bytes/rec",
            "replication",
        ],
    );
    for p in headline_profiles() {
        let recs = records(&p, n);
        for tau in thresholds(scale) {
            let join = JoinConfig::jaccard(tau);
            let sample = (n / 10).max(100);
            for (name, strategy) in [
                ("LD", length_auto(sample)),
                ("PD", Strategy::Prefix),
                ("RD", Strategy::Broadcast),
            ] {
                let out = run_distributed(&recs, &dist_cfg(k, join, LocalAlgo::PpJoin, strategy));
                t.row(vec![
                    p.name.into(),
                    fnum(tau),
                    name.into(),
                    fnum(out.msgs_per_record()),
                    fnum(out.bytes_per_record()),
                    fnum(out.replication()),
                ]);
            }
        }
    }
    t.emit(results, "f3_communication");
}

/// F4 — measured joiner load balance by partitioning method.
pub fn f4(scale: Scale, results: &Path) {
    let n = scale.n();
    let tau = 0.8;
    let k = 8;
    let join = JoinConfig::jaccard(tau);
    let mut t = Table::new(
        &format!("F4: measured busy-time imbalance (max/avg), tau = {tau}, k = {k}, n = {n}"),
        &[
            "dataset",
            "equal_width",
            "equal_depth",
            "load_aware",
            "throughput_la",
        ],
    );
    for p in DatasetProfile::all() {
        let recs = records(&p, n);
        let sample = (n / 10).max(100);
        let mut cells = vec![p.name.to_string()];
        let mut la_tp = 0.0;
        for method in [
            PartitionMethod::EqualWidth,
            PartitionMethod::EqualDepth,
            PartitionMethod::LoadAware,
        ] {
            let out = run_distributed(
                &recs,
                &dist_cfg(
                    k,
                    join,
                    LocalAlgo::PpJoin,
                    Strategy::LengthAuto { method, sample },
                ),
            );
            cells.push(fnum(out.load_imbalance()));
            if method == PartitionMethod::LoadAware {
                la_tp = out.throughput();
            }
        }
        cells.push(fnum(la_tp));
        t.row(cells);
    }
    t.emit(results, "f4_load_balance");
}

/// F5 — local join throughput vs threshold (single joiner, no engine).
pub fn f5(scale: Scale, results: &Path) {
    let n = scale.n();
    let mut t = Table::new(
        &format!("F5: local join throughput (records/s) vs tau, n = {n}"),
        &[
            "dataset",
            "tau",
            "allpairs",
            "ppjoin",
            "ppjoin+",
            "bundle",
            "bundle_postings",
            "ppjoin_postings",
        ],
    );
    for p in headline_profiles() {
        let recs = records(&p, n);
        for tau in thresholds(scale) {
            let join = JoinConfig::jaccard(tau);
            let time_joiner = |mut j: Box<dyn StreamJoiner>| -> (f64, usize) {
                let t0 = Instant::now();
                let out = run_stream(&mut *j, &recs);
                let tp = recs.len() as f64 / t0.elapsed().as_secs_f64();
                std::hint::black_box(out.len());
                (tp, j.postings())
            };
            let (ap, _) = time_joiner(Box::new(AllPairsJoiner::new(join)));
            let (pp, pp_post) = time_joiner(Box::new(PpJoinJoiner::new(join)));
            let (ppp, _) = time_joiner(Box::new(PpJoinJoiner::new_plus(join)));
            let (bj, bj_post) = time_joiner(Box::new(BundleJoiner::with_defaults(join)));
            t.row(vec![
                p.name.into(),
                fnum(tau),
                fnum(ap),
                fnum(pp),
                fnum(ppp),
                fnum(bj),
                bj_post.to_string(),
                pp_post.to_string(),
            ]);
        }
    }
    t.emit(results, "f5_local_join");
}

/// F6 — bundle benefit vs near-duplicate rate.
pub fn f6(scale: Scale, results: &Path) {
    let n = scale.n();
    let tau = 0.8;
    let join = JoinConfig::jaccard(tau);
    let rates = if scale.quick {
        vec![0.0, 0.3]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    };
    let mut t = Table::new(
        &format!("F6: bundle joiner vs duplicate rate, tau = {tau}, n = {n}, dataset = tweet"),
        &[
            "dup_rate",
            "bundle_rps",
            "ppjoin_rps",
            "speedup",
            "absorb_ratio",
            "postings_saved_%",
        ],
    );
    for d in rates {
        let recs = records(&DatasetProfile::tweet().with_dup_rate(d), n);
        let t0 = Instant::now();
        let mut bj = BundleJoiner::with_defaults(join);
        let _ = run_stream(&mut bj, &recs);
        let bj_rps = recs.len() as f64 / t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut pp = PpJoinJoiner::new(join);
        let _ = run_stream(&mut pp, &recs);
        let pp_rps = recs.len() as f64 / t0.elapsed().as_secs_f64();
        let saved =
            1.0 - bj.stats().postings_created as f64 / pp.stats().postings_created.max(1) as f64;
        t.row(vec![
            fnum(d),
            fnum(bj_rps),
            fnum(pp_rps),
            fnum(bj_rps / pp_rps),
            fnum(bj.stats().absorb_ratio()),
            fnum(saved * 100.0),
        ]);
    }
    t.emit(results, "f6_bundle_vs_dup_rate");
}

/// F7 — batch vs individual verification (micro-ablation).
pub fn f7(scale: Scale, results: &Path) {
    use ssj_core::verify;
    let sizes = if scale.quick {
        vec![1, 8, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let len = 64usize;
    let reps = 2_000;
    let mut t = Table::new(
        "F7: verification cost per member (ns), rep length 64, delta 4 tokens",
        &["bundle_size", "individual_ns", "batch_ns", "speedup"],
    );
    // A bundle of near-duplicates: representative + members with 4-token
    // deltas; the probe equals the representative with a 2-token delta.
    let rep: Vec<TokenId> = (0..len as u32).map(|x| TokenId(x * 3)).collect();
    let probe: Vec<TokenId> = {
        let mut v = rep.clone();
        v[10] = TokenId(31); // off-grid token: in no member
        v.sort_unstable();
        v
    };
    // Warm caches/branch predictors before the first timed loop (the
    // first measurement otherwise absorbs cold-start noise).
    let mut warm = 0usize;
    for _ in 0..reps {
        warm += verify::overlap(&probe, &rep);
    }
    std::hint::black_box(warm);
    for &size in &sizes {
        let members: Vec<(Vec<TokenId>, Vec<TokenId>, Vec<TokenId>)> = (0..size)
            .map(|m| {
                // Replace 2 grid tokens with 2 off-grid ones.
                let mut full = rep.clone();
                let del: Vec<TokenId> = vec![full[m % len], full[(m + 7) % len]];
                full.retain(|t| !del.contains(t));
                let add: Vec<TokenId> =
                    vec![TokenId(1000 + m as u32 * 2), TokenId(1001 + m as u32 * 2)];
                full.extend(add.iter().copied());
                full.sort_unstable();
                (full, add, del)
            })
            .collect();

        // Individual: a full merge per member.
        let t0 = Instant::now();
        let mut acc = 0usize;
        for _ in 0..reps {
            for (full, _, _) in &members {
                acc += verify::overlap(&probe, full);
            }
        }
        let individual = t0.elapsed().as_nanos() as f64 / (reps * size) as f64;
        std::hint::black_box(acc);

        // Batch: one merge with the representative + per-member deltas.
        let t0 = Instant::now();
        let mut acc2 = 0usize;
        for _ in 0..reps {
            let o_rep = verify::overlap(&probe, &rep);
            for (_, add, del) in &members {
                acc2 += o_rep + verify::intersect_small(add, &probe)
                    - verify::intersect_small(del, &probe);
            }
        }
        let batch = t0.elapsed().as_nanos() as f64 / (reps * size) as f64;
        std::hint::black_box(acc2);

        t.row(vec![
            size.to_string(),
            fnum(individual),
            fnum(batch),
            fnum(individual / batch),
        ]);
    }
    t.emit(results, "f7_batch_verification");
}

/// F8 — processing latency vs arrival rate.
pub fn f8(scale: Scale, results: &Path) {
    let n = scale.n().min(40_000);
    let tau = 0.8;
    let k = 8;
    let join = JoinConfig::jaccard(tau);
    let rates = if scale.quick {
        vec![5_000.0, 50_000.0]
    } else {
        vec![2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0]
    };
    let mut t = Table::new(
        &format!(
            "F8: result latency vs arrival rate, tau = {tau}, k = {k}, n = {n}, dataset = aol"
        ),
        &["rate_rps", "mean_us", "p95_us", "p99_us", "results"],
    );
    let recs = records(&DatasetProfile::aol(), n);
    let sample = (n / 10).max(100);
    for &rate in &rates {
        let mut cfg = dist_cfg(k, join, LocalAlgo::bundle(), length_auto(sample));
        cfg.source_rate = Some(rate);
        let out = run_distributed(&recs, &cfg);
        let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
        t.row(vec![
            fnum(rate),
            fnum(us(out.latency.mean())),
            fnum(us(out.latency.quantile(0.95))),
            fnum(us(out.latency.quantile(0.99))),
            out.pairs.len().to_string(),
        ]);
    }
    t.emit(results, "f8_latency_vs_rate");
}

/// F9 — sliding-window size vs throughput and index size.
pub fn f9(scale: Scale, results: &Path) {
    let n = scale.n().max(10_000);
    let tau = 0.8;
    let mut t = Table::new(
        &format!("F9: window size vs throughput & index size, tau = {tau}, n = {n}, dataset = aol"),
        &[
            "window",
            "bundle_rps",
            "bundle_stored",
            "bundle_postings",
            "ppjoin_stored",
            "ppjoin_postings",
        ],
    );
    let recs = records(&DatasetProfile::aol(), n);
    let windows: Vec<(String, Window)> = vec![
        ("1k".into(), Window::Count(1_000)),
        ("10k".into(), Window::Count(10_000)),
        ((n / 2).to_string(), Window::Count((n / 2) as u64)),
        ("unbounded".into(), Window::Unbounded),
    ];
    for (name, window) in windows {
        let join = JoinConfig {
            threshold: Threshold::jaccard(tau),
            window,
        };
        let t0 = Instant::now();
        let mut bj = BundleJoiner::with_defaults(join);
        let _ = run_stream(&mut bj, &recs);
        let rps = recs.len() as f64 / t0.elapsed().as_secs_f64();
        let mut pp = PpJoinJoiner::new(join);
        let _ = run_stream(&mut pp, &recs);
        t.row(vec![
            name,
            fnum(rps),
            bj.stored().to_string(),
            bj.postings().to_string(),
            pp.stored().to_string(),
            pp.postings().to_string(),
        ]);
    }
    t.emit(results, "f9_window_size");
}

/// F10 — online repartitioning under length drift (static vs epoched).
pub fn f10(scale: Scale, results: &Path) {
    let n = scale.n().max(10_000);
    let tau = 0.6;
    let k = 8;
    let join = JoinConfig {
        threshold: Threshold::jaccard(tau),
        window: Window::Count((n / 5) as u64),
    };
    // Lengths triple over the first half of the stream: by the end, almost
    // every record is longer than anything in the calibration sample, so a
    // static plan funnels the entire (clamped) stream into its last joiner
    // — the staleness catastrophe online repartitioning exists to fix.
    let drift = DriftConfig::length_drift(n / 2, 3.0);
    let recs = DriftingGenerator::new(DatasetProfile::dblp(), SEED, drift).take_records(n);
    let sample = (n / 20).max(100);
    // The table exposes the full trade-off: online repartitioning improves
    // balance (busy_imbalance) but pays for it in transition probe fan-out
    // (msgs/rec) — during a plan transition probes target the union of all
    // active plans to stay exact. Whether that trade wins depends on the
    // ratio of per-record join cost to message-handling cost; see
    // EXPERIMENTS.md for the analysis.
    let mut t = Table::new(
        &format!(
            "F10: drift (length x3 over {}): static vs online repartitioning, k = {k}",
            n / 2
        ),
        &[
            "strategy",
            "wall_rps",
            "modeled_rps",
            "busy_imbalance",
            "msgs/rec",
            "results",
        ],
    );
    for (name, strategy) in [
        ("static", length_auto(sample)),
        (
            "online",
            Strategy::LengthOnline {
                sample,
                epoch: EpochConfig {
                    check_every: (n as u64 / 10).max(500),
                    rebalance_factor: 1.3,
                    max_plans: 3,
                },
            },
        ),
    ] {
        let out = run_distributed(&recs, &dist_cfg(k, join, LocalAlgo::PpJoin, strategy));
        t.row(vec![
            name.into(),
            fnum(out.throughput()),
            fnum(out.modeled_throughput()),
            fnum(out.load_imbalance()),
            fnum(out.msgs_per_record()),
            out.pairs.len().to_string(),
        ]);
    }
    t.emit(results, "f10_drift");
}

/// F11 — local joiner throughput vs stream length (index-growth
/// crossover): the bundle joiner's compressed index pays off as streams
/// grow, while AllPairs' per-record posting lists keep lengthening.
pub fn f11(scale: Scale, results: &Path) {
    let tau = 0.8;
    let join = JoinConfig::jaccard(tau);
    let sizes: Vec<usize> = if scale.quick {
        vec![10_000, 40_000]
    } else {
        vec![25_000, 50_000, 100_000, 200_000]
    };
    let mut t = Table::new(
        &format!("F11: local throughput (records/s) vs stream length, tau = {tau}, dataset = aol"),
        &["n", "allpairs", "ppjoin", "bundle", "bundle/allpairs"],
    );
    for &n in &sizes {
        let recs = records(&DatasetProfile::aol(), n);
        let time = |mut j: Box<dyn StreamJoiner>| {
            let t0 = Instant::now();
            std::hint::black_box(run_stream(&mut *j, &recs).len());
            recs.len() as f64 / t0.elapsed().as_secs_f64()
        };
        let ap = time(Box::new(AllPairsJoiner::new(join)));
        let pp = time(Box::new(PpJoinJoiner::new(join)));
        let bj = time(Box::new(BundleJoiner::with_defaults(join)));
        t.row(vec![
            n.to_string(),
            fnum(ap),
            fnum(pp),
            fnum(bj),
            fnum(bj / ap),
        ]);
    }
    t.emit(results, "f11_stream_length");
}

/// A1 — bundle-parameter ablation: absorption threshold and member cap
/// vs throughput, absorption and index compression.
pub fn a1(scale: Scale, results: &Path) {
    use ssj_core::BundleConfig;
    let n = scale.n();
    let tau = 0.8;
    let join = JoinConfig::jaccard(tau);
    let recs = records(&DatasetProfile::aol(), n);
    let mut t = Table::new(
        &format!("A1: bundle parameter ablation, tau = {tau}, n = {n}, dataset = aol"),
        &[
            "bundle_tau",
            "max_members",
            "rps",
            "absorb_ratio",
            "bundles",
            "postings",
        ],
    );
    let taus: Vec<f64> = if scale.quick {
        vec![0.8, 1.0]
    } else {
        vec![0.6, 0.7, 0.8, 0.9, 1.0]
    };
    let caps: Vec<usize> = if scale.quick { vec![64] } else { vec![4, 64] };
    for &bt in &taus {
        for &cap in &caps {
            let cfg = BundleConfig {
                join,
                bundle_tau: bt,
                max_members: cap,
                max_delta_frac: 0.25,
            };
            let mut j = BundleJoiner::new(cfg);
            let t0 = Instant::now();
            std::hint::black_box(run_stream(&mut j, &recs).len());
            let rps = recs.len() as f64 / t0.elapsed().as_secs_f64();
            t.row(vec![
                fnum(bt),
                cap.to_string(),
                fnum(rps),
                fnum(j.stats().absorb_ratio()),
                j.bundles().to_string(),
                j.postings().to_string(),
            ]);
        }
    }
    t.emit(results, "a1_bundle_ablation");
}

/// F12 — crash recovery: an injected joiner crash mid-stream must leave
/// the result set identical to the fault-free run, and the recovery cost
/// (records replayed into the restarted task) is bounded by the live
/// window, not by the stream length. The unbounded-window row shows the
/// degenerate case where the replay buffer covers the whole prefix.
pub fn f12(scale: Scale, results: &Path) {
    fn keys(out: &ssj_distrib::DistributedJoinResult) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        keys
    }
    let n = scale.n();
    let tau = 0.8;
    let k = 4;
    // Crash joiner 1 roughly mid-stream: with load-aware routing each
    // joiner indexes ~n/k records, so half of that is the midpoint.
    let crash_after = (n / (2 * k)) as u64;
    let mut t = Table::new(
        &format!(
            "F12: crash recovery, tau = {tau}, n = {n}, k = {k}, dataset = aol, \
             crash joiner 1 after {crash_after} indexed tuples"
        ),
        &[
            "window",
            "clean_rps",
            "fault_rps",
            "slowdown",
            "restarts",
            "replayed",
            "identical",
        ],
    );
    let recs = records(&DatasetProfile::aol(), n);
    let windows: Vec<(String, Window)> = if scale.quick {
        vec![
            ("1k".into(), Window::Count(1_000)),
            ("unbounded".into(), Window::Unbounded),
        ]
    } else {
        vec![
            ("1k".into(), Window::Count(1_000)),
            ("5k".into(), Window::Count(5_000)),
            ("20k".into(), Window::Count(20_000)),
            ("unbounded".into(), Window::Unbounded),
        ]
    };
    for (name, window) in windows {
        let join = JoinConfig {
            threshold: Threshold::jaccard(tau),
            window,
        };
        let cfg = dist_cfg(k, join, LocalAlgo::bundle(), length_auto(2_000));
        let clean = run_distributed(&recs, &cfg);
        let mut fault_cfg = dist_cfg(k, join, LocalAlgo::bundle(), length_auto(2_000));
        fault_cfg.fault = Some(FaultPlan::new().crash("joiner", 1, crash_after));
        let faulted = run_distributed(&recs, &fault_cfg);
        let replayed: u64 = faulted.joiners.iter().map(|j| j.replayed).sum();
        t.row(vec![
            name,
            fnum(clean.throughput()),
            fnum(faulted.throughput()),
            fnum(clean.throughput() / faulted.throughput().max(1e-9)),
            faulted.report.total_restarts().to_string(),
            replayed.to_string(),
            (keys(&clean) == keys(&faulted)).to_string(),
        ]);
    }
    t.emit(results, "f12_recovery");
}

/// F13 — chaos wires and degraded mode. Three regimes on one workload:
/// a clean baseline; chaos runs where every wire drops/duplicates/delays
/// under a seeded `LinkFaultPlan` masked by at-least-once delivery (the
/// result must stay *identical*, the cost shows up as retries and lower
/// throughput); and an overloaded run that sheds whole records at the
/// dispatcher, where the recall gap is exactly accounted for — the
/// surviving output equals the join of the kept records, recomputed as a
/// reference run.
pub fn f13(scale: Scale, results: &Path) {
    fn keys(out: &ssj_distrib::DistributedJoinResult) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        keys
    }
    let n = scale.n();
    let tau = 0.8;
    let k = 4;
    let join = JoinConfig {
        threshold: Threshold::jaccard(tau),
        window: Window::Unbounded,
    };
    let recs = records(&DatasetProfile::aol(), n);
    let mut t = Table::new(
        &format!("F13: chaos wires + degraded mode, tau = {tau}, n = {n}, k = {k}, dataset = aol"),
        &[
            "mode",
            "rps",
            "slowdown",
            "retries",
            "dup_drops",
            "link_drop",
            "link_dup",
            "link_delay",
            "shed",
            "pairs",
            "recall",
            "exact",
        ],
    );

    let base_cfg = || dist_cfg(k, join, LocalAlgo::bundle(), length_auto(2_000));
    let clean = run_distributed(&recs, &base_cfg());
    let clean_keys = keys(&clean);
    let clean_rps = clean.throughput();
    t.row(vec![
        "baseline".into(),
        fnum(clean_rps),
        fnum(1.0),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        clean.pairs.len().to_string(),
        fnum(1.0),
        "true".into(),
    ]);

    let chaos_seeds: &[u64] = if scale.quick { &[7] } else { &[7, 42] };
    for &seed in chaos_seeds {
        let mut cfg = base_cfg();
        cfg.chaos_seed = Some(seed);
        let out = run_distributed(&recs, &cfg);
        let identical = keys(&out) == clean_keys;
        assert!(identical, "chaos seed {seed} changed the result set");
        let (drop, dup, delay) = out.report.link_faults();
        t.row(vec![
            format!("chaos(seed={seed})"),
            fnum(out.throughput()),
            fnum(clean_rps / out.throughput().max(1e-9)),
            out.report.total_retries().to_string(),
            out.report.total_dup_drops().to_string(),
            drop.to_string(),
            dup.to_string(),
            delay.to_string(),
            "0".into(),
            out.pairs.len().to_string(),
            fnum(1.0),
            identical.to_string(),
        ]);
    }

    // Degraded mode: starve the joiners of queue space so the dispatcher
    // trips the watermark and sheds. The recall gap must be *exactly* the
    // pairs involving shed records: a reference run over the kept records
    // alone has to reproduce the shed run's output bit for bit.
    let mut shed_cfg = base_cfg();
    shed_cfg.channel_capacity = 8;
    shed_cfg.shed_watermark = Some(4);
    let out = run_distributed(&recs, &shed_cfg);
    let shed: FxHashSet<u64> = out.shed_records.iter().copied().collect();
    let kept: Vec<ssj_text::Record> = recs
        .iter()
        .filter(|r| !shed.contains(&r.id().0))
        .cloned()
        .collect();
    let reference = run_distributed(&kept, &base_cfg());
    let exact = keys(&out) == keys(&reference);
    assert!(exact, "shed run output is not the join of the kept records");
    t.row(vec![
        format!("shed(watermark=4,cap=8)"),
        fnum(out.throughput()),
        fnum(clean_rps / out.throughput().max(1e-9)),
        out.report.total_retries().to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        out.report.shed().to_string(),
        out.pairs.len().to_string(),
        fnum(out.pairs.len() as f64 / clean.pairs.len().max(1) as f64),
        exact.to_string(),
    ]);
    t.emit(results, "f13_chaos");
}

/// F14 — recovery time and replay volume vs checkpoint interval. One
/// seeded joiner crash per run over an unbounded window (the worst case
/// for buffer replay: without checkpointing the replay buffer is
/// O(stream)). As the epoch interval shrinks, committed epochs truncate
/// the replay buffers, so the records replayed into the restarted task —
/// and with them recovery work — drop toward O(interval), at the price of
/// more published snapshots. Every run must still match the crash-free
/// baseline exactly. One extra row checkpoints through the durable
/// `FileStore` to price the disk round-trip against `MemStore`.
pub fn f14(scale: Scale, results: &Path) {
    use ssj_distrib::CheckpointConfig;

    fn keys(out: &ssj_distrib::DistributedJoinResult) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        keys
    }
    let n = scale.n();
    let tau = 0.8;
    let k = 4;
    let join = JoinConfig {
        threshold: Threshold::jaccard(tau),
        window: Window::Unbounded,
    };
    let recs = records(&DatasetProfile::aol(), n);
    let mut t = Table::new(
        &format!(
            "F14: recovery cost vs checkpoint interval, tau = {tau}, n = {n}, k = {k}, \
             crash @ ~{}, dataset = aol",
            n / 2
        ),
        &[
            "interval",
            "store",
            "rps",
            "restarts",
            "replayed",
            "ckpts",
            "ckpt_bytes",
            "ckpt_lat_us",
            "stall_us",
            "exact",
        ],
    );

    let base_cfg = || dist_cfg(k, join, LocalAlgo::bundle(), length_auto(2_000));
    let clean_keys = keys(&run_distributed(&recs, &base_cfg()));
    let crash = || FaultPlan::new().crash_seeded("joiner", k, (n / 2) as u64, SEED);

    let intervals: Vec<Option<u64>> = {
        let mut v = vec![None];
        let mut i = (n / 2) as u64;
        let points = if scale.quick { 3 } else { 5 };
        for _ in 0..points {
            v.push(Some(i.max(1)));
            i /= 4;
        }
        v
    };
    let mut rows = Vec::new();
    for interval in intervals {
        rows.push((interval, "mem"));
    }
    // Price the durable store at the middle interval.
    let durable_interval = (n / 8) as u64;
    rows.push((Some(durable_interval.max(1)), "file"));

    let tmp = std::env::temp_dir().join(format!("ssj-f14-{}", std::process::id()));
    for (interval, store) in rows {
        let mut cfg = base_cfg();
        cfg.fault = Some(crash());
        cfg.checkpoint = match (interval, store) {
            (None, _) => None,
            (Some(i), "mem") => Some(CheckpointConfig::in_memory(i)),
            (Some(i), _) => {
                let dir = tmp.join(format!("interval-{i}"));
                std::fs::create_dir_all(&dir).expect("create f14 checkpoint dir");
                Some(CheckpointConfig::in_dir(i, &dir).expect("open f14 file store"))
            }
        };
        let out = run_distributed(&recs, &cfg);
        let exact = keys(&out) == clean_keys;
        assert!(exact, "crash recovery diverged (interval {interval:?})");
        let replayed: u64 = out.joiners.iter().map(|j| j.replayed).sum();
        t.row(vec![
            interval.map_or("off".into(), |i| i.to_string()),
            store.into(),
            fnum(out.throughput()),
            out.report.total_restarts().to_string(),
            replayed.to_string(),
            out.report.checkpoints().to_string(),
            out.report.checkpoint_bytes().to_string(),
            fnum(out.report.checkpoint_latency().mean().as_secs_f64() * 1e6),
            fnum(out.report.barrier_stall().mean().as_secs_f64() * 1e6),
            exact.to_string(),
        ]);
    }
    let _ = std::fs::remove_dir_all(&tmp);
    t.emit(results, "f14_checkpoint");
}

/// Day of the current UTC date as `YYYY-MM-DD` (Hinnant's civil-from-days
/// algorithm, so the harness needs no calendar dependency).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Appends `entry` (a JSON object) to a JSON-array file, creating the file
/// as `[entry]` if it does not exist. The file stays pretty-printed with
/// one entry per array slot so diffs show exactly one new trajectory point.
fn append_json_entry(path: &Path, entry: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let body = match std::fs::read_to_string(path) {
        Ok(old) => {
            let trimmed = old.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .unwrap_or_else(|| panic!("{}: expected a JSON array file", path.display()))
                .trim_end();
            let sep = if without_close.ends_with('[') {
                ""
            } else {
                ","
            };
            format!("{without_close}{sep}\n{entry}\n]\n")
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, body).expect("write perf trajectory");
}

/// E2E — one traced end-to-end run appended as a perf-trajectory point to
/// `results/BENCH_e2e.json`: throughput (records/s) plus per-stage p50/p99
/// from the driver's [`obs::StageProfile`]. Repeated runs accumulate a
/// history of end-to-end performance alongside the evolving code.
pub fn e2e(scale: Scale, results: &Path) {
    let n = scale.n();
    let recs = records(&DatasetProfile::tweet(), n);
    let join = JoinConfig::jaccard(0.8);
    let cfg = DistributedJoinConfig {
        trace: Some(ssj_distrib::TraceConfig::default()),
        ..dist_cfg(4, join, LocalAlgo::bundle(), length_auto(5_000))
    };
    let out = run_distributed(&recs, &cfg);

    let mut t = Table::new(
        &format!("E2E: traced end-to-end run (tweet, n = {n}, k = 4, tau = 0.8)"),
        &["stage", "count", "p50_us", "p99_us"],
    );
    let mut stage_json = String::new();
    for (stage, h) in out.stages.stages() {
        if h.count() == 0 {
            continue;
        }
        let p50 = h.quantile(0.5).as_nanos();
        let p99 = h.quantile(0.99).as_nanos();
        t.row(vec![
            stage.name().into(),
            h.count().to_string(),
            fnum(p50 as f64 / 1e3),
            fnum(p99 as f64 / 1e3),
        ]);
        if !stage_json.is_empty() {
            stage_json.push_str(",\n");
        }
        stage_json.push_str(&format!(
            "      \"{}\": {{ \"count\": {}, \"p50_ns\": {p50}, \"p99_ns\": {p99} }}",
            stage.name(),
            h.count()
        ));
    }
    t.emit(results, "e2e_stages");

    let entry = format!(
        "  {{\n    \"bench\": \"e2e_tweet_threads\",\n    \"date\": \"{}\",\n    \
         \"records\": {n},\n    \"k\": 4,\n    \"tau\": 0.8,\n    \"pairs\": {},\n    \
         \"records_per_s\": {:.0},\n    \"trace_spans\": {},\n    \"stages\": {{\n{stage_json}\n    }}\n  }}",
        today_utc(),
        out.pairs.len(),
        out.throughput(),
        out.trace.as_ref().map_or(0, obs::RunTrace::len),
    );
    append_json_entry(&results.join("BENCH_e2e.json"), &entry);
    println!(
        "appended trajectory point to {}\n",
        results.join("BENCH_e2e.json").display()
    );
}

/// Correctness smoke: naive vs the full distributed recommended setup on a
/// small stream — run before benchmarking to catch misconfiguration.
pub fn check(results: &Path) {
    let recs = records(&DatasetProfile::tweet(), 2_000);
    let join = JoinConfig::jaccard(0.7);
    let mut naive = NaiveJoiner::new(join);
    let mut expect: Vec<(u64, u64)> = run_stream(&mut naive, &recs)
        .iter()
        .map(|m| m.key())
        .collect();
    expect.sort_unstable();
    let out = run_distributed(&recs, &DistributedJoinConfig::recommended(4, join));
    let mut got: Vec<(u64, u64)> = out.pairs.iter().map(|m| m.key()).collect();
    got.sort_unstable();
    assert_eq!(expect, got, "distributed result diverged from ground truth");
    let mut t = Table::new(
        "check: distributed == naive ground truth",
        &["records", "pairs", "status"],
    );
    t.row(vec![
        recs.len().to_string(),
        expect.len().to_string(),
        "OK".into(),
    ]);
    t.emit(results, "check");
}

/// Tiny sanity tests so the experiments themselves stay runnable.
#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n: 600,
            quick: true,
        }
    }

    #[test]
    fn check_passes() {
        check(Path::new("/tmp/ssj-results-test"));
    }

    #[test]
    fn t1_runs() {
        t1(tiny(), Path::new("/tmp/ssj-results-test"));
    }

    #[test]
    fn f7_runs() {
        f7(tiny(), Path::new("/tmp/ssj-results-test"));
    }

    #[test]
    fn f12_runs() {
        f12(tiny(), Path::new("/tmp/ssj-results-test"));
    }

    #[test]
    fn f13_runs() {
        f13(tiny(), Path::new("/tmp/ssj-results-test"));
    }

    #[test]
    fn f9_runs() {
        f9(
            Scale {
                n: 2_000,
                quick: true,
            },
            Path::new("/tmp/ssj-results-test"),
        );
    }
}
