//! Minimal result tables: aligned stdout rendering + CSV files.
//!
//! Deliberately dependency-free (no serde): experiment rows are flat
//! strings and CSV needs nothing more than escaping.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{c:>w$}", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-style CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table and writes `results/<file>.csv`.
    pub fn emit(&self, results_dir: &Path, file: &str) {
        println!("{}", self.render());
        if let Err(e) = fs::create_dir_all(results_dir) {
            eprintln!("warning: cannot create {}: {e}", results_dir.display());
            return;
        }
        let path = results_dir.join(format!("{file}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("-> {}\n", path.display());
        }
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["pl,ain".into(), "qu\"ote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"pl,ain\""));
        assert!(csv.contains("\"qu\"\"ote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1234.5), "1234");
    }
}
