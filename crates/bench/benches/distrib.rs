//! Router decision cost and a small end-to-end distributed run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssj_core::{JoinConfig, Threshold};
use ssj_distrib::{
    run_distributed, BroadcastRouter, DistributedJoinConfig, LengthRouter, LocalAlgo,
    PartitionMethod, PrefixRouter, Router, Scheduler, Strategy,
};
use ssj_partition::{CostModel, LengthHistogram};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::hint::black_box;

fn bench_routers(c: &mut Criterion) {
    let records = StreamGenerator::new(DatasetProfile::aol(), 3).take_records(10_000);
    let t = Threshold::jaccard(0.8);
    let hist = LengthHistogram::from_records(&records);
    let cost = CostModel::build(&hist, t, hist.max_len());
    let partition = ssj_partition::load_aware(&cost, 8);
    let mut g = c.benchmark_group("router_decisions");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function(BenchmarkId::new("length", 8), |b| {
        let mut r = LengthRouter::new(t, partition.clone());
        b.iter(|| {
            let mut msgs = 0usize;
            for rec in &records {
                msgs += r.route(black_box(rec)).message_count();
            }
            black_box(msgs)
        })
    });
    g.bench_function(BenchmarkId::new("prefix", 8), |b| {
        let mut r = PrefixRouter::new(t, 8);
        b.iter(|| {
            let mut msgs = 0usize;
            for rec in &records {
                msgs += r.route(black_box(rec)).message_count();
            }
            black_box(msgs)
        })
    });
    g.bench_function(BenchmarkId::new("broadcast", 8), |b| {
        let mut r = BroadcastRouter::new(8);
        b.iter(|| {
            let mut msgs = 0usize;
            for rec in &records {
                msgs += r.route(black_box(rec)).message_count();
            }
            black_box(msgs)
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let records = StreamGenerator::new(DatasetProfile::tweet(), 9).take_records(3_000);
    let join = JoinConfig::jaccard(0.8);
    let mut g = c.benchmark_group("distributed_e2e_3k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    for (name, strategy) in [
        (
            "length",
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 500,
            },
        ),
        ("prefix", Strategy::Prefix),
        ("broadcast", Strategy::Broadcast),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = DistributedJoinConfig {
                    k: 4,
                    join,
                    local: LocalAlgo::bundle(),
                    strategy: strategy.clone(),
                    channel_capacity: 1024,
                    source_rate: None,
                    fault: None,
                    chaos_seed: None,
                    shed_watermark: None,
                    replay_buffer_cap: None,
                    checkpoint: None,
                    restore_from: None,
                    trace: None,
                    scheduler: Scheduler::Threads,
                };
                black_box(run_distributed(black_box(&records), &cfg).pairs.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routers, bench_end_to_end);
criterion_main!(benches);
