//! Micro-benchmarks: verification kernels (merge, early termination,
//! delta-based batch verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssj_core::verify;
use ssj_text::TokenId;
use std::hint::black_box;

fn tokens(n: u32, stride: u32, offset: u32) -> Vec<TokenId> {
    (0..n).map(|i| TokenId(i * stride + offset)).collect()
}

fn bench_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap");
    for &len in &[8usize, 64, 512] {
        let a = tokens(len as u32, 3, 0);
        let b = tokens(len as u32, 3, 3); // ~2/3 overlap
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("merge", len), &len, |bench, _| {
            bench.iter(|| black_box(verify::overlap(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(
            BenchmarkId::new("early_term_high", len),
            &len,
            |bench, _| {
                // Requirement just above the true overlap: aborts mid-merge.
                let req = verify::overlap(&a, &b) + 1;
                bench
                    .iter(|| black_box(verify::overlap_with_min(black_box(&a), black_box(&b), req)))
            },
        );
    }
    g.finish();
}

fn bench_batch_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_verification");
    let len = 64u32;
    let rep = tokens(len, 3, 0);
    let probe = tokens(len, 3, 0);
    for &size in &[4usize, 16, 64] {
        let members: Vec<(Vec<TokenId>, Vec<TokenId>, Vec<TokenId>)> = (0..size)
            .map(|m| {
                let mut full = rep.clone();
                let del = vec![full[m % full.len()]];
                full.retain(|t| !del.contains(t));
                let add = vec![TokenId(100_000 + m as u32)];
                full.extend(add.iter().copied());
                full.sort_unstable();
                (full, add, del)
            })
            .collect();
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(BenchmarkId::new("individual", size), &size, |bench, _| {
            bench.iter(|| {
                let mut acc = 0usize;
                for (full, _, _) in &members {
                    acc += verify::overlap(black_box(&probe), full);
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("batch_delta", size), &size, |bench, _| {
            bench.iter(|| {
                let o_rep = verify::overlap(black_box(&probe), &rep);
                let mut acc = 0usize;
                for (_, add, del) in &members {
                    acc += o_rep + verify::intersect_small(add, &probe)
                        - verify::intersect_small(del, &probe);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overlap, bench_batch_verification);
criterion_main!(benches);
