//! Partitioner cost: exact minimax DP vs binary-search greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssj_core::Threshold;
use ssj_partition::{load_aware, load_aware_greedy, CostModel, LengthHistogram};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let records = StreamGenerator::new(DatasetProfile::enron(), 5).take_records(20_000);
    let hist = LengthHistogram::from_records(&records);
    let cost = CostModel::build(&hist, Threshold::jaccard(0.8), hist.max_len());
    let mut g = c.benchmark_group("length_partition");
    for &k in &[4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("dp_exact", k), &k, |b, &k| {
            b.iter(|| black_box(load_aware(black_box(&cost), k)))
        });
        g.bench_with_input(BenchmarkId::new("greedy_bsearch", k), &k, |b, &k| {
            b.iter(|| black_box(load_aware_greedy(black_box(&cost), k)))
        });
    }
    g.finish();

    c.bench_function("cost_model_build", |b| {
        b.iter(|| {
            black_box(CostModel::build(
                black_box(&hist),
                Threshold::jaccard(0.8),
                hist.max_len(),
            ))
        })
    });
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
