//! Observability overhead gate: enabled per-stage instrumentation must not
//! regress the local-join hot path by more than a small tolerance.
//!
//! This is a pass/fail guard, not a criterion benchmark: it times the same
//! whole-stream bundle join once plain ([`run_stream`]) and once profiled
//! ([`run_stream_profiled`] — two clock reads and one histogram increment
//! per sampled arrival), compares best-of-k times, and exits non-zero if
//! the profiled run is more than `OBS_OVERHEAD_PCT` percent slower
//! (default 5). Best-of-k is used because minima are far more stable than
//! means on shared CI hosts.

use ssj_core::join::{run_stream, run_stream_profiled};
use ssj_core::{BundleJoiner, JoinConfig};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 4_000;
const ITERS: usize = 15;

fn main() {
    let tolerance_pct: f64 = std::env::var("OBS_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let records =
        StreamGenerator::new(DatasetProfile::tweet().with_dup_rate(0.3), 7).take_records(N);
    let cfg = JoinConfig::jaccard(0.7);

    let time_plain = || {
        let mut j = BundleJoiner::with_defaults(cfg);
        let t0 = Instant::now();
        black_box(run_stream(&mut j, black_box(&records)).len());
        t0.elapsed().as_nanos()
    };
    let time_profiled = || {
        let mut j = BundleJoiner::with_defaults(cfg);
        let mut profile = obs::StageProfile::new();
        let t0 = Instant::now();
        black_box(run_stream_profiled(&mut j, black_box(&records), &mut profile).len());
        let dt = t0.elapsed().as_nanos();
        assert_eq!(
            profile.get(obs::Stage::Execute).count(),
            N.div_ceil(ssj_core::join::PROFILE_SAMPLE_EVERY) as u64,
            "profile must sample the whole stream"
        );
        dt
    };

    // Warm both paths, then interleave so drift hits them evenly.
    time_plain();
    time_profiled();
    let mut best_plain = u128::MAX;
    let mut best_profiled = u128::MAX;
    for _ in 0..ITERS {
        best_plain = best_plain.min(time_plain());
        best_profiled = best_profiled.min(time_profiled());
    }

    let overhead_pct = 100.0 * (best_profiled as f64 / best_plain as f64 - 1.0);
    println!(
        "local_join n={N}: plain best {:.3} ms, profiled best {:.3} ms, overhead {overhead_pct:+.2}% (gate {tolerance_pct}%)",
        best_plain as f64 / 1e6,
        best_profiled as f64 / 1e6,
    );
    if overhead_pct > tolerance_pct {
        eprintln!(
            "FAIL: enabled instrumentation costs {overhead_pct:.2}% > {tolerance_pct}% on the local join"
        );
        std::process::exit(1);
    }
    println!("OK: instrumentation overhead within the {tolerance_pct}% gate");
}
