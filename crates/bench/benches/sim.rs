//! Simulation-overhead smoke benchmark: the same 50k-record distributed
//! run under the threaded executor vs. deterministic simulation.
//!
//! Simulation trades parallelism and zero-copy scheduling for exact
//! reproducibility (single thread, one message per scheduler step, a
//! transcript line per step), so it is expected to be slower; this bench
//! keeps the factor visible so the differential suite's cost stays
//! predictable. The recorded baseline lives in `results/BENCH_sim.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ssj_core::JoinConfig;
use ssj_distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler, SimConfig,
    Strategy,
};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 50_000;

fn cfg(scheduler: Scheduler) -> DistributedJoinConfig {
    DistributedJoinConfig {
        k: 4,
        join: JoinConfig::jaccard(0.8),
        local: LocalAlgo::bundle(),
        strategy: Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 5_000,
        },
        channel_capacity: 1024,
        source_rate: None,
        fault: None,
        chaos_seed: None,
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: None,
        restore_from: None,
        trace: None,
        scheduler,
    }
}

fn bench_sim_vs_threaded(c: &mut Criterion) {
    let records = StreamGenerator::new(DatasetProfile::tweet(), 17).take_records(N);
    let mut g = c.benchmark_group("sim_vs_threaded_50k");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("threads", |b| {
        b.iter(|| {
            let out = run_distributed(black_box(&records), &cfg(Scheduler::Threads));
            black_box(out.pairs.len())
        })
    });
    g.bench_function("sim", |b| {
        b.iter(|| {
            let out = run_distributed(
                black_box(&records),
                &cfg(Scheduler::Sim(SimConfig::seeded(17))),
            );
            black_box(out.pairs.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim_vs_threaded);
criterion_main!(benches);
