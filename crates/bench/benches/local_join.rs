//! Whole-stream throughput of the local joiners (figure F5's micro side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssj_core::{join::run_stream, AllPairsJoiner, BundleJoiner, JoinConfig, PpJoinJoiner};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::hint::black_box;

fn bench_local_join(c: &mut Criterion) {
    let n = 4_000;
    let records =
        StreamGenerator::new(DatasetProfile::tweet().with_dup_rate(0.3), 7).take_records(n);
    let mut g = c.benchmark_group("local_join_tweet");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for tau in [0.7, 0.9] {
        let cfg = JoinConfig::jaccard(tau);
        g.bench_with_input(BenchmarkId::new("allpairs", tau), &tau, |b, _| {
            b.iter(|| {
                let mut j = AllPairsJoiner::new(cfg);
                black_box(run_stream(&mut j, black_box(&records)).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("ppjoin", tau), &tau, |b, _| {
            b.iter(|| {
                let mut j = PpJoinJoiner::new(cfg);
                black_box(run_stream(&mut j, black_box(&records)).len())
            })
        });
        g.bench_with_input(BenchmarkId::new("bundle", tau), &tau, |b, _| {
            b.iter(|| {
                let mut j = BundleJoiner::with_defaults(cfg);
                black_box(run_stream(&mut j, black_box(&records)).len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_local_join);
criterion_main!(benches);
