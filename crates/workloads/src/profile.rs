//! Dataset profiles: the generator parameters that imitate the corpora the
//! streaming set-similarity-join literature evaluates on.
//!
//! Published statistics of the four corpora (record count aside — we scale
//! that freely) reduce to three knobs: length distribution, token skew, and
//! near-duplicate density. The numbers below follow the commonly reported
//! averages: AOL queries ≈ 3 tokens, DBLP titles ≈ 12, ENRON mails ≈ 130
//! with a heavy tail, tweets ≈ 10 with a hard cap.

use rand::{Rng, RngExt};

/// A record-length distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDist {
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Smallest length.
        lo: usize,
        /// Largest length.
        hi: usize,
    },
    /// Log-normal with the given parameters of the underlying normal,
    /// clamped to `[lo, hi]`. Produces the heavy upper tail of e-mail /
    /// document corpora.
    LogNormal {
        /// Mean of `ln(len)`.
        mu: f64,
        /// Std-dev of `ln(len)`.
        sigma: f64,
        /// Smallest length after clamping.
        lo: usize,
        /// Largest length after clamping.
        hi: usize,
    },
    /// Normal(mean, sd) rounded and clamped to `[lo, hi]`. Fits title-like
    /// corpora with symmetric length spread.
    Normal {
        /// Mean length.
        mean: f64,
        /// Standard deviation.
        sd: f64,
        /// Smallest length after clamping.
        lo: usize,
        /// Largest length after clamping.
        hi: usize,
    },
}

impl LengthDist {
    /// Draws a length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            LengthDist::Uniform { lo, hi } => rng.random_range(lo..=hi),
            LengthDist::LogNormal { mu, sigma, lo, hi } => {
                let z = standard_normal(rng);
                let len = (mu + sigma * z).exp().round();
                (len as usize).clamp(lo, hi)
            }
            LengthDist::Normal { mean, sd, lo, hi } => {
                let z = standard_normal(rng);
                let len = (mean + sd * z).round().max(0.0);
                (len as usize).clamp(lo, hi)
            }
        }
    }

    /// The largest length this distribution can produce.
    pub fn max(&self) -> usize {
        match *self {
            LengthDist::Uniform { hi, .. } => hi,
            LengthDist::LogNormal { hi, .. } => hi,
            LengthDist::Normal { hi, .. } => hi,
        }
    }
}

/// One draw from N(0, 1) via the Box–Muller transform (the `rand` crate
/// ships only uniform primitives).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generator parameters imitating one corpus.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Profile name (used in reports).
    pub name: &'static str,
    /// Distinct-token universe size.
    pub vocab: usize,
    /// Zipf skew of token popularity.
    pub skew: f64,
    /// Record-length distribution.
    pub len_dist: LengthDist,
    /// Probability that a record is a near-duplicate of a recent one.
    pub dup_rate: f64,
    /// Maximum token mutations applied to a near-duplicate.
    pub dup_mutations: usize,
    /// How many recent records near-duplicates may copy from.
    pub recent_pool: usize,
}

impl DatasetProfile {
    /// AOL-like web query log: very short records, strong skew, frequent
    /// re-issued queries.
    pub fn aol() -> Self {
        Self {
            name: "aol",
            vocab: 100_000,
            skew: 1.0,
            len_dist: LengthDist::LogNormal {
                mu: 1.1,
                sigma: 0.55,
                lo: 1,
                hi: 24,
            },
            dup_rate: 0.25,
            dup_mutations: 1,
            recent_pool: 4096,
        }
    }

    /// DBLP-like publication titles: medium, tightly spread lengths.
    pub fn dblp() -> Self {
        Self {
            name: "dblp",
            vocab: 80_000,
            skew: 0.8,
            len_dist: LengthDist::Normal {
                mean: 12.0,
                sd: 3.0,
                lo: 4,
                hi: 32,
            },
            dup_rate: 0.1,
            dup_mutations: 2,
            recent_pool: 4096,
        }
    }

    /// ENRON-like e-mail bodies: long records with a heavy tail.
    pub fn enron() -> Self {
        Self {
            name: "enron",
            vocab: 150_000,
            skew: 0.9,
            len_dist: LengthDist::LogNormal {
                mu: 4.4,
                sigma: 0.7,
                lo: 10,
                hi: 600,
            },
            dup_rate: 0.12,
            dup_mutations: 6,
            recent_pool: 2048,
        }
    }

    /// Tweet-like microtext: short-to-medium records, hard length cap, many
    /// near-duplicates (retweets).
    pub fn tweet() -> Self {
        Self {
            name: "tweet",
            vocab: 120_000,
            skew: 1.1,
            len_dist: LengthDist::Normal {
                mean: 10.0,
                sd: 4.0,
                lo: 2,
                hi: 35,
            },
            dup_rate: 0.3,
            dup_mutations: 2,
            recent_pool: 4096,
        }
    }

    /// All four presets (evaluation loop helper).
    pub fn all() -> Vec<DatasetProfile> {
        vec![Self::aol(), Self::dblp(), Self::enron(), Self::tweet()]
    }

    /// Look up a preset by name.
    pub fn by_name(name: &str) -> Option<DatasetProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Overrides the near-duplicate rate (used by the F6 sweep).
    pub fn with_dup_rate(mut self, dup_rate: f64) -> Self {
        self.dup_rate = dup_rate;
        self
    }

    /// Overrides the vocabulary size.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// The largest record length this profile can emit.
    pub fn max_len(&self) -> usize {
        self.len_dist.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_lengths_in_range() {
        let d = LengthDist::Uniform { lo: 3, hi: 7 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let l = d.sample(&mut rng);
            assert!((3..=7).contains(&l));
        }
    }

    #[test]
    fn lognormal_clamped_and_centered() {
        let d = LengthDist::LogNormal {
            mu: 1.1,
            sigma: 0.55,
            lo: 1,
            hi: 24,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut sum = 0usize;
        for _ in 0..n {
            let l = d.sample(&mut rng);
            assert!((1..=24).contains(&l));
            sum += l;
        }
        let avg = sum as f64 / n as f64;
        // E[lognormal(1.1, 0.55)] = exp(1.1 + 0.55²/2) ≈ 3.5
        assert!((2.8..=4.2).contains(&avg), "avg {avg}");
    }

    #[test]
    fn normal_clamped() {
        let d = LengthDist::Normal {
            mean: 10.0,
            sd: 4.0,
            lo: 2,
            hi: 35,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let l = d.sample(&mut rng);
            assert!((2..=35).contains(&l));
            sum += l;
        }
        let avg = sum as f64 / n as f64;
        assert!((9.0..=11.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn presets_resolve_by_name() {
        for p in DatasetProfile::all() {
            let found = DatasetProfile::by_name(p.name).unwrap();
            assert_eq!(found.vocab, p.vocab);
        }
        assert!(DatasetProfile::by_name("nope").is_none());
    }

    #[test]
    fn preset_shapes_differ_as_documented() {
        let mut rng = StdRng::seed_from_u64(4);
        let avg = |p: &DatasetProfile, rng: &mut StdRng| {
            (0..5000).map(|_| p.len_dist.sample(rng)).sum::<usize>() as f64 / 5000.0
        };
        let aol = avg(&DatasetProfile::aol(), &mut rng);
        let dblp = avg(&DatasetProfile::dblp(), &mut rng);
        let enron = avg(&DatasetProfile::enron(), &mut rng);
        assert!(aol < dblp && dblp < enron, "{aol} < {dblp} < {enron}");
    }
}
