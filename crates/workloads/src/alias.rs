//! Walker–Vose alias method: O(1) sampling from an arbitrary discrete
//! distribution after O(n) preprocessing.

use rand::{Rng, RngExt};

/// A prepared alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the "own" outcome per bucket.
    prob: Vec<f64>,
    /// Fallback outcome per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized). Panics if the weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scaled probabilities with mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        let mut prob = vec![1.0; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains (numerical leftovers) keeps prob = 1.
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let bucket = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_track_weights() {
        let weights = [1.0, 2.0, 4.0, 8.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: expected {expected:.3}, observed {observed:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn uniform_case() {
        let t = AliasTable::new(&[1.0; 10]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[t.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
