//! Arrival processes: how stream timestamps advance.

use rand::{Rng, RngExt};

/// A timestamping policy for generated records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival gap in milliseconds.
    Uniform {
        /// Milliseconds between consecutive records.
        gap_ms: u64,
    },
    /// Poisson arrivals at `rate_per_sec` (exponential inter-arrival
    /// times, rounded to milliseconds).
    Poisson {
        /// Mean arrival rate, records per second.
        rate_per_sec: f64,
    },
    /// Alternating calm/burst phases: `calm_gap_ms` between records for
    /// `phase_len` records, then `burst_gap_ms` for the next `phase_len`.
    Bursty {
        /// Gap during the calm phase.
        calm_gap_ms: u64,
        /// Gap during the burst phase.
        burst_gap_ms: u64,
        /// Records per phase.
        phase_len: u64,
    },
}

impl Default for ArrivalProcess {
    /// One record per millisecond.
    fn default() -> Self {
        ArrivalProcess::Uniform { gap_ms: 1 }
    }
}

impl ArrivalProcess {
    /// Advances the clock past `prev_ts` for the next arrival.
    pub fn next_ts<R: Rng + ?Sized>(&self, rng: &mut R, prev_ts: u64) -> u64 {
        match *self {
            ArrivalProcess::Uniform { gap_ms } => prev_ts + gap_ms,
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "rate must be positive");
                let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
                let gap_s = -u.ln() / rate_per_sec;
                prev_ts + (gap_s * 1000.0).round() as u64
            }
            ArrivalProcess::Bursty {
                calm_gap_ms,
                burst_gap_ms,
                phase_len,
            } => {
                // Phase is derived from the clock so the process stays
                // stateless: estimate how many arrivals happened from the
                // average gap.
                let avg_gap = (calm_gap_ms + burst_gap_ms).max(2) / 2;
                let approx_arrivals = prev_ts / avg_gap.max(1);
                let in_burst = (approx_arrivals / phase_len.max(1)) % 2 == 1;
                prev_ts + if in_burst { burst_gap_ms } else { calm_gap_ms }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_advances_by_gap() {
        let a = ArrivalProcess::Uniform { gap_ms: 5 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(a.next_ts(&mut rng, 100), 105);
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let a = ArrivalProcess::Poisson {
            rate_per_sec: 100.0,
        }; // 10ms mean
        let mut rng = StdRng::seed_from_u64(2);
        let mut ts = 0;
        let n = 20_000;
        for _ in 0..n {
            ts = a.next_ts(&mut rng, ts);
        }
        let mean_gap = ts as f64 / n as f64;
        assert!((8.0..=12.0).contains(&mean_gap), "mean gap {mean_gap}ms");
    }

    #[test]
    fn poisson_is_monotone() {
        let a = ArrivalProcess::Poisson {
            rate_per_sec: 5000.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut ts = 0;
        for _ in 0..1000 {
            let next = a.next_ts(&mut rng, ts);
            assert!(next >= ts);
            ts = next;
        }
    }

    #[test]
    fn bursty_alternates_gaps() {
        let a = ArrivalProcess::Bursty {
            calm_gap_ms: 10,
            burst_gap_ms: 1,
            phase_len: 50,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut ts = 0;
        let mut gaps = Vec::new();
        for _ in 0..500 {
            let next = a.next_ts(&mut rng, ts);
            gaps.push(next - ts);
            ts = next;
        }
        assert!(gaps.contains(&10) && gaps.contains(&1));
    }
}
