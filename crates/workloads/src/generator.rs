//! The stream generator: profiles + Zipf sampling + near-duplicate
//! injection.

use crate::arrival::ArrivalProcess;
use crate::profile::DatasetProfile;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssj_text::{Record, RecordBuilder, RecordId, TokenId};
use std::collections::VecDeque;

/// A deterministic (seeded) infinite record stream following a
/// [`DatasetProfile`].
///
/// Implements [`Iterator`]; ids are assigned sequentially from 0 and
/// timestamps follow the configured [`ArrivalProcess`].
#[derive(Debug)]
pub struct StreamGenerator {
    profile: DatasetProfile,
    zipf: ZipfSampler,
    rng: StdRng,
    arrival: ArrivalProcess,
    recent: VecDeque<Record>,
    builder: RecordBuilder,
    next_id: u64,
    clock_ms: u64,
}

impl StreamGenerator {
    /// A generator for `profile`, deterministic in `seed`.
    pub fn new(profile: DatasetProfile, seed: u64) -> Self {
        let zipf = ZipfSampler::new(profile.vocab, profile.skew);
        Self {
            profile,
            zipf,
            rng: StdRng::seed_from_u64(seed),
            arrival: ArrivalProcess::default(),
            recent: VecDeque::new(),
            builder: RecordBuilder::new(),
            next_id: 0,
            clock_ms: 0,
        }
    }

    /// Replaces the arrival (timestamping) process.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Mutable profile access (used by the drift wrapper to re-parameterise
    /// the length distribution mid-stream). The Zipf table is *not*
    /// rebuilt, so `vocab`/`skew` edits through this handle have no effect.
    pub fn profile_mut(&mut self) -> &mut DatasetProfile {
        &mut self.profile
    }

    /// Generates the next record.
    pub fn next_record(&mut self) -> Record {
        self.clock_ms = self.arrival.next_ts(&mut self.rng, self.clock_ms);
        let id = RecordId(self.next_id);
        self.next_id += 1;

        let record = if !self.recent.is_empty() && self.rng.random::<f64>() < self.profile.dup_rate
        {
            self.near_duplicate(id)
        } else {
            self.fresh_record(id)
        };

        self.recent.push_back(record.clone());
        if self.recent.len() > self.profile.recent_pool {
            self.recent.pop_front();
        }
        record
    }

    /// Convenience: the next `n` records as a vector.
    pub fn take_records(&mut self, n: usize) -> Vec<Record> {
        (0..n).map(|_| self.next_record()).collect()
    }

    fn fresh_record(&mut self, id: RecordId) -> Record {
        let target_len = self.profile.len_dist.sample(&mut self.rng).max(1);
        // Sample distinct tokens; the builder dedups, so oversample until
        // the set is full (capped: extreme skew may not admit `target_len`
        // distinct tokens cheaply).
        let mut distinct = 0;
        let mut attempts = 0;
        let max_attempts = target_len * 20 + 64;
        let mut seen: Vec<TokenId> = Vec::with_capacity(target_len);
        while distinct < target_len && attempts < max_attempts {
            attempts += 1;
            let t = self.zipf.sample_token(&mut self.rng);
            if !seen.contains(&t) {
                seen.push(t);
                distinct += 1;
            }
        }
        self.builder.extend(seen);
        self.builder
            .finish(id, self.clock_ms)
            .expect("at least one token sampled")
    }

    fn near_duplicate(&mut self, id: RecordId) -> Record {
        let src_idx = self.rng.random_range(0..self.recent.len());
        let src = self.recent[src_idx].clone();
        let mutations = self.rng.random_range(0..=self.profile.dup_mutations);
        let mut tokens: Vec<TokenId> = src.tokens().to_vec();
        for _ in 0..mutations {
            if tokens.len() >= 2 && self.rng.random::<bool>() {
                // Remove a random token.
                let idx = self.rng.random_range(0..tokens.len());
                tokens.swap_remove(idx);
            } else {
                // Add a fresh token.
                tokens.push(self.zipf.sample_token(&mut self.rng));
            }
        }
        self.builder.extend(tokens);
        self.builder
            .finish(id, self.clock_ms)
            .expect("duplicates keep at least one token")
    }
}

impl Iterator for StreamGenerator {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_with_seed() {
        let a = StreamGenerator::new(DatasetProfile::aol(), 99).take_records(200);
        let b = StreamGenerator::new(DatasetProfile::aol(), 99).take_records(200);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.tokens(), y.tokens());
            assert_eq!(x.timestamp(), y.timestamp());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamGenerator::new(DatasetProfile::aol(), 1).take_records(50);
        let b = StreamGenerator::new(DatasetProfile::aol(), 2).take_records(50);
        assert!(a.iter().zip(&b).any(|(x, y)| x.tokens() != y.tokens()));
    }

    #[test]
    fn ids_sequential_timestamps_monotone() {
        let records = StreamGenerator::new(DatasetProfile::tweet(), 5).take_records(100);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id(), RecordId(i as u64));
        }
        for w in records.windows(2) {
            assert!(w[0].timestamp() <= w[1].timestamp());
        }
    }

    #[test]
    fn dup_rate_produces_exact_copies_or_near() {
        let p = DatasetProfile::tweet().with_dup_rate(0.9);
        let records = StreamGenerator::new(p, 11).take_records(500);
        // With 90% duplicates of a recent pool, many identical token sets
        // must exist.
        let mut sets: Vec<&[TokenId]> = records.iter().map(|r| r.tokens()).collect();
        sets.sort();
        let dups = sets.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(dups > 50, "expected many duplicates, got {dups}");
    }

    #[test]
    fn zero_dup_rate_never_consults_pool() {
        let p = DatasetProfile::dblp().with_dup_rate(0.0);
        let records = StreamGenerator::new(p, 3).take_records(100);
        assert_eq!(records.len(), 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn records_are_valid_sets(seed in 0u64..1000) {
            let records = StreamGenerator::new(DatasetProfile::aol(), seed).take_records(100);
            for r in &records {
                prop_assert!(!r.is_empty());
                prop_assert!(r.tokens().windows(2).all(|w| w[0] < w[1]));
                prop_assert!(r.tokens().iter().all(|t| t.0 < 100_000));
            }
        }
    }
}
