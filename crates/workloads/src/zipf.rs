//! Zipf-distributed token sampling.
//!
//! Rank `k` (0-based) is drawn with probability proportional to
//! `1 / (k+1)^s`. Ranks are mapped to [`TokenId`]s in *reverse*: the most
//! popular rank gets the largest id, so generated records already follow
//! the crate-wide convention that smaller token ids are globally rarer —
//! exactly what a corpus pass with document-frequency ordering would
//! produce on real text.

use crate::alias::AliasTable;
use rand::Rng;
use ssj_text::TokenId;

/// An O(1)-per-sample Zipf token sampler over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    table: AliasTable,
    vocab: u32,
}

impl ZipfSampler {
    /// A sampler over `vocab` tokens with skew exponent `s ≥ 0`
    /// (`s = 0` is uniform; ~1 matches natural text).
    pub fn new(vocab: usize, s: f64) -> Self {
        assert!(vocab > 0, "vocabulary must not be empty");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and >= 0");
        let weights: Vec<f64> = (0..vocab).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        Self {
            table: AliasTable::new(&weights),
            vocab: vocab as u32,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab as usize
    }

    /// Draws a popularity rank (0 = most popular).
    #[inline]
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }

    /// Draws a token id (small id = rare token).
    #[inline]
    pub fn sample_token<R: Rng + ?Sized>(&self, rng: &mut R) -> TokenId {
        self.rank_to_token(self.sample_rank(rng))
    }

    /// The token id of a popularity rank.
    #[inline]
    pub fn rank_to_token(&self, rank: usize) -> TokenId {
        debug_assert!((rank as u32) < self.vocab);
        TokenId(self.vocab - 1 - rank as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_token_mapping_reverses() {
        let z = ZipfSampler::new(10, 1.0);
        assert_eq!(z.rank_to_token(0), TokenId(9)); // most popular = largest id
        assert_eq!(z.rank_to_token(9), TokenId(0)); // rarest = smallest id
    }

    #[test]
    fn skew_makes_low_ranks_dominant() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let top10 = (0..n).filter(|_| z.sample_rank(&mut rng) < 10).count() as f64 / n as f64;
        assert!(top10 > 0.3, "top-10 ranks should dominate, got {top10}");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        let expected = n as f64 / 100.0;
        for c in counts {
            assert!((c as f64 - expected).abs() < expected * 0.2);
        }
    }

    #[test]
    fn tokens_in_range() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample_token(&mut rng).0 < 50);
        }
    }
}
