//! Synthetic corpus and stream generators.
//!
//! The paper evaluates on real corpora (query logs, titles, e-mails,
//! tweets); those cannot ship with the repository, so this crate generates
//! streams that reproduce the *cost drivers* the join cares about:
//!
//! * **token-frequency skew** — Zipf-distributed token popularity sampled
//!   in O(1) via a Walker alias table ([`alias`], [`zipf`]);
//! * **record-length distribution** — per-profile log-normal / normal
//!   length models with clamps ([`profile`]);
//! * **near-duplicate density** — a configurable fraction of records are
//!   mutated copies of recent ones ([`generator`]), the phenomenon the
//!   bundle joiner exploits;
//! * **drift** — slow changes of length and token popularity over the
//!   stream ([`drift`]), exercising online repartitioning;
//! * **arrival processes** — uniform / Poisson / bursty timestamping
//!   ([`arrival`]).
//!
//! Profiles named after the corpora they imitate (`aol`, `dblp`, `enron`,
//! `tweet`) fix the generator parameters used throughout the evaluation.
//!
//! ```
//! use ssj_workloads::{DatasetProfile, StreamGenerator};
//!
//! let records = StreamGenerator::new(DatasetProfile::aol(), 42).take_records(1000);
//! assert_eq!(records.len(), 1000);
//! assert!(records.iter().all(|r| r.len() >= 1));
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod arrival;
pub mod drift;
pub mod generator;
pub mod profile;
pub mod zipf;

pub use arrival::ArrivalProcess;
pub use drift::{DriftConfig, DriftingGenerator};
pub use generator::StreamGenerator;
pub use profile::{DatasetProfile, LengthDist};
pub use zipf::ZipfSampler;
