//! Concept drift: slowly changing length and token-popularity
//! distributions, used to exercise online repartitioning (experiment F10).

use crate::generator::StreamGenerator;
use crate::profile::{DatasetProfile, LengthDist};
use ssj_text::Record;

/// How the stream drifts over its configured horizon.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Records over which the drift completes (progress saturates at 1
    /// afterwards).
    pub horizon: usize,
    /// Multiplier applied to record lengths at the end of the horizon
    /// (1.0 = no length drift). Interpolated linearly.
    pub length_factor_end: f64,
}

impl DriftConfig {
    /// Length-only drift reaching `factor` at `horizon` records.
    pub fn length_drift(horizon: usize, factor: f64) -> Self {
        assert!(horizon > 0, "drift horizon must be positive");
        assert!(factor > 0.0, "length factor must be positive");
        Self {
            horizon,
            length_factor_end: factor,
        }
    }

    fn factor_at(&self, emitted: usize) -> f64 {
        let progress = (emitted as f64 / self.horizon as f64).min(1.0);
        1.0 + (self.length_factor_end - 1.0) * progress
    }
}

/// Wraps a [`StreamGenerator`], rescaling its length distribution as the
/// stream progresses.
///
/// Implementation note: the inner generator is re-parameterised per record
/// by scaling the length distribution's moments — token sampling and
/// near-duplicate behaviour are untouched, so only the *length profile*
/// drifts, which is exactly the condition that degrades a stale length
/// partition.
#[derive(Debug)]
pub struct DriftingGenerator {
    inner: StreamGenerator,
    base: LengthDist,
    cfg: DriftConfig,
    emitted: usize,
}

impl DriftingGenerator {
    /// A drifting stream over `profile`.
    pub fn new(profile: DatasetProfile, seed: u64, cfg: DriftConfig) -> Self {
        let base = profile.len_dist;
        Self {
            inner: StreamGenerator::new(profile, seed),
            base,
            cfg,
            emitted: 0,
        }
    }

    /// Current length-scale factor (1.0 at stream start).
    pub fn current_factor(&self) -> f64 {
        self.cfg.factor_at(self.emitted)
    }

    /// Generates the next record under the current drift factor.
    pub fn next_record(&mut self) -> Record {
        let f = self.cfg.factor_at(self.emitted);
        self.inner.profile_mut().len_dist = scale_dist(self.base, f);
        self.emitted += 1;
        self.inner.next_record()
    }

    /// Convenience: the next `n` records.
    pub fn take_records(&mut self, n: usize) -> Vec<Record> {
        (0..n).map(|_| self.next_record()).collect()
    }
}

impl Iterator for DriftingGenerator {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        Some(self.next_record())
    }
}

fn scale_dist(d: LengthDist, f: f64) -> LengthDist {
    let s = |x: usize| ((x as f64 * f).round() as usize).max(1);
    match d {
        LengthDist::Uniform { lo, hi } => LengthDist::Uniform {
            lo: s(lo),
            hi: s(hi).max(s(lo)),
        },
        LengthDist::LogNormal { mu, sigma, lo, hi } => LengthDist::LogNormal {
            mu: mu + f.ln(),
            sigma,
            lo: s(lo),
            hi: s(hi),
        },
        LengthDist::Normal { mean, sd, lo, hi } => LengthDist::Normal {
            mean: mean * f,
            sd,
            lo: s(lo),
            hi: s(hi),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_len(records: &[Record]) -> f64 {
        records.iter().map(|r| r.len()).sum::<usize>() as f64 / records.len() as f64
    }

    #[test]
    fn lengths_grow_with_positive_drift() {
        let cfg = DriftConfig::length_drift(4000, 3.0);
        let mut g = DriftingGenerator::new(DatasetProfile::dblp(), 7, cfg);
        let early = g.take_records(1000);
        let _skip = g.take_records(2000);
        let late = g.take_records(1000);
        let (a, b) = (avg_len(&early), avg_len(&late));
        assert!(
            b > a * 1.5,
            "late avg {b} should exceed early avg {a} by 1.5x"
        );
    }

    #[test]
    fn factor_saturates_at_horizon() {
        let cfg = DriftConfig::length_drift(10, 2.0);
        let mut g = DriftingGenerator::new(DatasetProfile::aol(), 1, cfg);
        let _early = g.take_records(50);
        assert!((g.current_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_drift_factor_one() {
        let cfg = DriftConfig::length_drift(100, 1.0);
        let mut g = DriftingGenerator::new(DatasetProfile::aol(), 1, cfg);
        let _r = g.take_records(200);
        assert!((g.current_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drift_is_deterministic() {
        let cfg = DriftConfig::length_drift(500, 2.0);
        let a = DriftingGenerator::new(DatasetProfile::tweet(), 3, cfg).take_records(300);
        let b = DriftingGenerator::new(DatasetProfile::tweet(), 3, cfg).take_records(300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens(), y.tokens());
        }
    }
}
