//! Two-pass corpus construction: tokenize → count → df-order → records.

use crate::order::DfOrder;
use crate::record::{Record, RecordBuilder, RecordId};
use crate::token::{Dictionary, TokenId};
use crate::tokenizer::Tokenizer;

/// A fully preprocessed corpus: records with df-ordered token ids, plus the
/// dictionary and ordering needed to map tokens back to strings.
#[derive(Debug)]
pub struct Corpus {
    dictionary: Dictionary,
    order: DfOrder,
    records: Vec<Record>,
}

impl Corpus {
    /// The preprocessed records, in input order, ids `0..n`.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the corpus, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// The interning dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The document-frequency ordering in effect.
    pub fn order(&self) -> &DfOrder {
        &self.order
    }

    /// The string behind an ordered token id.
    pub fn token_string(&self, token: TokenId) -> &str {
        self.dictionary.string(self.order.raw_id(token))
    }

    /// Distinct-token universe size.
    pub fn vocab_size(&self) -> usize {
        self.dictionary.len()
    }

    /// Mean record length (0.0 for an empty corpus).
    pub fn avg_len(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.len()).sum::<usize>() as f64 / self.records.len() as f64
    }

    /// Maximum record length (0 for an empty corpus).
    pub fn max_len(&self) -> usize {
        self.records.iter().map(|r| r.len()).max().unwrap_or(0)
    }
}

/// Builds a [`Corpus`] from texts in two passes: the first pass interns
/// tokens and counts document frequencies, the second remaps every document
/// into df-ordered, sorted, deduplicated records.
///
/// Documents that tokenize to nothing are dropped (and do not consume a
/// record id).
pub struct CorpusBuilder<T: Tokenizer> {
    tokenizer: T,
    dictionary: Dictionary,
    /// Raw-id token sets per document (deduplicated, unsorted order).
    docs: Vec<Vec<u32>>,
    /// Per-document timestamps (parallel to `docs`).
    timestamps: Vec<u64>,
    scratch: Vec<u32>,
}

impl<T: Tokenizer> CorpusBuilder<T> {
    /// A builder using `tokenizer`.
    pub fn new(tokenizer: T) -> Self {
        Self {
            tokenizer,
            dictionary: Dictionary::new(),
            docs: Vec::new(),
            timestamps: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Adds a document with timestamp 0.
    pub fn add_text(mut self, text: &str) -> Self {
        self.push_text(text, 0);
        self
    }

    /// Adds a document with an explicit stream timestamp (milliseconds).
    pub fn push_text(&mut self, text: &str, timestamp: u64) {
        let scratch = &mut self.scratch;
        scratch.clear();
        let dict = &mut self.dictionary;
        self.tokenizer
            .for_each_token(text, &mut |tok| scratch.push(dict.intern(tok)));
        if scratch.is_empty() {
            return;
        }
        // Dedup within the document before counting document frequency.
        scratch.sort_unstable();
        scratch.dedup();
        for &raw in scratch.iter() {
            self.dictionary.bump_doc_freq(raw);
        }
        self.docs.push(scratch.clone());
        self.timestamps.push(timestamp);
    }

    /// Number of non-empty documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Finishes the second pass and produces the corpus.
    pub fn build(self) -> Corpus {
        let order = DfOrder::from_dictionary(&self.dictionary);
        let mut builder = RecordBuilder::new();
        let mut records = Vec::with_capacity(self.docs.len());
        for (i, (doc, ts)) in self.docs.into_iter().zip(self.timestamps).enumerate() {
            builder.extend(doc.into_iter().map(|raw| order.token_id(raw)));
            let record = builder
                .finish(RecordId(i as u64), ts)
                .expect("non-empty documents only");
            records.push(record);
        }
        Corpus {
            dictionary: self.dictionary,
            order,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WordTokenizer;

    fn build(texts: &[&str]) -> Corpus {
        let mut b = CorpusBuilder::new(WordTokenizer::default());
        for (i, t) in texts.iter().enumerate() {
            b.push_text(t, i as u64);
        }
        b.build()
    }

    #[test]
    fn records_are_sorted_by_rarity() {
        // "common" appears in all three docs, "rare" in one.
        let c = build(&["common rare", "common x", "common y"]);
        let r0 = &c.records()[0];
        // The first (rarest) token of doc 0 must be "rare", not "common".
        assert_eq!(c.token_string(r0.tokens()[0]), "rare");
        assert_eq!(c.token_string(*r0.tokens().last().unwrap()), "common");
    }

    #[test]
    fn duplicate_tokens_collapse() {
        let c = build(&["a a a b"]);
        assert_eq!(c.records()[0].len(), 2);
    }

    #[test]
    fn empty_documents_are_dropped() {
        let c = build(&["a b", "---", "c"]);
        assert_eq!(c.records().len(), 2);
        // Ids stay dense.
        assert_eq!(c.records()[1].id(), RecordId(1));
    }

    #[test]
    fn timestamps_preserved() {
        let c = build(&["a", "b"]);
        assert_eq!(c.records()[0].timestamp(), 0);
        assert_eq!(c.records()[1].timestamp(), 1);
    }

    #[test]
    fn stats() {
        let c = build(&["a b c", "a b", "zq"]);
        assert_eq!(c.vocab_size(), 4);
        assert_eq!(c.max_len(), 3);
        assert!((c.avg_len() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn token_string_roundtrip() {
        let c = build(&["alpha beta", "beta"]);
        for r in c.records() {
            for &t in r.tokens() {
                let s = c.token_string(t);
                assert!(["alpha", "beta"].contains(&s));
            }
        }
    }

    #[test]
    fn empty_corpus() {
        let c = build(&[]);
        assert!(c.records().is_empty());
        assert_eq!(c.avg_len(), 0.0);
        assert_eq!(c.max_len(), 0);
    }
}
