//! Token identifiers and the string-interning dictionary.

use crate::fxhash::FxHashMap;
use std::fmt;

/// A compact token identifier.
///
/// The numeric order of `TokenId`s is the *processing order* of the join:
/// after a corpus is built with [document-frequency ordering](crate::order),
/// a smaller id means a globally rarer token. Records store their tokens
/// sorted ascending by `TokenId`, so the first few tokens of a record are
/// its rarest — exactly the tokens prefix filtering wants to index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An interning dictionary mapping token strings to dense raw ids.
///
/// Raw ids are assigned in first-seen order; [`crate::order::DfOrder`]
/// remaps them into document-frequency order once counting is complete.
/// The dictionary also tracks the *document frequency* of each token: the
/// number of distinct documents the token appeared in (not total
/// occurrences), which is the statistic prefix ordering needs.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_string: FxHashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
    doc_freq: Vec<u64>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `token`, returning its raw id. Does not touch frequencies.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_string.get(token) {
            return id;
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = token.into();
        self.strings.push(boxed.clone());
        self.doc_freq.push(0);
        self.by_string.insert(boxed, id);
        id
    }

    /// Records one document-level occurrence of the raw id.
    ///
    /// Call at most once per (token, document) pair; [`crate::corpus`]
    /// deduplicates tokens within a document before counting.
    pub fn bump_doc_freq(&mut self, raw_id: u32) {
        self.doc_freq[raw_id as usize] += 1;
    }

    /// Looks up the raw id of a token without interning it.
    pub fn lookup(&self, token: &str) -> Option<u32> {
        self.by_string.get(token).copied()
    }

    /// The token string for a raw id.
    pub fn string(&self, raw_id: u32) -> &str {
        &self.strings[raw_id as usize]
    }

    /// Document frequency of a raw id.
    pub fn doc_freq(&self, raw_id: u32) -> u64 {
        self.doc_freq[raw_id as usize]
    }

    /// All document frequencies, indexed by raw id.
    pub fn doc_freqs(&self) -> &[u64] {
        &self.doc_freq
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("storm");
        let b = d.intern("storm");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.string(1), "b");
        assert_eq!(d.lookup("c"), Some(2));
        assert_eq!(d.lookup("missing"), None);
    }

    #[test]
    fn doc_freq_counts() {
        let mut d = Dictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        d.bump_doc_freq(a);
        d.bump_doc_freq(a);
        d.bump_doc_freq(b);
        assert_eq!(d.doc_freq(a), 2);
        assert_eq!(d.doc_freq(b), 1);
        assert_eq!(d.doc_freqs(), &[2, 1]);
    }

    #[test]
    fn token_id_orders_numerically() {
        assert!(TokenId(1) < TokenId(2));
        assert_eq!(format!("{:?}", TokenId(7)), "t7");
    }
}
