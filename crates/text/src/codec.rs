//! A compact binary codec for records.
//!
//! This is the wire format the distributed layer's byte accounting assumes
//! (`Record::wire_bytes`): little-endian `id: u64`, `timestamp: u64`,
//! `len: u32`, then `len` token ids of 4 bytes each. It doubles as an
//! on-disk corpus cache for the CLI and keeps the accounting honest: a
//! record's metered size is exactly its encoded size.

use crate::record::{Record, RecordId};
use crate::token::TokenId;
use std::io::{self, Read, Write};

/// Encodes one record to a writer. Returns the bytes written — always
/// equal to [`Record::wire_bytes`].
pub fn encode_record<W: Write>(record: &Record, out: &mut W) -> io::Result<u64> {
    out.write_all(&record.id().0.to_le_bytes())?;
    out.write_all(&record.timestamp().to_le_bytes())?;
    out.write_all(&(record.len() as u32).to_le_bytes())?;
    for t in record.tokens() {
        out.write_all(&t.raw().to_le_bytes())?;
    }
    Ok(record.wire_bytes())
}

/// Decodes one record; `Ok(None)` signals clean end-of-stream (EOF before
/// the first header byte).
pub fn decode_record<R: Read>(input: &mut R) -> io::Result<Option<Record>> {
    let mut id = [0u8; 8];
    match input.read_exact(&mut id) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut ts = [0u8; 8];
    input.read_exact(&mut ts)?;
    let mut len = [0u8; 4];
    input.read_exact(&mut len)?;
    let n = u32::from_le_bytes(len) as usize;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record with zero tokens",
        ));
    }
    let mut tokens = Vec::with_capacity(n);
    let mut buf = [0u8; 4];
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        input.read_exact(&mut buf)?;
        let raw = u32::from_le_bytes(buf);
        if prev.is_some_and(|p| p >= raw) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tokens not strictly ascending",
            ));
        }
        prev = Some(raw);
        tokens.push(TokenId(raw));
    }
    Ok(Some(Record::from_sorted(
        RecordId(u64::from_le_bytes(id)),
        u64::from_le_bytes(ts),
        tokens,
    )))
}

/// Encodes a whole stream of records.
pub fn encode_stream<'a, W: Write>(
    records: impl IntoIterator<Item = &'a Record>,
    out: &mut W,
) -> io::Result<u64> {
    let mut bytes = 0;
    for r in records {
        bytes += encode_record(r, out)?;
    }
    Ok(bytes)
}

/// Decodes all records until end-of-stream.
pub fn decode_stream<R: Read>(input: &mut R) -> io::Result<Vec<Record>> {
    let mut out = Vec::new();
    while let Some(r) = decode_record(input)? {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(id: u64, ts: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            ts,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    #[test]
    fn roundtrip_single() {
        let r = rec(42, 1000, &[1, 5, 9]);
        let mut buf = Vec::new();
        let n = encode_record(&r, &mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        assert_eq!(n, r.wire_bytes(), "codec realizes the metered size");
        let d = decode_record(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(d.id(), r.id());
        assert_eq!(d.timestamp(), r.timestamp());
        assert_eq!(d.tokens(), r.tokens());
    }

    #[test]
    fn empty_stream() {
        assert!(decode_stream(&mut [].as_slice()).unwrap().is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let r = rec(1, 2, &[3, 4]);
        let mut buf = Vec::new();
        encode_record(&r, &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(decode_record(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_token_order_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // descending!
        assert!(decode_record(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn zero_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_record(&mut buf.as_slice()).is_err());
    }

    proptest! {
        #[test]
        fn stream_roundtrip(
            specs in proptest::collection::vec(
                (0u64..1000, 0u64..1000,
                 proptest::collection::btree_set(0u32..10_000, 1..40)),
                0..30,
            )
        ) {
            let records: Vec<Record> = specs
                .iter()
                .enumerate()
                .map(|(i, (_, ts, toks))| {
                    rec(i as u64, *ts, &toks.iter().copied().collect::<Vec<_>>())
                })
                .collect();
            let mut buf = Vec::new();
            let bytes = encode_stream(&records, &mut buf).unwrap();
            prop_assert_eq!(bytes as usize, buf.len());
            let decoded = decode_stream(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(decoded.len(), records.len());
            for (d, r) in decoded.iter().zip(&records) {
                prop_assert_eq!(d.id(), r.id());
                prop_assert_eq!(d.timestamp(), r.timestamp());
                prop_assert_eq!(d.tokens(), r.tokens());
            }
        }
    }
}
