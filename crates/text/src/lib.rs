//! Text preprocessing for set similarity joins.
//!
//! This crate turns raw text into [`Record`]s: compact, sorted sets of
//! [`TokenId`]s ready for prefix-filter based similarity joins. The pipeline
//! is:
//!
//! 1. tokenize each document ([`tokenizer`]),
//! 2. intern tokens into a [`Dictionary`] while counting document
//!    frequencies ([`token`]),
//! 3. remap token ids into ascending document-frequency order
//!    ([`order`]) — rare tokens first, which is what makes prefix
//!    filtering selective,
//! 4. emit records with strictly ascending token ids ([`record`]).
//!
//! [`corpus::CorpusBuilder`] drives the whole pipeline in two passes and is
//! the entry point most callers want:
//!
//! ```
//! use ssj_text::corpus::CorpusBuilder;
//! use ssj_text::tokenizer::WordTokenizer;
//!
//! let corpus = CorpusBuilder::new(WordTokenizer::default())
//!     .add_text("apache storm stream processing")
//!     .add_text("stream processing, apache storm")
//!     .build();
//! assert_eq!(corpus.records().len(), 2);
//! // Both documents contain the same token set, so after sorting they are equal.
//! assert_eq!(corpus.records()[0].tokens(), corpus.records()[1].tokens());
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod corpus;
pub mod fxhash;
pub mod loader;
pub mod order;
pub mod record;
pub mod token;
pub mod tokenizer;

pub use corpus::{Corpus, CorpusBuilder};
pub use fxhash::{FxHashMap, FxHashSet};
pub use loader::{load_lines, load_lines_from};
pub use record::{Record, RecordBuilder, RecordId};
pub use token::{Dictionary, TokenId};
pub use tokenizer::{QGramTokenizer, Tokenizer, WordTokenizer};
