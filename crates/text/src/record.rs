//! Records: sorted token sets with identity and arrival time.

use crate::token::TokenId;
use std::fmt;
use std::sync::Arc;

/// A record's unique, monotonically increasing identity.
///
/// Arrival order is encoded in the id: in a stream, `RecordId`s are assigned
/// in arrival order, so `a.id < b.id` means `a` arrived before `b`. Join
/// results always report the (earlier, later) orientation using this order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A record: a non-empty set of tokens, stored sorted ascending by
/// [`TokenId`] (i.e. rarest token first once document-frequency ordering is
/// applied).
///
/// Records are cheap to clone: the token payload is a shared `Arc` slice,
/// which is also what lets the distributed layer "send" a record to several
/// joiners without copying token data.
#[derive(Clone, PartialEq, Eq)]
pub struct Record {
    id: RecordId,
    /// Arrival timestamp in milliseconds (stream time; 0 for batch corpora).
    timestamp: u64,
    tokens: Arc<[TokenId]>,
}

impl Record {
    /// Builds a record from already-sorted, deduplicated tokens.
    ///
    /// # Panics
    /// Panics if `tokens` is empty or not strictly ascending — use
    /// [`RecordBuilder`] for unsorted input.
    pub fn from_sorted(id: RecordId, timestamp: u64, tokens: Vec<TokenId>) -> Self {
        assert!(!tokens.is_empty(), "record {id:?} has no tokens");
        assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "record {id:?} tokens must be strictly ascending"
        );
        Self {
            id,
            timestamp,
            tokens: tokens.into(),
        }
    }

    /// The record's identity.
    #[inline]
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// Arrival timestamp in stream milliseconds.
    #[inline]
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// The sorted token set.
    #[inline]
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Set size `|r|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Records are never empty; provided for clippy symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first `n` tokens (the record's rarest), used as filter prefixes.
    #[inline]
    pub fn prefix(&self, n: usize) -> &[TokenId] {
        &self.tokens[..n.min(self.tokens.len())]
    }

    /// Approximate wire size in bytes when shipped between workers:
    /// id + timestamp + length header + 4 bytes per token.
    ///
    /// The distributed layer meters communication with this, matching how a
    /// binary codec over the network would count.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        8 + 8 + 4 + 4 * self.tokens.len() as u64
    }

    /// Exact set containment test (binary search; tokens are sorted).
    #[inline]
    pub fn contains(&self, token: TokenId) -> bool {
        self.tokens.binary_search(&token).is_ok()
    }

    /// Re-stamps the record with a new id and timestamp, sharing tokens.
    pub fn restamped(&self, id: RecordId, timestamp: u64) -> Self {
        Self {
            id,
            timestamp,
            tokens: Arc::clone(&self.tokens),
        }
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Record")
            .field("id", &self.id)
            .field("ts", &self.timestamp)
            .field("len", &self.tokens.len())
            .finish()
    }
}

/// Builds records from unsorted, possibly-duplicated token lists.
#[derive(Debug, Default)]
pub struct RecordBuilder {
    tokens: Vec<TokenId>,
}

impl RecordBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one token occurrence.
    pub fn push(&mut self, token: TokenId) -> &mut Self {
        self.tokens.push(token);
        self
    }

    /// Adds many token occurrences.
    pub fn extend(&mut self, tokens: impl IntoIterator<Item = TokenId>) -> &mut Self {
        self.tokens.extend(tokens);
        self
    }

    /// Number of (possibly duplicate) tokens buffered.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Sorts, deduplicates, and produces the record; returns `None` when no
    /// tokens were added (empty documents produce no record). The builder is
    /// left empty and can be reused.
    pub fn finish(&mut self, id: RecordId, timestamp: u64) -> Option<Record> {
        if self.tokens.is_empty() {
            return None;
        }
        self.tokens.sort_unstable();
        self.tokens.dedup();
        let tokens = std::mem::take(&mut self.tokens);
        Some(Record::from_sorted(id, timestamp, tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(xs: &[u32]) -> Vec<TokenId> {
        xs.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn builder_sorts_and_dedups() {
        let mut b = RecordBuilder::new();
        b.extend(tid(&[5, 1, 3, 1, 5]));
        let r = b.finish(RecordId(1), 7).unwrap();
        assert_eq!(r.tokens(), &tid(&[1, 3, 5])[..]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.timestamp(), 7);
        assert!(b.is_empty(), "builder is reusable after finish");
    }

    #[test]
    fn builder_empty_yields_none() {
        let mut b = RecordBuilder::new();
        assert!(b.finish(RecordId(1), 0).is_none());
    }

    #[test]
    fn prefix_clamps() {
        let r = Record::from_sorted(RecordId(0), 0, tid(&[1, 2, 3]));
        assert_eq!(r.prefix(2), &tid(&[1, 2])[..]);
        assert_eq!(r.prefix(10), &tid(&[1, 2, 3])[..]);
    }

    #[test]
    fn contains_uses_set_semantics() {
        let r = Record::from_sorted(RecordId(0), 0, tid(&[2, 4, 6]));
        assert!(r.contains(TokenId(4)));
        assert!(!r.contains(TokenId(5)));
    }

    #[test]
    fn wire_bytes_counts_tokens() {
        let r = Record::from_sorted(RecordId(0), 0, tid(&[1, 2, 3]));
        assert_eq!(r.wire_bytes(), 8 + 8 + 4 + 12);
    }

    #[test]
    fn restamped_shares_tokens() {
        let r = Record::from_sorted(RecordId(0), 0, tid(&[1, 2]));
        let s = r.restamped(RecordId(9), 99);
        assert_eq!(s.id(), RecordId(9));
        assert_eq!(s.timestamp(), 99);
        assert_eq!(s.tokens(), r.tokens());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted() {
        let _ = Record::from_sorted(RecordId(0), 0, tid(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "no tokens")]
    fn from_sorted_rejects_empty() {
        let _ = Record::from_sorted(RecordId(0), 0, vec![]);
    }
}
