//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The similarity join keeps several very hot maps (token → posting list,
//! record id → slot). The standard library's SipHash is DoS-resistant but
//! slow for small integer keys; following the Rust Performance Book's
//! "Alternative Hashers" advice we use the Fx algorithm (the hasher used by
//! rustc itself). Keys here are internal integers, never
//! attacker-controlled, so the weaker mixing is safe.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the 64-bit Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a pipelined rotate–xor–multiply over 8-byte words.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("storm"), hash_of("storm"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a distribution test, just a sanity check that small deltas move
        // the hash at all.
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    #[test]
    fn unaligned_tails_are_hashed() {
        // 9 bytes exercises both the chunk loop and the remainder path.
        assert_ne!(hash_of(&b"123456789"[..]), hash_of(&b"123456780"[..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }
}
