//! Tokenizers: split raw text into token strings.
//!
//! Tokenizers are allocation-light: they hand each token to a callback as a
//! `&str` borrowing from the input (word tokenizer) or from a small reused
//! scratch buffer (q-gram tokenizer), so interning is the only place a token
//! string is ever copied.

/// Splits a document into tokens.
pub trait Tokenizer {
    /// Calls `f` once per token, in document order (duplicates included —
    /// the corpus builder deduplicates since records are *sets*).
    fn for_each_token(&self, text: &str, f: &mut dyn FnMut(&str));

    /// Convenience: collect tokens into owned strings (tests, small inputs).
    fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_token(text, &mut |t| out.push(t.to_owned()));
        out
    }
}

/// Splits on any non-alphanumeric character, optionally lowercasing.
///
/// This is the tokenization used for query-log / title / e-mail style
/// corpora in the set similarity join literature.
#[derive(Debug, Clone)]
pub struct WordTokenizer {
    lowercase: bool,
}

impl WordTokenizer {
    /// A word tokenizer with explicit case handling.
    pub fn new(lowercase: bool) -> Self {
        Self { lowercase }
    }
}

impl Default for WordTokenizer {
    /// Lowercasing word tokenizer.
    fn default() -> Self {
        Self { lowercase: true }
    }
}

impl Tokenizer for WordTokenizer {
    fn for_each_token(&self, text: &str, f: &mut dyn FnMut(&str)) {
        let mut lower = String::new();
        for word in text.split(|c: char| !c.is_alphanumeric()) {
            if word.is_empty() {
                continue;
            }
            if self.lowercase && word.chars().any(|c| c.is_uppercase()) {
                lower.clear();
                // `char::to_lowercase` may expand to several chars; extend
                // handles that correctly (e.g. 'İ').
                lower.extend(word.chars().flat_map(|c| c.to_lowercase()));
                f(&lower);
            } else {
                f(word);
            }
        }
    }
}

/// Character q-grams over the normalized text (whitespace collapsed to `_`).
///
/// Q-grams make edit-distance-like similarity expressible as set overlap and
/// are the standard alternative tokenization for short, typo-prone records.
#[derive(Debug, Clone)]
pub struct QGramTokenizer {
    q: usize,
    lowercase: bool,
}

impl QGramTokenizer {
    /// A q-gram tokenizer; `q` must be at least 1.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q-gram size must be >= 1");
        Self { q, lowercase: true }
    }

    /// Disables lowercasing.
    pub fn case_sensitive(mut self) -> Self {
        self.lowercase = false;
        self
    }

    /// The configured gram size.
    pub fn q(&self) -> usize {
        self.q
    }
}

impl Tokenizer for QGramTokenizer {
    fn for_each_token(&self, text: &str, f: &mut dyn FnMut(&str)) {
        // Normalize: collapse whitespace runs to single '_', optional
        // lowercase. Collect chars so grams respect UTF-8 boundaries.
        let mut chars: Vec<char> = Vec::with_capacity(text.len());
        let mut last_was_space = true; // also trims leading whitespace
        for c in text.chars() {
            if c.is_whitespace() {
                if !last_was_space {
                    chars.push('_');
                    last_was_space = true;
                }
            } else {
                if self.lowercase {
                    chars.extend(c.to_lowercase());
                } else {
                    chars.push(c);
                }
                last_was_space = false;
            }
        }
        while chars.last() == Some(&'_') {
            chars.pop();
        }
        if chars.is_empty() {
            return;
        }
        if chars.len() < self.q {
            // Short strings yield a single gram of the whole string, so no
            // document tokenizes to nothing.
            let gram: String = chars.iter().collect();
            f(&gram);
            return;
        }
        let mut gram = String::with_capacity(self.q * 4);
        for window in chars.windows(self.q) {
            gram.clear();
            gram.extend(window.iter());
            f(&gram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokenizer_splits_and_lowercases() {
        let t = WordTokenizer::default();
        assert_eq!(
            t.tokenize("Apache Storm, stream-processing!"),
            vec!["apache", "storm", "stream", "processing"]
        );
    }

    #[test]
    fn word_tokenizer_case_sensitive() {
        let t = WordTokenizer::new(false);
        assert_eq!(t.tokenize("Apache storm"), vec!["Apache", "storm"]);
    }

    #[test]
    fn word_tokenizer_keeps_digits() {
        let t = WordTokenizer::default();
        assert_eq!(t.tokenize("icde 2020"), vec!["icde", "2020"]);
    }

    #[test]
    fn word_tokenizer_empty_input() {
        let t = WordTokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("  ,.;  ").is_empty());
    }

    #[test]
    fn word_tokenizer_unicode_lowercase() {
        let t = WordTokenizer::default();
        assert_eq!(t.tokenize("Größe"), vec!["größe"]);
    }

    #[test]
    fn qgram_basic() {
        let t = QGramTokenizer::new(2);
        assert_eq!(t.tokenize("abc"), vec!["ab", "bc"]);
    }

    #[test]
    fn qgram_whitespace_normalization() {
        let t = QGramTokenizer::new(3);
        assert_eq!(t.tokenize(" a  b "), vec!["a_b"]);
    }

    #[test]
    fn qgram_short_string_yields_whole() {
        let t = QGramTokenizer::new(5);
        assert_eq!(t.tokenize("ab"), vec!["ab"]);
    }

    #[test]
    fn qgram_empty() {
        let t = QGramTokenizer::new(3);
        assert!(t.tokenize("   ").is_empty());
    }

    #[test]
    fn qgram_utf8_boundaries() {
        let t = QGramTokenizer::new(2);
        assert_eq!(t.tokenize("héllo"), vec!["hé", "él", "ll", "lo"]);
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn qgram_zero_panics() {
        let _ = QGramTokenizer::new(0);
    }
}
