//! Loading corpora from disk: one document per line.

use crate::corpus::{Corpus, CorpusBuilder};
use crate::tokenizer::Tokenizer;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// Reads a line-per-document corpus from `path`.
///
/// Lines are documents in arrival order; timestamps are assigned as
/// `line_index * ts_step_ms` (a constant-rate stream clock). Empty lines
/// (or lines that tokenize to nothing) are skipped without consuming a
/// record id.
pub fn load_lines<T: Tokenizer>(path: &Path, tokenizer: T, ts_step_ms: u64) -> io::Result<Corpus> {
    let file = File::open(path)?;
    load_lines_from(BufReader::new(file), tokenizer, ts_step_ms)
}

/// [`load_lines`] over any reader (testing, stdin).
pub fn load_lines_from<R: Read, T: Tokenizer>(
    reader: R,
    tokenizer: T,
    ts_step_ms: u64,
) -> io::Result<Corpus> {
    let mut builder = CorpusBuilder::new(tokenizer);
    let mut ts = 0u64;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        builder.push_text(&line, ts);
        ts += ts_step_ms;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::WordTokenizer;

    #[test]
    fn loads_documents_in_order() {
        let text = "first document here\nsecond document here\n\nthird one\n";
        let corpus = load_lines_from(text.as_bytes(), WordTokenizer::default(), 10).unwrap();
        // The empty line is dropped; ids stay dense.
        assert_eq!(corpus.records().len(), 3);
        assert_eq!(corpus.records()[0].timestamp(), 0);
        assert_eq!(corpus.records()[1].timestamp(), 10);
        // The third document was on line index 3 → ts 30.
        assert_eq!(corpus.records()[2].timestamp(), 30);
    }

    #[test]
    fn missing_file_errors() {
        let r = load_lines(
            Path::new("/definitely/not/a/file"),
            WordTokenizer::default(),
            1,
        );
        assert!(r.is_err());
    }

    #[test]
    fn all_empty_yields_empty_corpus() {
        let corpus = load_lines_from("\n\n".as_bytes(), WordTokenizer::default(), 1).unwrap();
        assert!(corpus.records().is_empty());
    }
}
