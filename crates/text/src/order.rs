//! Document-frequency token ordering.
//!
//! Prefix filtering is selective only when the tokens considered first are
//! globally rare: the probability that two records share a *rare* token is
//! low, so indexing/probing just the rare prefix of each record prunes most
//! pairs. This module computes the canonical remapping from first-seen raw
//! ids to ids in ascending document-frequency order (ties broken by raw id
//! for determinism).

use crate::token::{Dictionary, TokenId};

/// A bijective remapping `raw id → ordered TokenId`.
#[derive(Debug, Clone)]
pub struct DfOrder {
    /// `remap[raw_id] = ordered id`.
    remap: Vec<u32>,
    /// `inverse[ordered id] = raw_id`.
    inverse: Vec<u32>,
}

impl DfOrder {
    /// Builds the ordering from per-raw-id document frequencies.
    pub fn from_doc_freqs(doc_freqs: &[u64]) -> Self {
        let mut raw_ids: Vec<u32> = (0..doc_freqs.len() as u32).collect();
        // Ascending frequency; ties by raw id so the order is deterministic
        // across runs regardless of hash-map iteration.
        raw_ids.sort_by_key(|&raw| (doc_freqs[raw as usize], raw));
        let mut remap = vec![0u32; doc_freqs.len()];
        for (ordered, &raw) in raw_ids.iter().enumerate() {
            remap[raw as usize] = ordered as u32;
        }
        Self {
            remap,
            inverse: raw_ids,
        }
    }

    /// Builds the ordering from a dictionary's document-frequency counts.
    pub fn from_dictionary(dict: &Dictionary) -> Self {
        Self::from_doc_freqs(dict.doc_freqs())
    }

    /// Maps a raw id to its ordered [`TokenId`].
    #[inline]
    pub fn token_id(&self, raw_id: u32) -> TokenId {
        TokenId(self.remap[raw_id as usize])
    }

    /// Maps an ordered [`TokenId`] back to the raw id (for display).
    #[inline]
    pub fn raw_id(&self, token: TokenId) -> u32 {
        self.inverse[token.0 as usize]
    }

    /// Number of tokens covered by the ordering.
    pub fn len(&self) -> usize {
        self.remap.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.remap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rare_tokens_get_small_ids() {
        // freqs: raw0=10, raw1=1, raw2=5  =>  order: raw1, raw2, raw0
        let o = DfOrder::from_doc_freqs(&[10, 1, 5]);
        assert_eq!(o.token_id(1), TokenId(0));
        assert_eq!(o.token_id(2), TokenId(1));
        assert_eq!(o.token_id(0), TokenId(2));
    }

    #[test]
    fn ties_break_by_raw_id() {
        let o = DfOrder::from_doc_freqs(&[3, 3, 3]);
        assert_eq!(o.token_id(0), TokenId(0));
        assert_eq!(o.token_id(1), TokenId(1));
        assert_eq!(o.token_id(2), TokenId(2));
    }

    #[test]
    fn inverse_roundtrips() {
        let o = DfOrder::from_doc_freqs(&[7, 2, 2, 9]);
        for raw in 0..4u32 {
            assert_eq!(o.raw_id(o.token_id(raw)), raw);
        }
    }

    #[test]
    fn empty_is_fine() {
        let o = DfOrder::from_doc_freqs(&[]);
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
    }

    proptest! {
        #[test]
        fn remap_is_a_permutation(freqs in proptest::collection::vec(0u64..100, 0..200)) {
            let o = DfOrder::from_doc_freqs(&freqs);
            let mut seen = vec![false; freqs.len()];
            for raw in 0..freqs.len() as u32 {
                let t = o.token_id(raw);
                prop_assert!(!seen[t.0 as usize], "duplicate ordered id");
                seen[t.0 as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn order_respects_frequency(freqs in proptest::collection::vec(0u64..100, 2..200)) {
            let o = DfOrder::from_doc_freqs(&freqs);
            for a in 0..freqs.len() as u32 {
                for b in 0..freqs.len() as u32 {
                    if freqs[a as usize] < freqs[b as usize] {
                        prop_assert!(o.token_id(a) < o.token_id(b));
                    }
                }
            }
        }
    }
}
