//! obs — observability primitives for dssj: structured trace events,
//! bounded per-task event rings, a metrics registry, per-stage latency
//! histograms, and byte-deterministic exporters (JSONL trace, Prometheus
//! text exposition, chrome://tracing JSON).
//!
//! # Determinism contract
//!
//! Nothing in this crate reads the wall clock or draws randomness.
//! Timestamps are supplied by the caller — in dssj, the topology's
//! scheduler clock reading, which under the deterministic simulation
//! scheduler is virtual time. Event merging sorts tasks by
//! `(component, task)` before a stable sort by timestamp, so the merged
//! order never depends on thread join order. The exporters format
//! integers only (nanoseconds, or microseconds rendered as
//! `ns/1000 "." ns%1000`), never `f64`, so the same events always render
//! to the same bytes on every platform. Together this makes a simulated
//! run's exported trace golden-diffable exactly like a transcript.

#![warn(missing_docs)]

mod event;
mod export;
mod histogram;
mod metric;
mod trace;

pub use event::{Event, Stage};
pub use export::{prometheus, trace_chrome, trace_jsonl};
pub use histogram::LatencyHistogram;
pub use metric::{
    Counter, Gauge, HistogramMetric, HistogramSummary, Metric, MetricSample, MetricValue,
    MetricsSnapshot, Registry, StageProfile,
};
pub use trace::{RunTrace, TaskTrace, TaskTracer, TraceConfig, TraceSink};
