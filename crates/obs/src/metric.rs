//! The metrics registry: counters, gauges and histograms unified behind
//! one [`Metric`] trait, snapshotted into an ordered, exportable
//! [`MetricsSnapshot`].
//!
//! Instruments are cheap shared handles (`Arc`): the owner registers
//! them once and hands clones to whatever records into them. A snapshot
//! walks the registry in registration order, so two snapshots of the
//! same registry state always produce the same sample order — a
//! prerequisite for byte-deterministic Prometheus output.

use crate::event::Stage;
use crate::histogram::LatencyHistogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Snapshot value of one metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time signed value.
    Gauge(i64),
    /// Latency distribution summary.
    Histogram(HistogramSummary),
}

/// Fixed-quantile summary of a [`LatencyHistogram`], with every field an
/// integer so exporters stay byte-deterministic.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u128,
    /// Median estimate in nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile estimate in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile estimate in nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded sample in nanoseconds.
    pub max_ns: u64,
}

impl From<&LatencyHistogram> for HistogramSummary {
    fn from(h: &LatencyHistogram) -> Self {
        Self {
            count: h.count(),
            sum_ns: h.sum_nanos(),
            p50_ns: h.quantile(0.5).as_nanos() as u64,
            p90_ns: h.quantile(0.9).as_nanos() as u64,
            p99_ns: h.quantile(0.99).as_nanos() as u64,
            max_ns: h.max().as_nanos() as u64,
        }
    }
}

/// One named, labelled sample in a snapshot.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// One-line human description, emitted as `# HELP`.
    pub help: String,
    /// Label pairs, e.g. `[("comp", "joiner"), ("task", "0")]`.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// An ordered collection of samples. Samples sharing a name must be
/// pushed adjacently (the Prometheus exposition format requires one
/// contiguous group per metric name).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Samples in push order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter sample.
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(MetricSample {
            name: name.into(),
            help: help.into(),
            labels: own_labels(labels),
            value: MetricValue::Counter(value),
        });
    }

    /// Appends a gauge sample.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.samples.push(MetricSample {
            name: name.into(),
            help: help.into(),
            labels: own_labels(labels),
            value: MetricValue::Gauge(value),
        });
    }

    /// Appends a histogram sample summarized from `h`.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &LatencyHistogram,
    ) {
        self.samples.push(MetricSample {
            name: name.into(),
            help: help.into(),
            labels: own_labels(labels),
            value: MetricValue::Histogram(HistogramSummary::from(h)),
        });
    }

    /// Distinct metric names, in first-appearance order.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.samples {
            if names.last() != Some(&s.name.as_str()) && !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).into(), (*v).into()))
        .collect()
}

/// A named instrument that can report its current value into a snapshot.
pub trait Metric: Send + Sync {
    /// Snapshot-stable metric name.
    fn name(&self) -> &str;
    /// One-line human description.
    fn help(&self) -> &str;
    /// The current value.
    fn value(&self) -> MetricValue;
}

/// Lock-free monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    help: String,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new(name: impl Into<String>, help: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Metric for Counter {
    fn name(&self) -> &str {
        &self.name
    }
    fn help(&self) -> &str {
        &self.help
    }
    fn value(&self) -> MetricValue {
        MetricValue::Counter(self.get())
    }
}

/// Lock-free point-in-time gauge.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    help: String,
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new(name: impl Into<String>, help: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Metric for Gauge {
    fn name(&self) -> &str {
        &self.name
    }
    fn help(&self) -> &str {
        &self.help
    }
    fn value(&self) -> MetricValue {
        MetricValue::Gauge(self.get())
    }
}

/// Shared histogram instrument. Recording takes a short mutex — use
/// task-local [`LatencyHistogram`]s merged at completion for hot paths,
/// and this handle where cross-thread sharing is the point.
#[derive(Debug)]
pub struct HistogramMetric {
    name: String,
    help: String,
    inner: Mutex<LatencyHistogram>,
}

impl HistogramMetric {
    /// An empty shared histogram.
    pub fn new(name: impl Into<String>, help: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            inner: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let mut h = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        h.record(latency);
    }

    /// Merges a task-local histogram in.
    pub fn merge(&self, other: &LatencyHistogram) {
        let mut h = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        h.merge(other);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Metric for HistogramMetric {
    fn name(&self) -> &str {
        &self.name
    }
    fn help(&self) -> &str {
        &self.help
    }
    fn value(&self) -> MetricValue {
        MetricValue::Histogram(HistogramSummary::from(&self.snapshot()))
    }
}

/// A registry of instruments, snapshotted in registration order.
#[derive(Default)]
pub struct Registry {
    metrics: Vec<Arc<dyn Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an existing instrument handle.
    pub fn register(&mut self, metric: Arc<dyn Metric>) {
        self.metrics.push(metric);
    }

    /// Creates and registers a counter, returning the recording handle.
    pub fn counter(&mut self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new(name, help));
        self.register(c.clone());
        c
    }

    /// Creates and registers a gauge, returning the recording handle.
    pub fn gauge(&mut self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new(name, help));
        self.register(g.clone());
        g
    }

    /// Creates and registers a shared histogram, returning the handle.
    pub fn histogram(&mut self, name: &str, help: &str) -> Arc<HistogramMetric> {
        let h = Arc::new(HistogramMetric::new(name, help));
        self.register(h.clone());
        h
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no instruments are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Samples every instrument, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for m in &self.metrics {
            snap.samples.push(MetricSample {
                name: m.name().into(),
                help: m.help().into(),
                labels: Vec::new(),
                value: m.value(),
            });
        }
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.len())
            .finish()
    }
}

/// Per-stage latency histograms for the join pipeline: one
/// [`LatencyHistogram`] slot per [`Stage`], recorded task-locally and
/// merged across tasks at run completion.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    hists: [LatencyHistogram; 11],
}

impl StageProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample for `stage`.
    #[inline]
    pub fn record(&mut self, stage: Stage, latency: Duration) {
        self.hists[stage as usize].record(latency);
    }

    /// The histogram for one stage.
    pub fn get(&self, stage: Stage) -> &LatencyHistogram {
        &self.hists[stage as usize]
    }

    /// Merges another profile in, stage by stage.
    pub fn merge(&mut self, other: &StageProfile) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Stages that recorded at least one sample, in [`Stage::ALL`] order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> {
        Stage::ALL
            .iter()
            .map(move |&s| (s, &self.hists[s as usize]))
            .filter(|(_, h)| !h.is_empty())
    }

    /// Whether no stage recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(|h| h.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new("hits_total", "hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(matches!(c.value(), MetricValue::Counter(5)));
        let g = Gauge::new("depth", "queue depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert!(matches!(g.value(), MetricValue::Gauge(5)));
    }

    #[test]
    fn registry_snapshots_in_registration_order() {
        let mut r = Registry::new();
        let c = r.counter("b_total", "second alphabetically, first registered");
        let _g = r.gauge("a_depth", "first alphabetically");
        let h = r.histogram("lat_ns", "latency");
        c.add(3);
        h.record(Duration::from_nanos(100));
        let snap = r.snapshot();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["b_total", "a_depth", "lat_ns"]);
        match &snap.samples[2].value {
            MetricValue::Histogram(s) => assert_eq!(s.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn histogram_metric_merges_task_locals() {
        let shared = HistogramMetric::new("x_ns", "x");
        let mut local = LatencyHistogram::new();
        local.record(Duration::from_nanos(50));
        local.record(Duration::from_nanos(60));
        shared.merge(&local);
        shared.record(Duration::from_nanos(70));
        assert_eq!(shared.snapshot().count(), 3);
    }

    #[test]
    fn stage_profile_records_and_merges() {
        let mut a = StageProfile::new();
        assert!(a.is_empty());
        a.record(Stage::Verify, Duration::from_nanos(100));
        a.record(Stage::Index, Duration::from_nanos(10));
        let mut b = StageProfile::new();
        b.record(Stage::Verify, Duration::from_nanos(200));
        a.merge(&b);
        assert_eq!(a.get(Stage::Verify).count(), 2);
        assert_eq!(a.get(Stage::Index).count(), 1);
        assert_eq!(a.get(Stage::Emit).count(), 0);
        let stages: Vec<Stage> = a.stages().map(|(s, _)| s).collect();
        assert_eq!(stages, vec![Stage::Index, Stage::Verify]);
    }

    #[test]
    fn snapshot_names_dedup_in_first_appearance_order() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("m_total", "m", &[("task", "0")], 1);
        snap.push_counter("m_total", "m", &[("task", "1")], 2);
        snap.push_gauge("g", "g", &[], 3);
        assert_eq!(snap.names(), vec!["m_total", "g"]);
    }
}
