//! A log-bucket latency histogram (relocated here from
//! `stormlite::metrics` so that crates below the engine — notably the
//! local join algorithms — can time stages without depending on it;
//! stormlite re-exports it for compatibility).
//!
//! Nothing in this module reads the wall clock. Every duration recorded
//! here is measured by the caller through its scheduler clock, so under
//! deterministic simulation all reported latencies are virtual-time
//! readings: deterministic and seed-reproducible.

use std::time::Duration;

/// A latency histogram with logarithmic (power-of-two nanosecond) buckets:
/// constant memory, O(1) record, ~2× relative quantile error — plenty for
/// throughput/latency reporting without external dependencies.
///
/// All arithmetic saturates: merging many per-task histograms (or very
/// long-running ones) can never overflow into a panic or a wrapped count.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(u128::from(ns));
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total of all recorded samples, in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_ns
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Approximate quantile: the upper edge of the bucket containing the
    /// q-th sample. `q` is clamped into `[0, 1]` rather than asserted, so
    /// exporters that compute quantile positions in floating point (and
    /// pick up rounding error like `1.0000000000000002`) never panic.
    /// Returns zero when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let q = q.clamp(0.0, 1.0);
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Duration::from_nanos(1u64 << (b + 1).min(63));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one. Saturating: merging
    /// histograms whose combined counts would exceed `u64::MAX` (e.g. a
    /// cross-task fold over many long-running tasks) clamps at the
    /// maximum instead of wrapping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(200));
        h.record(Duration::from_micros(10));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Duration::from_micros(10));
        assert!(h.mean() >= Duration::from_nanos(100));
        assert!(!h.is_empty());
        assert_eq!(h.sum_nanos(), 100 + 200 + 10_000);
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 1000));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        // Log buckets: within 2x of the true values.
        assert!(p50 >= Duration::from_nanos(500_000 / 2));
        assert!(p99 <= Duration::from_nanos(4 * 990_000));
    }

    #[test]
    fn histogram_bucket_edge_at_one_nanosecond() {
        // 1 ns lands in bucket 0 ([1, 2) ns): the quantile estimate is the
        // bucket's upper edge, 2 ns — exactly the documented 2× bound.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(2));
        assert_eq!(h.max(), Duration::from_nanos(1));
        // 0 ns is clamped into bucket 0 rather than shifting out of range.
        let mut z = LatencyHistogram::new();
        z.record(Duration::ZERO);
        assert_eq!(z.quantile(1.0), Duration::from_nanos(2));
    }

    #[test]
    fn histogram_bucket_edges_at_powers_of_two() {
        // A sample of exactly 2^k sits at the lower edge of bucket k, so
        // the estimate 2^(k+1) is exactly 2× — the worst case the bound
        // promises. One below (2^k - 1) stays in bucket k-1.
        for k in 1..62u32 {
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(1u64 << k));
            assert_eq!(
                h.quantile(1.0),
                Duration::from_nanos(1u64 << (k + 1)),
                "2^{k} must report its bucket's upper edge"
            );
            let mut low = LatencyHistogram::new();
            low.record(Duration::from_nanos((1u64 << k) - 1));
            assert_eq!(
                low.quantile(1.0),
                Duration::from_nanos(1u64 << k),
                "2^{k} - 1 must stay in the bucket below"
            );
        }
    }

    #[test]
    fn histogram_bucket_edge_at_u64_max() {
        // u64::MAX ns lands in the top bucket (63), whose reported edge is
        // clamped to 2^63 ns so the estimate stays representable; the
        // estimate errs *low* here but still within the 2× bound
        // (u64::MAX / 2^63 < 2).
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(1u64 << 63));
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        assert!(u64::MAX as f64 / (1u64 << 63) as f64 <= 2.0);
    }

    #[test]
    fn histogram_quantile_error_is_within_2x() {
        // The documented guarantee: for any sample set and any quantile,
        // estimate / true ∈ [1, 2] (buckets below the clamp). Exercise a
        // mix of scales, including exact powers of two.
        let samples: Vec<u64> = (0..2000u64)
            .map(|i| (i % 60).pow(2) * 37 + i + 1)
            .chain((0..10).map(|k| 1u64 << (k * 5)))
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.quantile(q).as_nanos() as u64;
            assert!(
                est >= truth && est <= truth.saturating_mul(2),
                "q={q}: estimate {est} outside [{truth}, {}]",
                truth.saturating_mul(2)
            );
        }
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn empty_histogram_quantiles_at_every_edge() {
        // Unifying the histogram behind the metrics registry means
        // exporters call quantile() on histograms that never saw a sample
        // (e.g. barrier_stall without checkpointing). Every quantile —
        // including the edges and out-of-range inputs — must be zero, not
        // a panic.
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        for q in [-1.0, 0.0, 0.25, 0.5, 1.0, 2.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
        assert_eq!(h.sum_nanos(), 0);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantile_clamps_out_of_range_inputs() {
        // Exporters compute quantile positions in floating point; rounding
        // error can push q marginally outside [0, 1]. Clamp, don't panic.
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(Duration::from_nanos(i));
        }
        assert_eq!(h.quantile(1.0 + 1e-9), h.quantile(1.0));
        assert_eq!(h.quantile(-1e-9), h.quantile(0.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn cross_task_merge_preserves_stats_and_empties_are_identity() {
        // Merging per-task histograms must behave exactly like recording
        // every sample into one histogram, and merging an empty histogram
        // in either direction must change nothing.
        let mut combined = LatencyHistogram::new();
        let mut parts = vec![LatencyHistogram::new(); 3];
        for i in 1..=300u64 {
            let d = Duration::from_nanos(i * 17);
            combined.record(d);
            parts[(i % 3) as usize].record(d);
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&LatencyHistogram::new()); // empty into empty
        for p in &parts {
            merged.merge(p);
        }
        merged.merge(&LatencyHistogram::new()); // empty into full: identity
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.sum_nanos(), combined.sum_nanos());
        assert_eq!(merged.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), combined.quantile(q));
        }
        let mut empty = LatencyHistogram::new();
        empty.merge(&combined); // full into empty: adopts everything
        assert_eq!(empty.count(), combined.count());
        assert_eq!(empty.max(), combined.max());
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        // A cross-task fold over pathological counts must clamp at
        // u64::MAX / u128::MAX, never wrap (wrapping would make count()
        // tiny and quantiles nonsense, or panic in debug builds).
        let mut a = LatencyHistogram::new();
        a.buckets[10] = u64::MAX - 1;
        a.count = u64::MAX - 1;
        a.sum_ns = u128::MAX - 1;
        a.max_ns = 1 << 11;
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_nanos(1500)); // bucket 10 as well
        b.record(Duration::from_nanos(2000));
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.buckets[10], u64::MAX);
        assert_eq!(a.sum_nanos(), u128::MAX);
        // Quantiles still answer without panicking.
        assert!(a.quantile(0.5) >= Duration::from_nanos(1));
        // record() on a saturated histogram also stays clamped.
        a.record(Duration::from_nanos(1500));
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_nanos(1_000_000));
    }
}
