//! Per-task event rings and deterministic trace collection.
//!
//! Each task owns exactly one [`TaskTracer`] — a single-writer bounded
//! ring of [`Event`]s with no locking on the record path. When a task
//! finishes, its ring is frozen into a [`TaskTrace`] and pushed into the
//! shared [`TraceSink`] (one brief mutex acquisition per task per run).
//! [`TraceSink::collect`] then assembles a [`RunTrace`] whose order is
//! deterministic regardless of thread join order: tasks sort by
//! `(component, task)` and the merged event stream stably sorts by
//! timestamp.

use crate::event::Event;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Configuration for trace collection.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Per-task event ring capacity. When the ring is full the oldest
    /// event is evicted and counted in [`TaskTrace::dropped`] — tracing
    /// has bounded memory, never unbounded growth.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 65_536,
        }
    }
}

impl TraceConfig {
    /// A config with the given per-task ring capacity.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Self { ring_capacity }
    }
}

/// Single-writer bounded event ring for one task. Recording is lock-free
/// (the ring is task-private) and allocation-free after the first fill.
#[derive(Debug)]
pub struct TaskTracer {
    comp: String,
    task: usize,
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl TaskTracer {
    /// A tracer for `comp`/`task` holding at most `cap` events
    /// (a zero capacity is bumped to one).
    pub fn new(comp: impl Into<String>, task: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            comp: comp.into(),
            task,
            cap,
            events: VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest when the ring is full.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Freezes the ring into an immutable per-task trace.
    pub fn finish(self) -> TaskTrace {
        TaskTrace {
            comp: self.comp,
            task: self.task,
            events: self.events.into(),
            dropped: self.dropped,
        }
    }
}

/// The completed, immutable event log of one task.
#[derive(Debug, Clone)]
pub struct TaskTrace {
    /// Component name.
    pub comp: String,
    /// Task index within the component.
    pub task: usize,
    /// Events in record order (ring order after any drops).
    pub events: Vec<Event>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

/// Cloneable collection point for finished task traces. One clone is
/// handed to each task's completion path; the driver keeps the original
/// and calls [`TraceSink::collect`] after the run drains.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<Vec<TaskTrace>>>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits one finished task trace.
    pub fn push(&self, trace: TaskTrace) {
        // A poisoned lock just means some task panicked (expected under
        // fault injection); the trace data itself is still sound.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        guard.push(trace);
    }

    /// Drains every deposited trace into a deterministic [`RunTrace`]:
    /// tasks sorted by `(component, task)` no matter the order threads
    /// finished in.
    pub fn collect(&self) -> RunTrace {
        let mut tasks = {
            let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        tasks.sort_by(|x, y| (x.comp.as_str(), x.task).cmp(&(y.comp.as_str(), y.task)));
        RunTrace { tasks }
    }
}

/// A full run's trace: every task's events in deterministic order.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Per-task traces, sorted by `(component, task)`.
    pub tasks: Vec<TaskTrace>,
}

impl RunTrace {
    /// All events merged across tasks: concatenated in `(component,
    /// task)` order, then stably sorted by timestamp — so ties keep a
    /// fixed task order and the result is byte-reproducible.
    pub fn merged(&self) -> Vec<(&str, usize, Event)> {
        let mut all: Vec<(&str, usize, Event)> = Vec::with_capacity(self.len());
        for t in &self.tasks {
            for &ev in &t.events {
                all.push((t.comp.as_str(), t.task, ev));
            }
        }
        all.sort_by_key(|(_, _, ev)| ev.ts);
        all
    }

    /// Total events across all tasks.
    pub fn len(&self) -> usize {
        self.tasks.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no task recorded any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted from full rings across all tasks.
    pub fn dropped(&self) -> u64 {
        self.tasks.iter().map(|t| t.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut tr = TaskTracer::new("joiner", 1, 3);
        for i in 0..5u64 {
            tr.record(Event::instant(i, Stage::Index, i, 0));
        }
        assert_eq!(tr.len(), 3);
        let t = tr.finish();
        assert_eq!(t.dropped, 2);
        let ids: Vec<u64> = t.events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let mut tr = TaskTracer::new("x", 0, 0);
        tr.record(Event::instant(1, Stage::Emit, 0, 0));
        tr.record(Event::instant(2, Stage::Emit, 0, 0));
        let t = tr.finish();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.dropped, 1);
    }

    #[test]
    fn collect_orders_tasks_deterministically() {
        let sink = TraceSink::new();
        // Push in scrambled "join order".
        for (comp, task, ts) in [("sink", 0, 30u64), ("joiner", 1, 20), ("joiner", 0, 10)] {
            let mut tr = TaskTracer::new(comp, task, 8);
            tr.record(Event::instant(ts, Stage::Execute, 0, 0));
            sink.push(tr.finish());
        }
        let run = sink.collect();
        let order: Vec<(&str, usize)> = run
            .tasks
            .iter()
            .map(|t| (t.comp.as_str(), t.task))
            .collect();
        assert_eq!(order, vec![("joiner", 0), ("joiner", 1), ("sink", 0)]);
        let merged = run.merged();
        let ts: Vec<u64> = merged.iter().map(|(_, _, e)| e.ts).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(run.len(), 3);
        assert_eq!(run.dropped(), 0);
    }

    #[test]
    fn merged_breaks_timestamp_ties_by_task_order() {
        let sink = TraceSink::new();
        for task in [1usize, 0] {
            let mut tr = TaskTracer::new("w", task, 8);
            tr.record(Event::instant(5, Stage::Deliver, task as u64, 0));
            sink.push(tr.finish());
        }
        let run = sink.collect();
        let merged = run.merged();
        // Same ts: stable sort keeps (comp, task) order, not push order.
        assert_eq!(merged[0].1, 0);
        assert_eq!(merged[1].1, 1);
    }
}
