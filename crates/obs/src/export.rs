//! Byte-deterministic exporters: JSONL trace, Prometheus text
//! exposition, and chrome://tracing JSON.
//!
//! Every number is formatted from integers — nanoseconds directly, and
//! chrome's microsecond fields as `ns/1000 "." ns%1000` — so identical
//! inputs render to identical bytes on every platform. No `f64` is ever
//! formatted, which is what lets simulated-run traces be golden-diffed.

use crate::metric::{MetricValue, MetricsSnapshot};
use crate::trace::RunTrace;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds rendered as a chrome://tracing microsecond value
/// (`123456` ns → `123.456`), formatted purely from integers.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders a run trace as JSONL: one event per line in merged
/// (timestamp, then task) order, with a fixed key order —
/// `ts, comp, task, span, dur, a, b` — and integer values only.
///
/// ```text
/// {"ts":12000,"comp":"joiner","task":1,"span":"verify","dur":0,"a":17,"b":2}
/// ```
pub fn trace_jsonl(trace: &RunTrace) -> String {
    let mut out = String::new();
    for (comp, task, ev) in trace.merged() {
        let _ = writeln!(
            out,
            "{{\"ts\":{},\"comp\":\"{}\",\"task\":{},\"span\":\"{}\",\"dur\":{},\"a\":{},\"b\":{}}}",
            ev.ts,
            json_escape(comp),
            task,
            ev.stage.name(),
            ev.dur,
            ev.a,
            ev.b
        );
    }
    out
}

/// Renders a run trace as a chrome://tracing JSON array (load it in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) for a
/// flamegraph view). Each task becomes one "thread" (`tid` = its rank in
/// the deterministic task order), named via `thread_name` metadata
/// events; spans use phase `"X"` and instants phase `"i"`.
pub fn trace_chrome(trace: &RunTrace) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    // tid assignment follows the deterministic (comp, task) order.
    for (tid, t) in trace.tasks.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}/{}\"}}}}",
            tid,
            json_escape(&t.comp),
            t.task
        );
    }
    for (tid, t) in trace.tasks.iter().enumerate() {
        for ev in &t.events {
            sep(&mut out);
            if ev.dur == 0 {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"dssj\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.stage.name(),
                    tid,
                    micros(ev.ts),
                    ev.a,
                    ev.b
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"dssj\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.stage.name(),
                    tid,
                    micros(ev.ts),
                    micros(ev.dur),
                    ev.a,
                    ev.b
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges emit one line per sample;
/// histograms emit a summary — `quantile="0.5|0.9|0.99|1"` lines plus
/// `_sum` (nanoseconds) and `_count`. Samples sharing a name must be
/// adjacent in the snapshot (see
/// [`MetricsSnapshot`]); the `# HELP`/`# TYPE` header
/// is emitted once per group.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last: Option<&str> = None;
    for s in &snap.samples {
        if last != Some(s.name.as_str()) {
            let kind = match s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
            let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            last = Some(s.name.as_str());
        }
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [
                    ("0.5", h.p50_ns),
                    ("0.9", h.p90_ns),
                    ("0.99", h.p99_ns),
                    ("1", h.max_ns),
                ] {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        s.name,
                        label_block(&s.labels, Some(("quantile", q))),
                        v
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum_ns
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stage};
    use crate::histogram::LatencyHistogram;
    use crate::trace::{TaskTracer, TraceSink};
    use std::time::Duration;

    fn sample_trace() -> RunTrace {
        let sink = TraceSink::new();
        let mut a = TaskTracer::new("joiner", 0, 16);
        a.record(Event::instant(1000, Stage::Index, 7, 3));
        a.record(Event::span(2000, Stage::Verify, 500, 7, 2));
        let mut b = TaskTracer::new("sink", 0, 16);
        b.record(Event::instant(1500, Stage::Emit, 1, 2));
        sink.push(a.finish());
        sink.push(b.finish());
        sink.collect()
    }

    #[test]
    fn jsonl_is_stable_and_merged_by_timestamp() {
        let t = sample_trace();
        let text = trace_jsonl(&t);
        let expected = concat!(
            "{\"ts\":1000,\"comp\":\"joiner\",\"task\":0,\"span\":\"index\",\"dur\":0,\"a\":7,\"b\":3}\n",
            "{\"ts\":1500,\"comp\":\"sink\",\"task\":0,\"span\":\"emit\",\"dur\":0,\"a\":1,\"b\":2}\n",
            "{\"ts\":2000,\"comp\":\"joiner\",\"task\":0,\"span\":\"verify\",\"dur\":500,\"a\":7,\"b\":2}\n",
        );
        assert_eq!(text, expected);
        // Re-export is byte-identical.
        assert_eq!(trace_jsonl(&t), text);
    }

    #[test]
    fn chrome_export_is_valid_shape_and_integer_formatted() {
        let t = sample_trace();
        let text = trace_chrome(&t);
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"joiner/0\""));
        // 2000 ns → 2.000 µs; 500 ns dur → 0.500 µs.
        assert!(text.contains("\"ts\":2.000,\"dur\":0.500"));
        assert!(text.contains("\"ph\":\"i\""));
        assert_eq!(trace_chrome(&t), text);
    }

    #[test]
    fn micros_formats_from_integers() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1000), "1.000");
        assert_eq!(micros(123_456_789), "123456.789");
    }

    #[test]
    fn prometheus_renders_all_value_kinds() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter(
            "dssj_msgs_in_total",
            "tuples received",
            &[("comp", "joiner"), ("task", "0")],
            42,
        );
        snap.push_counter(
            "dssj_msgs_in_total",
            "tuples received",
            &[("comp", "joiner"), ("task", "1")],
            43,
        );
        snap.push_gauge("dssj_run_elapsed_ns", "run duration", &[], 9);
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        snap.push_histogram("dssj_queue_wait_ns", "queue wait", &[("comp", "sink")], &h);
        let text = prometheus(&snap);
        assert!(text.contains("# TYPE dssj_msgs_in_total counter"));
        // One header per group, two samples.
        assert_eq!(text.matches("# TYPE dssj_msgs_in_total").count(), 1);
        assert!(text.contains("dssj_msgs_in_total{comp=\"joiner\",task=\"0\"} 42"));
        assert!(text.contains("dssj_msgs_in_total{comp=\"joiner\",task=\"1\"} 43"));
        assert!(text.contains("# TYPE dssj_run_elapsed_ns gauge"));
        assert!(text.contains("dssj_run_elapsed_ns 9"));
        assert!(text.contains("# TYPE dssj_queue_wait_ns summary"));
        assert!(text.contains("dssj_queue_wait_ns{comp=\"sink\",quantile=\"0.5\"} 128"));
        assert!(text.contains("dssj_queue_wait_ns_sum{comp=\"sink\"} 100"));
        assert!(text.contains("dssj_queue_wait_ns_count{comp=\"sink\"} 1"));
        // Every non-comment line is `name{...} <integer>` shaped.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("value separator");
            assert!(
                value.chars().all(|c| c.is_ascii_digit() || c == '-'),
                "non-integer value in line: {line}"
            );
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(label_escape("x\"y\\z\n"), "x\\\"y\\\\z\\n");
    }
}
