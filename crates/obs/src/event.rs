//! The structured trace event model.
//!
//! An [`Event`] is a fixed-size, allocation-free record of one pipeline
//! action: where it happened in the pipeline ([`Stage`]), when
//! (nanoseconds on the topology clock), how long (`dur`, zero for
//! instant events), and two stage-specific integer operands. The
//! component name and task index are *not* stored per event — they are
//! attached once at the ring level (see
//! [`TaskTrace`](crate::TaskTrace)), keeping the hot-path record a
//! 40-byte copy.
//!
//! Stage-specific operand meanings (`a`, `b`):
//!
//! | stage      | `a`              | `b`                     |
//! |------------|------------------|-------------------------|
//! | dispatch   | record ordinal   | —                       |
//! | route      | record id        | fan-out (targets)       |
//! | deliver    | link id          | sequence number         |
//! | retry      | sequence number  | retry count             |
//! | execute    | tuples drained   | —                       |
//! | index      | record id        | index size after insert |
//! | verify     | record id        | results produced        |
//! | emit       | pair left id     | pair right id           |
//! | barrier    | epoch            | stall (ns)              |
//! | checkpoint | epoch            | snapshot bytes          |
//! | shed       | record id        | queue depth             |

/// The pipeline stage a trace event belongs to.
///
/// The discriminant order is fixed: it is the slot order of
/// [`StageProfile`](crate::StageProfile) and the iteration order of
/// [`Stage::ALL`], so exporters and goldens never reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// A spout handed one record to the topology.
    Dispatch,
    /// A dispatcher routing decision: one record mapped to its target
    /// joiner task(s).
    Route,
    /// A packet was placed on a wire toward its destination task
    /// (including fault-injected duplicates).
    Deliver,
    /// A reliable-delivery retransmission of an unacked packet.
    Retry,
    /// One bolt `execute` invocation (drain of deliverable tuples).
    Execute,
    /// A record was inserted into a joiner's local inverted index.
    Index,
    /// Candidate probing plus similarity verification for one record.
    Verify,
    /// A verified result pair reached the sink.
    Emit,
    /// Barrier alignment at a checkpointing task.
    Barrier,
    /// A checkpoint snapshot was captured and published.
    Checkpoint,
    /// A record was shed by the overload policy.
    Shed,
}

impl Stage {
    /// Every stage in discriminant order.
    pub const ALL: [Stage; 11] = [
        Stage::Dispatch,
        Stage::Route,
        Stage::Deliver,
        Stage::Retry,
        Stage::Execute,
        Stage::Index,
        Stage::Verify,
        Stage::Emit,
        Stage::Barrier,
        Stage::Checkpoint,
        Stage::Shed,
    ];

    /// Stable lowercase name used by every exporter (and therefore baked
    /// into trace goldens — do not rename).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Dispatch => "dispatch",
            Stage::Route => "route",
            Stage::Deliver => "deliver",
            Stage::Retry => "retry",
            Stage::Execute => "execute",
            Stage::Index => "index",
            Stage::Verify => "verify",
            Stage::Emit => "emit",
            Stage::Barrier => "barrier",
            Stage::Checkpoint => "checkpoint",
            Stage::Shed => "shed",
        }
    }
}

/// One trace event: a fixed-size record of a pipeline action.
///
/// `dur == 0` marks an instant event (a point in time); a nonzero `dur`
/// marks a span starting at `ts`. Under the simulation scheduler the
/// clock is frozen within a single execute step, so intra-step spans
/// deterministically report `dur == 0`; threaded runs report real wall
/// durations through the same field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since run start, read from the topology clock.
    pub ts: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Span duration in nanoseconds; `0` for instant events.
    pub dur: u64,
    /// First stage-specific operand (see the module-level table).
    pub a: u64,
    /// Second stage-specific operand.
    pub b: u64,
}

impl Event {
    /// An instant (zero-duration) event.
    #[inline]
    pub fn instant(ts: u64, stage: Stage, a: u64, b: u64) -> Self {
        Event {
            ts,
            stage,
            dur: 0,
            a,
            b,
        }
    }

    /// A span event covering `[ts, ts + dur)`.
    #[inline]
    pub fn span(ts: u64, stage: Stage, dur: u64, a: u64, b: u64) -> Self {
        Event {
            ts,
            stage,
            dur,
            a,
            b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_in_discriminant_order_and_names_are_unique() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn constructors() {
        let e = Event::instant(5, Stage::Shed, 1, 2);
        assert_eq!(e.dur, 0);
        let s = Event::span(5, Stage::Verify, 10, 1, 2);
        assert_eq!(s.dur, 10);
        assert_eq!(s.stage.name(), "verify");
    }
}
