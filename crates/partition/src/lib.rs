//! Length partitioning for the length-based distribution framework.
//!
//! The length-based scheme assigns each joiner a contiguous range of record
//! lengths. *Which* boundaries are chosen decides load balance: record
//! lengths are heavily skewed, and the join cost landing on a joiner
//! depends not only on how many records it indexes but on how many probes
//! target its length range and how expensive each is.
//!
//! * [`histogram`] — length histograms collected from samples or online;
//! * [`cost`] — the per-indexed-length cost mass `H(ℓ)` derived from a
//!   histogram and a threshold (the quantity the paper's load-aware
//!   partition balances);
//! * [`partitioner`] — equal-width and equal-depth baselines plus the
//!   load-aware partitioner (exact minimax DP and a faster
//!   binary-search/greedy variant);
//! * [`epoch`] — online repartitioning under drift: versioned plans whose
//!   old versions stay probe-visible until every record they routed has
//!   left the window.

#![warn(missing_docs)]

pub mod cost;
pub mod epoch;
pub mod histogram;
pub mod partitioner;

pub use cost::CostModel;
pub use epoch::{EpochConfig, EpochedPartitioner};
pub use histogram::LengthHistogram;
pub use partitioner::{
    equal_depth, equal_width, imbalance, load_aware, load_aware_greedy, LengthPartition,
};
