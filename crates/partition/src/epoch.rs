//! Online repartitioning under drift.
//!
//! A length partition computed from a calibration sample goes stale when
//! the stream's length distribution drifts. The epoched partitioner
//! maintains *versioned plans*:
//!
//! * new records are always indexed under the **newest** plan;
//! * probes target the union of the matching ranges of **every active**
//!   plan, because older records were routed under older plans;
//! * an old plan is retired once every record it routed has left the
//!   sliding window — at which point probing reverts to a single plan and
//!   the transition is complete.
//!
//! With an unbounded window old plans never expire (their records remain
//! joinable forever); the partitioner still works but keeps all plans, so
//! repartitioning is only *useful* with a bounded window.

use crate::cost::CostModel;
use crate::histogram::LengthHistogram;
use crate::partitioner::{load_aware, LengthPartition};
use ssj_core::{Threshold, Window};
use ssj_text::Record;
use std::collections::VecDeque;

/// Drift-detection and installation policy.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Records between drift checks.
    pub check_every: u64,
    /// Install a new plan when the current plan's max load exceeds the
    /// optimal plan's max load by this factor (on the fresh histogram).
    pub rebalance_factor: f64,
    /// Maximum concurrently active plans; installation is deferred while at
    /// the cap (correctness requires every plan with live records to stay
    /// probe-visible).
    pub max_plans: usize,
}

impl Default for EpochConfig {
    fn default() -> Self {
        Self {
            check_every: 10_000,
            rebalance_factor: 1.3,
            max_plans: 4,
        }
    }
}

#[derive(Debug)]
struct Plan {
    partition: LengthPartition,
    version: u32,
    /// Set when a newer plan replaced this one: (id, ts) of the switch
    /// point. Records routed under this plan all have smaller ids.
    superseded: Option<(u64, u64)>,
}

/// A versioned, drift-reactive length partitioner.
#[derive(Debug)]
pub struct EpochedPartitioner {
    threshold: Threshold,
    window: Window,
    k: usize,
    cfg: EpochConfig,
    plans: VecDeque<Plan>,
    hist: LengthHistogram,
    seen_since_check: u64,
    versions_installed: u32,
}

impl EpochedPartitioner {
    /// Starts with an initial plan (e.g. from a calibration sample).
    pub fn new(
        threshold: Threshold,
        window: Window,
        initial: LengthPartition,
        cfg: EpochConfig,
    ) -> Self {
        assert!(cfg.check_every > 0, "check_every must be positive");
        assert!(cfg.rebalance_factor >= 1.0, "rebalance_factor must be >= 1");
        assert!(cfg.max_plans >= 1, "need room for at least one plan");
        let k = initial.k();
        let mut plans = VecDeque::new();
        plans.push_back(Plan {
            partition: initial,
            version: 0,
            superseded: None,
        });
        Self {
            threshold,
            window,
            k,
            cfg,
            plans,
            hist: LengthHistogram::new(),
            seen_since_check: 0,
            versions_installed: 1,
        }
    }

    /// Number of joiners the plans route to.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The currently newest plan's version.
    pub fn current_version(&self) -> u32 {
        self.plans.back().expect("always one plan").version
    }

    /// Number of plans still probe-visible.
    pub fn active_plans(&self) -> usize {
        self.plans.len()
    }

    /// The newest plan (used for index routing).
    pub fn current_partition(&self) -> &LengthPartition {
        &self.plans.back().expect("always one plan").partition
    }

    /// Joiner that must index a record of length `len`.
    pub fn index_partition(&self, len: usize) -> usize {
        self.current_partition().partition_of(len)
    }

    /// Sorted, deduplicated joiners a record of length `len` must probe —
    /// the union over every active plan of the partitions intersecting the
    /// length-filter interval.
    pub fn probe_partitions(&self, len: usize) -> Vec<usize> {
        let lo = self.threshold.min_len(len);
        let hi = self.threshold.max_len(len);
        let mut targets = vec![false; self.k];
        for plan in &self.plans {
            let (a, b) = plan.partition.probe_targets(lo, hi);
            for t in targets.iter_mut().take(b + 1).skip(a) {
                *t = true;
            }
        }
        targets
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| t.then_some(i))
            .collect()
    }

    /// Feeds one arriving record: updates the drift histogram, retires
    /// expired plans, and possibly installs a new plan. Returns the new
    /// version when one was installed.
    pub fn observe(&mut self, record: &Record) -> Option<u32> {
        let (id, ts) = (record.id().0, record.timestamp());
        self.retire_expired(id, ts);
        self.hist.add(record.len());
        self.seen_since_check += 1;
        if self.seen_since_check < self.cfg.check_every {
            return None;
        }
        self.seen_since_check = 0;
        let installed = self.maybe_install(id, ts);
        self.hist.clear();
        installed
    }

    fn retire_expired(&mut self, now_id: u64, now_ts: u64) {
        while self.plans.len() > 1 {
            let front = self.plans.front().expect("non-empty");
            let Some((sup_id, sup_ts)) = front.superseded else {
                break;
            };
            // Every record routed under this plan has id < sup_id and
            // ts <= sup_ts; the newest such possible record is
            // (sup_id - 1, sup_ts).
            if self
                .window
                .expired(sup_id.saturating_sub(1), sup_ts, now_id, now_ts)
            {
                self.plans.pop_front();
            } else {
                break;
            }
        }
    }

    fn maybe_install(&mut self, now_id: u64, now_ts: u64) -> Option<u32> {
        if self.plans.len() >= self.cfg.max_plans || self.hist.is_empty() {
            return None;
        }
        let cost = CostModel::build(&self.hist, self.threshold, self.hist.max_len());
        if cost.total() <= 0.0 {
            return None;
        }
        let optimal = load_aware(&cost, self.k);
        let maxload = |p: &LengthPartition| p.loads(&cost).into_iter().fold(0.0f64, f64::max);
        let current = maxload(self.current_partition());
        let best = maxload(&optimal);
        if best <= 0.0 || current <= self.cfg.rebalance_factor * best {
            return None;
        }
        let version = self.versions_installed;
        self.versions_installed += 1;
        self.plans.back_mut().expect("always one plan").superseded = Some((now_id, now_ts));
        self.plans.push_back(Plan {
            partition: optimal,
            version,
            superseded: None,
        });
        Some(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::equal_width;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, len: usize) -> Record {
        Record::from_sorted(
            RecordId(id),
            id, // ts = id for simplicity
            (0..len as u32).map(TokenId).collect(),
        )
    }

    fn partitioner(window: Window, check_every: u64) -> EpochedPartitioner {
        EpochedPartitioner::new(
            Threshold::jaccard(0.8),
            window,
            equal_width(64, 4),
            EpochConfig {
                check_every,
                rebalance_factor: 1.2,
                max_plans: 4,
            },
        )
    }

    /// Lengths 2..=8 in rotation: under equal_width(64, 4) every record
    /// lands in partition 0, while the optimal plan spreads the seven
    /// lengths across all four — a large, fixable imbalance.
    fn drifted_len(id: u64) -> usize {
        2 + (id as usize % 7)
    }

    #[test]
    fn stable_stream_never_repartitions() {
        // Start from the load-aware optimum of the distribution we then
        // stream: nothing to improve, so no new plan may be installed.
        use crate::cost::CostModel;
        use crate::partitioner::load_aware;
        let mut h = crate::histogram::LengthHistogram::new();
        for id in 0..1000u64 {
            h.add(drifted_len(id));
        }
        let t = Threshold::jaccard(0.8);
        let initial = load_aware(&CostModel::build(&h, t, h.max_len()), 4);
        let mut p = EpochedPartitioner::new(
            t,
            Window::Count(100),
            initial,
            EpochConfig {
                check_every: 50,
                rebalance_factor: 1.2,
                max_plans: 4,
            },
        );
        for id in 0..500u64 {
            assert_eq!(p.observe(&rec(id, drifted_len(id))), None);
        }
        assert_eq!(p.active_plans(), 1);
        assert_eq!(p.current_version(), 0);
    }

    #[test]
    fn skewed_stream_triggers_repartition() {
        let mut p = partitioner(Window::Count(100), 100);
        let mut installed = false;
        for id in 0..300u64 {
            installed |= p.observe(&rec(id, drifted_len(id))).is_some();
        }
        assert!(installed, "drift should trigger a new plan");
        assert!(p.current_version() >= 1);
    }

    #[test]
    fn old_plans_expire_with_window() {
        let mut p = partitioner(Window::Count(50), 100);
        for id in 0..120u64 {
            p.observe(&rec(id, drifted_len(id)));
        }
        assert!(p.active_plans() >= 2, "transition in progress");
        // Keep streaming long enough for the old plan's records to expire.
        for id in 120..600u64 {
            p.observe(&rec(id, drifted_len(id)));
        }
        assert_eq!(p.active_plans(), 1, "old plan retired after window");
    }

    #[test]
    fn probe_targets_cover_all_active_plans() {
        let mut p = partitioner(Window::Count(1000), 100);
        for id in 0..150u64 {
            p.observe(&rec(id, drifted_len(id)));
        }
        assert!(p.active_plans() >= 2);
        // Under the old equal-width plan every short length lives in
        // partition 0; the new plan spreads them. The union must span both.
        let targets = p.probe_partitions(5);
        let new_idx = p.index_partition(5);
        assert!(targets.contains(&new_idx));
        assert!(targets.contains(&0), "old plan's partition stays probed");
        // Sorted and deduplicated.
        assert!(targets.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unbounded_window_keeps_plans() {
        let mut p = partitioner(Window::Unbounded, 100);
        for id in 0..1000u64 {
            p.observe(&rec(id, drifted_len(id)));
        }
        assert!(p.active_plans() >= 2, "plans can never expire");
    }

    #[test]
    fn max_plans_defers_installation() {
        let mut p = EpochedPartitioner::new(
            Threshold::jaccard(0.8),
            Window::Unbounded, // nothing ever expires
            equal_width(64, 4),
            EpochConfig {
                check_every: 50,
                rebalance_factor: 1.0,
                max_plans: 2,
            },
        );
        for id in 0..2000u64 {
            // Alternate drift targets to keep asking for new plans.
            let len = if (id / 200) % 2 == 0 { 3 } else { 60 };
            p.observe(&rec(id, len));
        }
        assert!(p.active_plans() <= 2);
    }
}
