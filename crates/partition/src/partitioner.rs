//! Length-domain partitioners.
//!
//! All partitioners cut the length domain `[1, max]` into `k` contiguous,
//! disjoint, covering ranges — the invariant the length router relies on.
//! They differ in what they balance:
//!
//! * [`equal_width`] — equally many *lengths* per range (ignores data);
//! * [`equal_depth`] — equally many *records* per range (classic
//!   equi-frequency histogram cut);
//! * [`load_aware`] — equal *join cost mass* `H(ℓ)` per range, solved
//!   exactly (minimize the maximum partition load) by dynamic programming;
//! * [`load_aware_greedy`] — the same objective via binary search on the
//!   load budget + greedy sweep; O(L log) instead of O(k·L²), within any
//!   chosen tolerance of optimal.

use crate::cost::CostModel;
use crate::histogram::LengthHistogram;

/// A partition of the record-length domain into contiguous ranges.
///
/// Partition `i` owns lengths `(uppers[i-1], uppers[i]]` (with an implicit
/// lower bound of 1 for partition 0). Lengths above the domain maximum are
/// clamped into the last partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthPartition {
    uppers: Vec<usize>,
}

impl LengthPartition {
    /// Builds a partition from inclusive upper bounds.
    ///
    /// # Panics
    /// Panics unless the bounds are non-empty and strictly increasing, with
    /// the first at least 1.
    pub fn from_uppers(uppers: Vec<usize>) -> Self {
        assert!(!uppers.is_empty(), "partition needs at least one range");
        assert!(uppers[0] >= 1, "first upper bound must be >= 1");
        assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "upper bounds must be strictly increasing"
        );
        Self { uppers }
    }

    /// Number of ranges (= number of joiners).
    pub fn k(&self) -> usize {
        self.uppers.len()
    }

    /// The largest length the partition covers explicitly.
    pub fn domain_max(&self) -> usize {
        *self.uppers.last().expect("non-empty")
    }

    /// The inclusive upper bounds.
    pub fn uppers(&self) -> &[usize] {
        &self.uppers
    }

    /// The partition owning `len` (lengths beyond the domain clamp to the
    /// last partition).
    #[inline]
    pub fn partition_of(&self, len: usize) -> usize {
        match self.uppers.binary_search(&len) {
            Ok(i) => i,
            Err(i) => i.min(self.uppers.len() - 1),
        }
    }

    /// The inclusive `(lo, hi)` length range of partition `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        let lo = if i == 0 { 1 } else { self.uppers[i - 1] + 1 };
        (lo, self.uppers[i])
    }

    /// The inclusive partition-index range whose length ranges intersect
    /// `[lo_len, hi_len]`.
    #[inline]
    pub fn partitions_overlapping(&self, lo_len: usize, hi_len: usize) -> (usize, usize) {
        debug_assert!(lo_len <= hi_len);
        (self.partition_of(lo_len), self.partition_of(hi_len))
    }

    /// The inclusive partition-index range a probe with partner-length
    /// interval `[lo, hi]` must visit (`hi = None` means unbounded).
    ///
    /// Lengths beyond the calibrated domain are *indexed* in the last
    /// partition (they clamp), so any interval reaching past the domain —
    /// including `lo > domain_max` — must include the last partition.
    #[inline]
    pub fn probe_targets(&self, lo: usize, hi: Option<usize>) -> (usize, usize) {
        let dmax = self.domain_max();
        let a = self.partition_of(lo.min(dmax));
        let b = match hi {
            Some(h) if h < dmax => self.partition_of(h),
            _ => self.k() - 1,
        };
        debug_assert!(a <= b, "partner-length interval was empty");
        (a, b)
    }

    /// Load of each partition under a cost model.
    pub fn loads(&self, cost: &CostModel) -> Vec<f64> {
        (0..self.k())
            .map(|i| {
                let (lo, hi) = self.range(i);
                cost.range_load(lo, hi)
            })
            .collect()
    }
}

fn padded_domain(max_len: usize, k: usize) -> usize {
    max_len.max(k).max(1)
}

/// Equal-width cut of `[1, max_len]` into `k` ranges.
pub fn equal_width(max_len: usize, k: usize) -> LengthPartition {
    assert!(k >= 1, "need at least one partition");
    let max = padded_domain(max_len, k);
    let uppers = (1..=k)
        .map(|i| ((i as f64 / k as f64) * max as f64).round() as usize)
        .collect::<Vec<_>>();
    // Rounding can only collide when max < 2k; fix up monotonically.
    let uppers = enforce_strictly_increasing(uppers, max);
    LengthPartition::from_uppers(uppers)
}

/// Equi-frequency cut: each range holds roughly `total/k` records.
pub fn equal_depth(hist: &LengthHistogram, k: usize) -> LengthPartition {
    assert!(k >= 1, "need at least one partition");
    let max = padded_domain(hist.max_len(), k);
    if hist.is_empty() {
        return equal_width(max, k);
    }
    let target = hist.total() as f64 / k as f64;
    let mut uppers = Vec::with_capacity(k);
    let mut cum = 0u64;
    let mut next_cut = target;
    for len in 1..=max {
        cum += hist.count(len);
        if uppers.len() + 1 < k && cum as f64 >= next_cut {
            uppers.push(len);
            next_cut += target;
        }
    }
    // Pad to exactly k bounds (cuts may cluster at the domain end when the
    // mass sits on few lengths); the repair pass redistributes them.
    while uppers.len() < k {
        uppers.push(max);
    }
    let uppers = enforce_strictly_increasing(uppers, max);
    LengthPartition::from_uppers(uppers)
}

/// Exact minimax partition of the cost mass: minimizes the maximum
/// per-range load `Σ H(ℓ)` by dynamic programming in O(k·L²).
pub fn load_aware(cost: &CostModel, k: usize) -> LengthPartition {
    assert!(k >= 1, "need at least one partition");
    let max = padded_domain(cost.max_len(), k);
    if k == 1 {
        return LengthPartition::from_uppers(vec![max]);
    }
    // S(i) = load of lengths 1..=i.
    let s = |i: usize| cost.range_load(1, i);

    // dp[i] for the current number of parts j: minimal max-load covering
    // lengths 1..=i with j parts; cut[j][i] = last split point.
    let n = max;
    let mut dp: Vec<f64> = (0..=n).map(s).collect();
    dp[0] = f64::INFINITY; // one part may not be empty
    let mut cuts: Vec<Vec<u32>> = vec![vec![0; n + 1]];
    for j in 2..=k {
        let mut ndp = vec![f64::INFINITY; n + 1];
        let mut cut = vec![0u32; n + 1];
        for i in j..=n {
            // Split after m: previous j-1 parts cover 1..=m (so m >= j-1),
            // the last part covers m+1..=i — all parts non-empty, which is
            // what keeps the reconstructed bounds strictly increasing. The
            // last-part load decreases in m while dp[m] increases, so a
            // scan with early exit would work; n is small enough that the
            // straightforward scan is fine and obviously correct.
            for (m, &dpm) in dp.iter().enumerate().take(i).skip(j - 1) {
                let last = s(i) - s(m);
                let v = dpm.max(last);
                if v < ndp[i] {
                    ndp[i] = v;
                    cut[i] = m as u32;
                }
            }
        }
        dp = ndp;
        cuts.push(cut);
    }

    // Reconstruct boundaries.
    let mut uppers = vec![0usize; k];
    uppers[k - 1] = n;
    let mut i = n;
    for j in (1..k).rev() {
        let m = cuts[j][i] as usize;
        uppers[j - 1] = m;
        i = m;
    }
    // Zero-load prefixes can make early cuts collide at 0/1; repair while
    // preserving coverage.
    let uppers = enforce_strictly_increasing(uppers, n);
    LengthPartition::from_uppers(uppers)
}

/// Approximate minimax partition: binary search on the load budget with a
/// greedy feasibility sweep. Converges to within `1e-6` of the optimum
/// relative to the total load.
pub fn load_aware_greedy(cost: &CostModel, k: usize) -> LengthPartition {
    assert!(k >= 1, "need at least one partition");
    let max = padded_domain(cost.max_len(), k);
    let total = cost.total();
    if total <= 0.0 || k == 1 {
        return equal_width(max, k);
    }
    let single_max = (1..=max).map(|l| cost.at(l)).fold(0.0f64, f64::max);
    let (mut lo, mut hi) = (single_max.max(total / k as f64), total);
    let feasible = |budget: f64| -> Option<Vec<usize>> {
        let mut uppers = Vec::with_capacity(k);
        let mut part_load = 0.0;
        for len in 1..=max {
            let h = cost.at(len);
            if part_load + h > budget && part_load > 0.0 {
                uppers.push(len - 1);
                part_load = 0.0;
                if uppers.len() == k {
                    return None; // ran out of parts before the domain end
                }
            }
            part_load += h;
            if h > budget {
                return None; // single length exceeds the budget
            }
        }
        uppers.push(max);
        (uppers.len() <= k).then_some(uppers)
    };

    let eps = total * 1e-6;
    while hi - lo > eps {
        let mid = (lo + hi) / 2.0;
        if feasible(mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut uppers = feasible(hi).expect("hi is feasible by construction");
    // Pad to exactly k bounds if the greedy sweep used fewer; the repair
    // pass spreads the collided bounds without changing the domain.
    while uppers.len() < k {
        uppers.push(max);
    }
    let uppers = enforce_strictly_increasing(uppers, max);
    LengthPartition::from_uppers(uppers)
}

/// Max-load / average-load ratio of a partition under a cost model
/// (1.0 = perfectly balanced; returns 1.0 when there is no load at all).
pub fn imbalance(partition: &LengthPartition, cost: &CostModel) -> f64 {
    let loads = partition.loads(cost);
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let avg = total / loads.len() as f64;
    loads.iter().fold(0.0f64, |a, &b| a.max(b)) / avg
}

/// Repairs a non-decreasing bound list into strictly increasing bounds
/// ending at `max` (needed when rounding or zero-load regions collide
/// cuts). The result still covers `[1, max]` with the same part count.
fn enforce_strictly_increasing(mut uppers: Vec<usize>, max: usize) -> Vec<usize> {
    let k = uppers.len();
    debug_assert!(max >= k, "domain must admit k non-empty ranges");
    // Forward pass: each bound at least its index + 1 (may overshoot max).
    for i in 0..k {
        let min_allowed = if i == 0 { 1 } else { uppers[i - 1] + 1 };
        if uppers[i] < min_allowed {
            uppers[i] = min_allowed;
        }
    }
    // Pin the domain end, then sweep backward leaving room for later
    // ranges; since max >= k this cannot push a bound below its floor.
    uppers[k - 1] = max;
    for i in (0..k - 1).rev() {
        let max_allowed = uppers[i + 1] - 1;
        if uppers[i] > max_allowed {
            uppers[i] = max_allowed;
        }
    }
    uppers
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssj_core::Threshold;

    fn hist(pairs: &[(usize, u64)]) -> LengthHistogram {
        let mut h = LengthHistogram::new();
        for &(len, n) in pairs {
            for _ in 0..n {
                h.add(len);
            }
        }
        h
    }

    fn check_invariants(p: &LengthPartition, k: usize, max: usize) {
        assert_eq!(p.k(), k);
        assert_eq!(p.domain_max(), max.max(k));
        // Contiguous, disjoint, covering.
        let mut expected_lo = 1;
        for i in 0..k {
            let (lo, hi) = p.range(i);
            assert_eq!(lo, expected_lo);
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        // Every length maps into the range that contains it.
        for len in 1..=p.domain_max() {
            let i = p.partition_of(len);
            let (lo, hi) = p.range(i);
            assert!((lo..=hi).contains(&len), "len {len} not in part {i}");
        }
        // Clamping beyond the domain.
        assert_eq!(p.partition_of(p.domain_max() + 100), k - 1);
    }

    #[test]
    fn equal_width_invariants() {
        check_invariants(&equal_width(100, 4), 4, 100);
        check_invariants(&equal_width(7, 7), 7, 7);
        check_invariants(&equal_width(3, 8), 8, 8); // padded domain
    }

    #[test]
    fn equal_depth_balances_counts() {
        let h = hist(&[(1, 70), (2, 10), (3, 10), (4, 10)]);
        let p = equal_depth(&h, 2);
        // 70% of records have length 1: the first cut must be at 1.
        assert_eq!(p.range(0), (1, 1));
        check_invariants(&p, 2, 4);
    }

    #[test]
    fn load_aware_beats_equal_width_on_skew() {
        let mut h = LengthHistogram::new();
        for _ in 0..10_000 {
            h.add(3);
        }
        for _ in 0..100 {
            h.add(40);
        }
        let cost = CostModel::build(&h, Threshold::jaccard(0.8), 64);
        let la = load_aware(&cost, 4);
        let ew = equal_width(64, 4);
        assert!(
            imbalance(&la, &cost) <= imbalance(&ew, &cost) + 1e-9,
            "load-aware {} vs equal-width {}",
            imbalance(&la, &cost),
            imbalance(&ew, &cost)
        );
        check_invariants(&la, 4, 64);
    }

    #[test]
    fn dp_is_at_least_as_good_as_greedy_and_depth() {
        let h = hist(&[(2, 500), (3, 2000), (4, 1500), (8, 300), (20, 50), (40, 5)]);
        let cost = CostModel::build(&h, Threshold::jaccard(0.7), 48);
        for k in [2, 3, 4, 6, 8] {
            let dp = load_aware(&cost, k);
            let gr = load_aware_greedy(&cost, k);
            let ed = equal_depth(&h, k);
            let maxload = |p: &LengthPartition| p.loads(&cost).into_iter().fold(0.0f64, f64::max);
            assert!(
                maxload(&dp) <= maxload(&gr) * (1.0 + 1e-4),
                "k={k}: dp {} > greedy {}",
                maxload(&dp),
                maxload(&gr)
            );
            assert!(
                maxload(&dp) <= maxload(&ed) * (1.0 + 1e-9),
                "k={k}: dp worse than equal-depth"
            );
        }
    }

    #[test]
    fn imbalance_of_uniform_is_near_one() {
        let mut h = LengthHistogram::new();
        for len in 1..=64 {
            for _ in 0..100 {
                h.add(len);
            }
        }
        let cost = CostModel::build(&h, Threshold::jaccard(0.9), 64);
        let p = load_aware(&cost, 4);
        assert!(imbalance(&p, &cost) < 1.2, "got {}", imbalance(&p, &cost));
    }

    #[test]
    fn single_partition_is_everything() {
        let h = hist(&[(5, 10)]);
        let cost = CostModel::build(&h, Threshold::jaccard(0.8), 10);
        let p = load_aware(&cost, 1);
        assert_eq!(p.k(), 1);
        assert_eq!(p.range(0), (1, 10));
    }

    #[test]
    fn empty_cost_degrades_gracefully() {
        let cost = CostModel::build(&LengthHistogram::new(), Threshold::jaccard(0.8), 20);
        check_invariants(&load_aware(&cost, 4), 4, 20);
        check_invariants(&load_aware_greedy(&cost, 4), 4, 20);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_uppers_rejects_duplicates() {
        let _ = LengthPartition::from_uppers(vec![3, 3, 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn partitions_always_cover_and_disjoint(
            lens in proptest::collection::vec((1usize..80, 1u64..50), 1..20),
            k in 1usize..10,
            tau in 0.5f64..0.95,
        ) {
            let mut h = LengthHistogram::new();
            for &(len, n) in &lens {
                for _ in 0..n {
                    h.add(len);
                }
            }
            let cost = CostModel::build(&h, Threshold::jaccard(tau), h.max_len());
            for p in [
                equal_width(h.max_len(), k),
                equal_depth(&h, k),
                load_aware(&cost, k),
                load_aware_greedy(&cost, k),
            ] {
                prop_assert_eq!(p.k(), k);
                let mut expected_lo = 1;
                for i in 0..k {
                    let (lo, hi) = p.range(i);
                    prop_assert_eq!(lo, expected_lo);
                    prop_assert!(hi >= lo);
                    expected_lo = hi + 1;
                }
                prop_assert!(p.domain_max() >= h.max_len());
            }
        }

        #[test]
        fn dp_minimax_not_worse_than_baselines(
            lens in proptest::collection::vec((1usize..60, 1u64..100), 2..15),
            k in 2usize..8,
        ) {
            let mut h = LengthHistogram::new();
            for &(len, n) in &lens {
                for _ in 0..n {
                    h.add(len);
                }
            }
            let cost = CostModel::build(&h, Threshold::jaccard(0.8), h.max_len());
            let maxload = |p: &LengthPartition| {
                p.loads(&cost).into_iter().fold(0.0f64, f64::max)
            };
            let dp = load_aware(&cost, k);
            for other in [equal_width(h.max_len(), k), equal_depth(&h, k),
                          load_aware_greedy(&cost, k)] {
                prop_assert!(maxload(&dp) <= maxload(&other) * (1.0 + 1e-6),
                    "dp {} vs {:?} {}", maxload(&dp), other, maxload(&other));
            }
        }
    }
}
