//! The local-join cost model behind load-aware partitioning.
//!
//! Key observation: under length-based routing, the work a joiner performs
//! decomposes *per indexed length*. A probe of length `ℓp` is shipped to
//! every partition intersecting `[min_len(ℓp), max_len(ℓp)]` and, at each,
//! pays filtering/verification cost against the records indexed there. We
//! therefore attribute to each indexed length `ℓ` the total cost mass
//!
//! ```text
//! H(ℓ) = Σ_{ℓp : ℓ ∈ [min_len(ℓp), max_len(ℓp)]}  f(ℓp) · f(ℓ) · c(ℓp, ℓ)
//!        + c_index · f(ℓ)
//! ```
//!
//! with `c(ℓp, ℓ) = ℓp + ℓ` (a merge-verification proxy) and `f` the length
//! histogram. The load of a partition `[a, b]` is then simply
//! `Σ_{ℓ=a}^{b} H(ℓ)` — additive over lengths — which turns minimax
//! partitioning into a classic contiguous 1-D balancing problem.
//!
//! `H` is computed in O(L) (plus the histogram pass) using difference
//! arrays for the constant and linear terms of each probe's range update.

use crate::histogram::LengthHistogram;
use ssj_core::Threshold;

/// Relative cost of indexing one record vs. one verification token step.
const INDEX_COST_WEIGHT: f64 = 2.0;

/// Per-indexed-length cost mass, with prefix sums for O(1) range loads.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `h[ℓ]` — cost mass attributed to indexed length ℓ.
    h: Vec<f64>,
    /// `prefix[ℓ] = Σ_{x ≤ ℓ} h[x]` (prefix[0] = 0).
    prefix: Vec<f64>,
    max_len: usize,
}

impl CostModel {
    /// Derives the model from a histogram under a threshold. `max_len`
    /// bounds the length domain (lengths above it are clamped by routing).
    pub fn build(hist: &LengthHistogram, threshold: Threshold, max_len: usize) -> Self {
        let max_len = max_len.max(hist.max_len()).max(1);
        // Difference arrays for Σ f(ℓp)·ℓp (constant term) and Σ f(ℓp)
        // (coefficient of ℓ) over each probe's admissible index range.
        let mut const_diff = vec![0.0f64; max_len + 2];
        let mut coeff_diff = vec![0.0f64; max_len + 2];
        for lp in 1..=max_len {
            let f = hist.count(lp) as f64;
            if f == 0.0 {
                continue;
            }
            let lo = threshold.min_len(lp).min(max_len);
            let hi = threshold.max_len_clamped(lp, max_len);
            if lo > hi {
                continue;
            }
            const_diff[lo] += f * lp as f64;
            const_diff[hi + 1] -= f * lp as f64;
            coeff_diff[lo] += f;
            coeff_diff[hi + 1] -= f;
        }

        let mut h = vec![0.0f64; max_len + 1];
        let (mut const_acc, mut coeff_acc) = (0.0f64, 0.0f64);
        for l in 1..=max_len {
            const_acc += const_diff[l];
            coeff_acc += coeff_diff[l];
            let f_l = hist.count(l) as f64;
            let probe_mass = f_l * (const_acc + coeff_acc * l as f64);
            let index_mass = INDEX_COST_WEIGHT * f_l * l as f64;
            h[l] = probe_mass + index_mass;
        }

        let mut prefix = vec![0.0f64; max_len + 2];
        for l in 1..=max_len {
            prefix[l + 1] = prefix[l] + h[l];
        }
        Self { h, prefix, max_len }
    }

    /// The length-domain size the model covers.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Cost mass at one indexed length.
    #[inline]
    pub fn at(&self, len: usize) -> f64 {
        self.h.get(len).copied().unwrap_or(0.0)
    }

    /// Total cost mass of the length range `[lo, hi]` (inclusive), O(1).
    #[inline]
    pub fn range_load(&self, lo: usize, hi: usize) -> f64 {
        if lo > hi || lo > self.max_len {
            return 0.0;
        }
        let hi = hi.min(self.max_len);
        self.prefix[hi + 1] - self.prefix[lo]
    }

    /// Total cost mass of the whole domain.
    pub fn total(&self) -> f64 {
        self.prefix[self.max_len + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::Threshold;

    fn hist(pairs: &[(usize, u64)]) -> LengthHistogram {
        let mut h = LengthHistogram::new();
        for &(len, n) in pairs {
            for _ in 0..n {
                h.add(len);
            }
        }
        h
    }

    #[test]
    fn range_load_matches_pointwise_sum() {
        let h = hist(&[(2, 10), (5, 3), (9, 7)]);
        let m = CostModel::build(&h, Threshold::jaccard(0.8), 12);
        let direct: f64 = (3..=9).map(|l| m.at(l)).sum();
        assert!((m.range_load(3, 9) - direct).abs() < 1e-9);
        assert!((m.range_load(1, 12) - m.total()).abs() < 1e-9);
    }

    #[test]
    fn mass_concentrates_where_records_are() {
        let h = hist(&[(10, 100), (50, 1)]);
        let m = CostModel::build(&h, Threshold::jaccard(0.8), 64);
        assert!(m.at(10) > m.at(50));
        assert_eq!(m.at(30), 0.0, "no records near length 30 at tau=0.8");
    }

    #[test]
    fn cross_length_probes_are_attributed() {
        // tau=0.5: a probe of length 10 reaches indexed lengths [5, 20].
        let h = hist(&[(10, 10), (18, 10)]);
        let m = CostModel::build(&h, Threshold::jaccard(0.5), 32);
        // Length 18 receives probe mass from both length-10 and length-18
        // records.
        assert!(m.at(18) > 0.0);
        // The exact value: f(18)·[f(10)(10+18) + f(18)(18+18)] + index.
        let expected = 10.0 * (10.0 * 28.0 + 10.0 * 36.0) + 2.0 * 10.0 * 18.0;
        assert!((m.at(18) - expected).abs() < 1e-6, "at(18)={}", m.at(18));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let m = CostModel::build(&LengthHistogram::new(), Threshold::jaccard(0.7), 16);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.range_load(1, 16), 0.0);
    }

    #[test]
    fn degenerate_ranges() {
        let h = hist(&[(4, 5)]);
        let m = CostModel::build(&h, Threshold::jaccard(0.9), 8);
        assert_eq!(m.range_load(5, 3), 0.0);
        assert_eq!(m.range_load(100, 200), 0.0);
    }
}
