//! Record-length histograms.

use ssj_text::Record;

/// Counts of records per length. Index 0 is unused (records are non-empty).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LengthHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LengthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram pre-sized for lengths up to `max_len`.
    pub fn with_max_len(max_len: usize) -> Self {
        Self {
            counts: vec![0; max_len + 1],
            total: 0,
        }
    }

    /// Builds a histogram from a record sample.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut h = Self::new();
        for r in records {
            h.add(r.len());
        }
        h
    }

    /// Counts one record of the given length.
    pub fn add(&mut self, len: usize) {
        if len >= self.counts.len() {
            self.counts.resize(len + 1, 0);
        }
        self.counts[len] += 1;
        self.total += 1;
    }

    /// Count at a length (0 beyond the observed maximum).
    #[inline]
    pub fn count(&self, len: usize) -> u64 {
        self.counts.get(len).copied().unwrap_or(0)
    }

    /// Largest length with a non-zero count (0 if empty).
    pub fn max_len(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Total records counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean record length (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(l, &c)| l as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &LengthHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (l, &c) in other.counts.iter().enumerate() {
            self.counts[l] += c;
        }
        self.total += other.total;
    }

    /// Forgets all counts, keeping capacity.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::{RecordId, TokenId};

    fn rec(len: usize) -> Record {
        Record::from_sorted(RecordId(0), 0, (0..len as u32).map(TokenId).collect())
    }

    #[test]
    fn counts_and_totals() {
        let mut h = LengthHistogram::new();
        h.add(3);
        h.add(3);
        h.add(7);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(100), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_len(), 7);
    }

    #[test]
    fn from_records() {
        let records = vec![rec(2), rec(2), rec(5)];
        let h = LengthHistogram::from_records(&records);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums() {
        let mut a = LengthHistogram::new();
        a.add(1);
        let mut b = LengthHistogram::new();
        b.add(1);
        b.add(9);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(9), 1);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max_len(), 9);
    }

    #[test]
    fn empty_histogram() {
        let h = LengthHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.max_len(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_keeps_working() {
        let mut h = LengthHistogram::new();
        h.add(4);
        h.clear();
        assert!(h.is_empty());
        h.add(2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(4), 0);
    }
}
