//! Adversarial-input unit tests: the filtered joiners (ppjoin's prefix /
//! positional / suffix filters, bundle's batch verification) against the
//! naive reference on inputs chosen to break filter edge cases —
//! singleton-token records, all-identical streams, disjoint streams,
//! shared-prefix-only records, and boundary thresholds.
//!
//! On *empty* sets: a `Record` cannot be empty by construction —
//! [`Record::from_sorted`] rejects an empty token vector (an empty set has
//! no similarity to anything, and admitting it would force every filter
//! bound to special-case division by zero). The constructor contract is
//! asserted here so the invariant every filter relies on cannot silently
//! erode.

use ssj_core::join::run_stream;
use ssj_core::{
    BundleConfig, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner, SimFn, Threshold, Window,
};
use ssj_text::{Record, RecordId, TokenId};

fn rec(id: u64, tokens: &[u32]) -> Record {
    Record::from_sorted(
        RecordId(id),
        id, // timestamp = id: keeps time windows aligned with count order
        tokens.iter().map(|&t| TokenId(t)).collect(),
    )
}

fn keys(pairs: &[ssj_core::MatchPair]) -> Vec<(u64, u64)> {
    let mut k: Vec<_> = pairs.iter().map(|m| m.key()).collect();
    k.sort_unstable();
    k
}

/// Every filtered joiner under test, built fresh for one config.
fn filtered(cfg: JoinConfig) -> Vec<(&'static str, Box<dyn ssj_core::StreamJoiner>)> {
    vec![
        ("ppjoin", Box::new(PpJoinJoiner::new(cfg))),
        ("ppjoin+", Box::new(PpJoinJoiner::new_plus(cfg))),
        ("bundle", Box::new(BundleJoiner::with_defaults(cfg))),
        (
            "bundle-tight",
            Box::new(BundleJoiner::new(BundleConfig {
                join: cfg,
                bundle_tau: 0.99,
                max_members: 2,
                max_delta_frac: 0.05,
            })),
        ),
    ]
}

fn assert_all_match_naive(records: &[Record], cfg: JoinConfig, label: &str) {
    let expect = keys(&run_stream(&mut NaiveJoiner::new(cfg), records));
    for (name, mut joiner) in filtered(cfg) {
        let got = keys(&run_stream(joiner.as_mut(), records));
        assert_eq!(got, expect, "{name} diverges from naive on {label}");
    }
}

#[test]
#[should_panic(expected = "has no tokens")]
fn empty_records_are_unrepresentable() {
    // The whole filter pipeline assumes |r| >= 1; the constructor is the
    // enforcement point.
    let _ = Record::from_sorted(RecordId(0), 0, vec![]);
}

#[test]
fn singleton_token_records() {
    // |r| = 1 makes every prefix the whole record and drives all length
    // bounds to their minimum; overlap is 0 or 1, similarity 0 or 1.
    let records: Vec<Record> = (0..40).map(|i| rec(i, &[(i % 5) as u32])).collect();
    for tau in [0.3, 0.5, 1.0] {
        for sim in [SimFn::Jaccard, SimFn::Cosine, SimFn::Dice, SimFn::Overlap] {
            let cfg = JoinConfig {
                threshold: Threshold::new(sim, tau),
                window: Window::Unbounded,
            };
            assert_all_match_naive(&records, cfg, "singleton tokens");
        }
    }
    // Sanity: equal singletons really do match at tau = 1.
    let cfg = JoinConfig::jaccard(1.0);
    let n = run_stream(&mut NaiveJoiner::new(cfg), &records).len();
    assert_eq!(n, 5 * (8 * 7) / 2, "5 token classes x C(8,2) pairs each");
}

#[test]
fn all_identical_sets() {
    // Every pair matches with similarity exactly 1.0: the bundle joiner
    // must absorb everything into one bundle and batch-verify, ppjoin's
    // positional filter must never prune, and windows must still evict.
    let records: Vec<Record> = (0..30).map(|i| rec(i, &[2, 5, 9, 11])).collect();
    for window in [Window::Unbounded, Window::Count(7), Window::TimeMs(4)] {
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(1.0),
            window,
        };
        assert_all_match_naive(&records, cfg, "all-identical sets");
    }
    let cfg = JoinConfig::jaccard(1.0);
    let pairs = run_stream(&mut BundleJoiner::with_defaults(cfg), &records);
    assert_eq!(pairs.len(), 30 * 29 / 2);
    assert!(pairs.iter().all(|p| p.similarity == 1.0));
}

#[test]
fn pairwise_disjoint_sets_produce_nothing() {
    // No shared token anywhere: the prefix index must generate zero
    // candidates and zero results at any threshold.
    let records: Vec<Record> = (0..20u32)
        .map(|i| rec(i as u64, &[3 * i, 3 * i + 1, 3 * i + 2]))
        .collect();
    for tau in [0.1, 0.5, 0.9] {
        let cfg = JoinConfig::jaccard(tau);
        assert_all_match_naive(&records, cfg, "pairwise disjoint sets");
        assert!(run_stream(&mut PpJoinJoiner::new(cfg), &records).is_empty());
    }
}

#[test]
fn shared_prefix_disjoint_suffix() {
    // All records share one hot leading token but nothing else: maximal
    // candidate generation with (mostly) sub-threshold verification — the
    // case the positional and suffix filters exist for.
    let records: Vec<Record> = (0..25u32)
        .map(|i| rec(i as u64, &[0, 100 + 4 * i, 101 + 4 * i, 102 + 4 * i]))
        .collect();
    for tau in [0.2, 0.26, 0.5] {
        let cfg = JoinConfig::jaccard(tau);
        assert_all_match_naive(&records, cfg, "shared prefix, disjoint suffix");
    }
    // At tau = 0.2, overlap 1 of 4+4 tokens gives jaccard 1/7 < 0.2: still
    // nothing — verification, not candidate generation, decides.
    assert!(run_stream(&mut NaiveJoiner::new(JoinConfig::jaccard(0.2)), &records).is_empty());
}

#[test]
fn nested_subset_chains() {
    // r_{i+1} strictly contains r_i: exercises asymmetric lengths, where
    // position-based bounds are tightest and off-by-ones bite.
    let records: Vec<Record> = (1..=12u32)
        .map(|i| rec(i as u64, &(0..i).collect::<Vec<_>>()))
        .collect();
    for tau in [0.5, 0.75, 0.92] {
        for sim in [SimFn::Jaccard, SimFn::Cosine, SimFn::Dice, SimFn::Overlap] {
            let cfg = JoinConfig {
                threshold: Threshold::new(sim, tau),
                window: Window::Unbounded,
            };
            assert_all_match_naive(&records, cfg, "nested subset chains");
        }
    }
    // Overlap similarity of a subset pair is exactly 1 regardless of the
    // size gap — every chain pair must surface at tau = 1.
    let cfg = JoinConfig {
        threshold: Threshold::new(SimFn::Overlap, 1.0),
        window: Window::Unbounded,
    };
    let n = run_stream(&mut NaiveJoiner::new(cfg), &records).len();
    assert_eq!(n, 12 * 11 / 2);
}

#[test]
fn boundary_similarity_exactly_at_tau() {
    // jaccard(\{0..3\}, \{0..3,4\}) = 4/5 = 0.8 exactly: >= must admit it.
    let records = vec![rec(0, &[0, 1, 2, 3]), rec(1, &[0, 1, 2, 3, 4])];
    let at = JoinConfig::jaccard(0.8);
    let above = JoinConfig::jaccard(0.81);
    assert_all_match_naive(&records, at, "boundary tau (inclusive)");
    assert_all_match_naive(&records, above, "boundary tau (exclusive)");
    assert_eq!(run_stream(&mut NaiveJoiner::new(at), &records).len(), 1);
    assert!(run_stream(&mut NaiveJoiner::new(above), &records).is_empty());
}

#[test]
fn identical_sets_straddling_a_window_edge() {
    // Identical records exactly W and W+1 apart: the window predicate, not
    // the filters, must decide — and all joiners must agree with naive.
    let mk = |gap: u64| vec![rec(0, &[1, 2, 3]), rec(gap, &[1, 2, 3])];
    for (gap, expect) in [(5u64, 1usize), (6, 0)] {
        let cfg = JoinConfig::jaccard(1.0).with_window(Window::Count(5));
        let records = mk(gap);
        assert_all_match_naive(&records, cfg, "window edge");
        assert_eq!(
            run_stream(&mut NaiveJoiner::new(cfg), &records).len(),
            expect,
            "gap {gap}"
        );
    }
}
