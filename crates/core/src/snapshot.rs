//! Serialization of joiner window snapshots for checkpointing.
//!
//! A checkpoint persists, per joiner task, the records currently alive in
//! that task's window — exactly what
//! [`StreamJoiner::window_snapshot`](crate::StreamJoiner::window_snapshot)
//! returns, tagged with the bi-stream [`Side`] when the joiner runs an R–S
//! join. The encoding reuses the `ssj-text` binary record codec so
//! snapshot files are readable by the same tooling as encoded streams:
//!
//! ```text
//! magic  u32 LE  = 0x5057_4e53  ("SNWP")
//! count  u32 LE
//! count × { side u8 (0 = none, 1 = left, 2 = right), record (ssj-text) }
//! ```
//!
//! Entries are written (and validated on decode to be) in strictly
//! ascending record-id order — the arrival order every joiner's
//! `window_snapshot` already guarantees, and the order `restore` expects.

use crate::join::Side;
use ssj_text::codec::{decode_record, encode_record};
use ssj_text::Record;
use std::io::{self, Cursor, Read, Write};

/// Magic number leading every window snapshot.
const MAGIC: u32 = 0x5057_4e53;

/// One snapshot entry: a live window record, side-tagged iff it belongs to
/// a bi-stream joiner.
pub type SnapshotEntry = (Option<Side>, Record);

fn side_tag(side: Option<Side>) -> u8 {
    match side {
        None => 0,
        Some(Side::Left) => 1,
        Some(Side::Right) => 2,
    }
}

fn tag_side(tag: u8) -> io::Result<Option<Side>> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(Side::Left)),
        2 => Ok(Some(Side::Right)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad snapshot side tag {other}"),
        )),
    }
}

/// Encodes a window snapshot to `out`. Returns the number of bytes
/// written.
///
/// # Errors
/// Fails on any I/O error, or if `entries` is not in strictly ascending
/// record-id order (a corrupt snapshot must never be written).
pub fn encode_window<W: Write>(entries: &[SnapshotEntry], out: &mut W) -> io::Result<u64> {
    let count = u32::try_from(entries.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "snapshot too large"))?;
    out.write_all(&MAGIC.to_le_bytes())?;
    out.write_all(&count.to_le_bytes())?;
    let mut bytes = 8u64;
    let mut prev: Option<u64> = None;
    for (side, record) in entries {
        if prev.is_some_and(|p| p >= record.id().0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot entries must be in strictly ascending id order",
            ));
        }
        prev = Some(record.id().0);
        out.write_all(&[side_tag(*side)])?;
        bytes += 1 + encode_record(record, out)?;
    }
    Ok(bytes)
}

/// Encodes a window snapshot into a fresh byte vector.
///
/// # Errors
/// See [`encode_window`].
pub fn encode_window_vec(entries: &[SnapshotEntry]) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    encode_window(entries, &mut buf)?;
    Ok(buf)
}

/// Decodes a window snapshot from `input`, validating the magic, the
/// entry count and ascending id order.
///
/// # Errors
/// Fails on I/O errors, a bad magic number, truncation, out-of-order ids,
/// or trailing garbage.
pub fn decode_window<R: Read>(input: &mut R) -> io::Result<Vec<SnapshotEntry>> {
    let mut head = [0u8; 8];
    input.read_exact(&mut head)?;
    let magic = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad snapshot magic {magic:#010x}"),
        ));
    }
    let count = u32::from_le_bytes(head[4..].try_into().expect("4 bytes")) as usize;
    let mut entries = Vec::with_capacity(count);
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let mut tag = [0u8; 1];
        input.read_exact(&mut tag)?;
        let side = tag_side(tag[0])?;
        let record = decode_record(input)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "snapshot truncated mid-entry")
        })?;
        if prev.is_some_and(|p| p >= record.id().0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot entries out of id order",
            ));
        }
        prev = Some(record.id().0);
        entries.push((side, record));
    }
    let mut trailer = [0u8; 1];
    if input.read(&mut trailer)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after snapshot",
        ));
    }
    Ok(entries)
}

/// Decodes a window snapshot from an in-memory buffer.
///
/// # Errors
/// See [`decode_window`].
pub fn decode_window_slice(bytes: &[u8]) -> io::Result<Vec<SnapshotEntry>> {
    decode_window(&mut Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, tokens: &[u32]) -> Record {
        let tokens = tokens.iter().map(|&t| TokenId(t)).collect();
        Record::from_sorted(RecordId(id), id * 10, tokens)
    }

    #[test]
    fn roundtrips_side_tagged_entries() {
        let entries: Vec<SnapshotEntry> = vec![
            (None, rec(1, &[1, 2, 3])),
            (Some(Side::Left), rec(2, &[4])),
            (Some(Side::Right), rec(7, &[2, 9, 11, 30])),
        ];
        let bytes = encode_window_vec(&entries).unwrap();
        let back = decode_window_slice(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for ((s0, r0), (s1, r1)) in entries.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(r0.id(), r1.id());
            assert_eq!(r0.tokens(), r1.tokens());
            assert_eq!(r0.timestamp(), r1.timestamp());
        }
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode_window_vec(&[]).unwrap();
        assert_eq!(decode_window_slice(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_out_of_order_encode() {
        let entries = vec![(None, rec(5, &[1])), (None, rec(3, &[2]))];
        assert!(encode_window_vec(&entries).is_err());
    }

    #[test]
    fn rejects_bad_magic_truncation_and_garbage() {
        let good = encode_window_vec(&[(None, rec(1, &[1, 2]))]).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(decode_window_slice(&bad_magic).is_err());

        assert!(decode_window_slice(&good[..good.len() - 1]).is_err());

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_window_slice(&trailing).is_err());
    }
}
