//! Storage machinery shared by the indexed joiners: a slotted record store
//! with tombstones, an inverted prefix index with lazy posting pruning, and
//! a stamp-based candidate deduplication filter.
//!
//! Eviction marks slots dead; postings referencing dead slots are pruned
//! *lazily* while a list is scanned (the scan already pays for the
//! traversal), and the whole structure is compacted when the dead fraction
//! grows too large, so memory stays proportional to the live window.

use crate::window::EvictionQueue;
use ssj_text::{FxHashMap, Record, TokenId};

/// Slot handle into a [`RecordStore`].
pub type Slot = u32;

/// A tombstoning slab of values addressed by [`Slot`].
#[derive(Debug)]
pub struct SlotStore<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

/// The record slab used by the per-record joiners.
pub type RecordStore = SlotStore<Record>;

impl<T> Default for SlotStore<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> SlotStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a value, returning its slot. Slots are not reused until
    /// [`compact`](Self::compact).
    pub fn insert(&mut self, value: T) -> Slot {
        let slot = self.slots.len() as Slot;
        self.slots.push(Some(value));
        self.live += 1;
        slot
    }

    /// The value in `slot`, if still live.
    #[inline]
    pub fn get(&self, slot: Slot) -> Option<&T> {
        self.slots.get(slot as usize).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value in `slot`, if still live.
    #[inline]
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        self.slots.get_mut(slot as usize).and_then(|s| s.as_mut())
    }

    /// Tombstones `slot`, returning the value.
    pub fn remove(&mut self, slot: Slot) -> Option<T> {
        let r = self.slots.get_mut(slot as usize).and_then(Option::take);
        if r.is_some() {
            self.live -= 1;
        }
        r
    }

    /// Iterates live `(slot, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as Slot, v)))
    }

    /// Live value count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Dead (tombstoned) slot count.
    pub fn dead(&self) -> usize {
        self.slots.len() - self.live
    }

    /// Total slots allocated (live + dead).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Rebuilds the slab with live values only and returns the remap table:
    /// `remap[old_slot] = new_slot` (or [`Slot::MAX`] for dead slots).
    /// Callers must rewrite every structure holding slots.
    pub fn compact(&mut self) -> Vec<Slot> {
        let mut remap = vec![Slot::MAX; self.slots.len()];
        let mut new_slots = Vec::with_capacity(self.live);
        for (old, slot) in self.slots.drain(..).enumerate() {
            if let Some(value) = slot {
                remap[old] = new_slots.len() as Slot;
                new_slots.push(Some(value));
            }
        }
        self.slots = new_slots;
        remap
    }
}

/// One posting: which slot contains the record, and at which token position
/// the posted token sits (needed by the positional filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Store slot of the indexed record (or bundle).
    pub slot: Slot,
    /// 0-based position of the token within the record.
    pub pos: u32,
}

/// Inverted index: token → postings.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    lists: FxHashMap<TokenId, Vec<Posting>>,
    live_postings: usize,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting.
    pub fn add(&mut self, token: TokenId, posting: Posting) {
        self.lists.entry(token).or_default().push(posting);
        self.live_postings += 1;
    }

    /// Scans the posting list of `token`, pruning dead postings in place.
    /// `is_live` decides liveness by slot; `visit` sees each live posting.
    pub fn scan_prune(
        &mut self,
        token: TokenId,
        mut is_live: impl FnMut(Slot) -> bool,
        mut visit: impl FnMut(Posting),
    ) {
        let Some(list) = self.lists.get_mut(&token) else {
            return;
        };
        let before = list.len();
        list.retain(|p| {
            if is_live(p.slot) {
                visit(*p);
                true
            } else {
                false
            }
        });
        self.live_postings -= before - list.len();
        if list.is_empty() {
            self.lists.remove(&token);
        }
    }

    /// Number of postings currently held (including not-yet-pruned dead
    /// ones; an upper bound on live postings).
    pub fn postings(&self) -> usize {
        self.live_postings
    }

    /// Number of distinct tokens with a posting list.
    pub fn tokens(&self) -> usize {
        self.lists.len()
    }

    /// Drops dead postings everywhere and rewrites slots through `remap`
    /// (from [`RecordStore::compact`]).
    pub fn apply_remap(&mut self, remap: &[Slot]) {
        let mut live = 0;
        self.lists.retain(|_, list| {
            list.retain_mut(|p| {
                let new = remap[p.slot as usize];
                if new == Slot::MAX {
                    false
                } else {
                    p.slot = new;
                    true
                }
            });
            live += list.len();
            !list.is_empty()
        });
        self.live_postings = live;
    }
}

/// Stamp-based "first visit this probe?" filter over slots — O(1) dedup
/// without clearing a set between probes.
#[derive(Debug, Default)]
pub struct SeenFilter {
    stamps: Vec<u32>,
    epoch: u32,
}

impl SeenFilter {
    /// An empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new probe; all slots become unseen.
    pub fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could alias. Reset storage (rare: every
            // 2^32 probes).
            self.stamps.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
    }

    /// True exactly on the first visit of `slot` in the current epoch.
    #[inline]
    pub fn first_visit(&mut self, slot: Slot) -> bool {
        let idx = slot as usize;
        if idx >= self.stamps.len() {
            self.stamps.resize(idx + 1, self.epoch.wrapping_sub(1));
        }
        if self.stamps[idx] == self.epoch {
            false
        } else {
            self.stamps[idx] = self.epoch;
            true
        }
    }

    /// Clears the filter after a store compaction (slot meanings changed).
    pub fn reset(&mut self) {
        self.stamps.clear();
        self.epoch = 0;
    }
}

/// When should an index structure compact? Once the dead fraction exceeds
/// half and enough garbage has accumulated to be worth the rebuild.
#[inline]
pub fn should_compact(live: usize, dead: usize) -> bool {
    dead > 1024 && dead > live
}

/// Drives a full compaction across the three structures the indexed joiners
/// share. Returns the remap so callers can rewrite any extra slot holders.
pub fn compact_all<T>(
    store: &mut SlotStore<T>,
    index: &mut InvertedIndex,
    queue: &mut EvictionQueue<Slot>,
    seen: &mut SeenFilter,
) -> Vec<Slot> {
    let remap = store.compact();
    index.apply_remap(&remap);
    queue_apply_remap(queue, &remap);
    seen.reset();
    remap
}

fn queue_apply_remap(queue: &mut EvictionQueue<Slot>, remap: &[Slot]) {
    // The eviction queue only contains live slots (eviction is the only
    // source of tombstones and removes the entry as it kills the slot), so
    // every remap lookup must succeed.
    queue.for_each_payload_mut(|slot| {
        let new = remap[*slot as usize];
        debug_assert_ne!(new, Slot::MAX, "eviction queue held a dead slot");
        *slot = new;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::RecordId;

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    #[test]
    fn store_insert_get_remove() {
        let mut s = RecordStore::new();
        let a = s.insert(rec(1, &[1, 2]));
        let b = s.insert(rec(2, &[3]));
        assert_eq!(s.live(), 2);
        assert_eq!(s.get(a).unwrap().id(), RecordId(1));
        assert_eq!(s.remove(a).unwrap().id(), RecordId(1));
        assert!(s.get(a).is_none());
        assert_eq!(s.live(), 1);
        assert_eq!(s.dead(), 1);
        assert!(s.get(b).is_some());
        // Double remove is a no-op.
        assert!(s.remove(a).is_none());
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn store_compact_remaps() {
        let mut s = RecordStore::new();
        let a = s.insert(rec(1, &[1]));
        let b = s.insert(rec(2, &[2]));
        let c = s.insert(rec(3, &[3]));
        s.remove(b);
        let remap = s.compact();
        assert_eq!(remap[a as usize], 0);
        assert_eq!(remap[b as usize], Slot::MAX);
        assert_eq!(remap[c as usize], 1);
        assert_eq!(s.get(0).unwrap().id(), RecordId(1));
        assert_eq!(s.get(1).unwrap().id(), RecordId(3));
        assert_eq!(s.dead(), 0);
    }

    #[test]
    fn index_scan_prunes_dead() {
        let mut idx = InvertedIndex::new();
        let t = TokenId(7);
        idx.add(t, Posting { slot: 0, pos: 0 });
        idx.add(t, Posting { slot: 1, pos: 2 });
        idx.add(t, Posting { slot: 2, pos: 1 });
        let mut seen = Vec::new();
        idx.scan_prune(t, |slot| slot != 1, |p| seen.push(p.slot));
        assert_eq!(seen, vec![0, 2]);
        assert_eq!(idx.postings(), 2);
        // Second scan no longer sees slot 1.
        let mut seen2 = Vec::new();
        idx.scan_prune(t, |_| true, |p| seen2.push(p.slot));
        assert_eq!(seen2, vec![0, 2]);
    }

    #[test]
    fn index_empty_list_removed() {
        let mut idx = InvertedIndex::new();
        idx.add(TokenId(1), Posting { slot: 0, pos: 0 });
        idx.scan_prune(TokenId(1), |_| false, |_| panic!("nothing live"));
        assert_eq!(idx.tokens(), 0);
        assert_eq!(idx.postings(), 0);
    }

    #[test]
    fn index_remap() {
        let mut idx = InvertedIndex::new();
        idx.add(TokenId(1), Posting { slot: 0, pos: 0 });
        idx.add(TokenId(1), Posting { slot: 1, pos: 0 });
        idx.add(TokenId(2), Posting { slot: 1, pos: 1 });
        // slot 0 dies, slot 1 becomes 0.
        idx.apply_remap(&[Slot::MAX, 0]);
        assert_eq!(idx.postings(), 2);
        let mut seen = Vec::new();
        idx.scan_prune(TokenId(1), |_| true, |p| seen.push(p.slot));
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn seen_filter_dedups_within_epoch() {
        let mut f = SeenFilter::new();
        f.next_epoch();
        assert!(f.first_visit(3));
        assert!(!f.first_visit(3));
        assert!(f.first_visit(0));
        f.next_epoch();
        assert!(f.first_visit(3));
    }

    #[test]
    fn seen_filter_grows() {
        let mut f = SeenFilter::new();
        f.next_epoch();
        assert!(f.first_visit(1000));
        assert!(!f.first_visit(1000));
    }

    #[test]
    fn compact_all_coordinates() {
        let mut store = RecordStore::new();
        let mut index = InvertedIndex::new();
        let mut queue = EvictionQueue::new();
        let mut seen = SeenFilter::new();
        let a = store.insert(rec(1, &[1]));
        let b = store.insert(rec(2, &[1]));
        index.add(TokenId(1), Posting { slot: a, pos: 0 });
        index.add(TokenId(1), Posting { slot: b, pos: 0 });
        queue.push(2, 2, b);
        store.remove(a); // evicted; note queue no longer holds it
        let remap = compact_all(&mut store, &mut index, &mut queue, &mut seen);
        assert_eq!(remap[b as usize], 0);
        assert_eq!(store.live(), 1);
        assert_eq!(index.postings(), 1);
        let mut slots = Vec::new();
        index.scan_prune(TokenId(1), |_| true, |p| slots.push(p.slot));
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn should_compact_thresholds() {
        assert!(!should_compact(10, 5));
        assert!(!should_compact(10, 1000)); // not enough absolute garbage
        assert!(should_compact(1000, 1500));
    }
}
