//! Similarity measures and the exact filter bounds derived from them.
//!
//! Every filter in this crate is *safe*: it may admit false positives
//! (removed later by verification) but never prunes a pair the acceptance
//! predicate [`Threshold::matches`] would admit. Bounds computed through
//! floating point carry a small slack (`EPS`) in the conservative direction,
//! while the acceptance predicate itself is a single deterministic `f64`
//! comparison used identically by every joiner — which is what makes the
//! "all joiners produce exactly the naive result set" property hold.

/// Slack applied to floating-point bound computations so round-off can
/// never flip a bound in the unsafe direction.
const EPS: f64 = 1e-9;

/// Supported set similarity functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFn {
    /// `|r ∩ s| / |r ∪ s|`
    Jaccard,
    /// `|r ∩ s| / sqrt(|r|·|s|)`
    Cosine,
    /// `2·|r ∩ s| / (|r| + |s|)`
    Dice,
    /// `|r ∩ s| / min(|r|, |s|)` — note: has no length filter, so the
    /// length-based distribution degenerates to probe broadcast.
    Overlap,
}

impl SimFn {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SimFn::Jaccard => "jaccard",
            SimFn::Cosine => "cosine",
            SimFn::Dice => "dice",
            SimFn::Overlap => "overlap",
        }
    }
}

/// A similarity function together with a threshold `τ ∈ (0, 1]`.
///
/// All integer bounds used by the filtering pipeline live here:
///
/// * [`min_len`](Self::min_len) / [`max_len`](Self::max_len) — the lengths a
///   partner set may have (the *length filter*, and the basis of the
///   length-based distribution scheme);
/// * [`min_overlap`](Self::min_overlap) — the smallest intersection size
///   that can reach `τ` for a given length pair;
/// * [`prefix_len`](Self::prefix_len) — the streaming prefix length: two
///   matching records always share a token within each other's prefix of
///   this length (valid for *any* arrival order, unlike the shorter batch
///   "index prefix" which assumes length-sorted processing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    sim: SimFn,
    tau: f64,
}

#[inline]
fn ceil_eps(v: f64) -> usize {
    (v - EPS).ceil().max(0.0) as usize
}

#[inline]
fn floor_eps(v: f64) -> usize {
    (v + EPS).floor().max(0.0) as usize
}

impl Threshold {
    /// Creates a threshold; panics unless `0 < tau <= 1`.
    pub fn new(sim: SimFn, tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau <= 1.0,
            "similarity threshold must be in (0, 1], got {tau}"
        );
        Self { sim, tau }
    }

    /// Jaccard threshold shorthand (the paper's default measure).
    pub fn jaccard(tau: f64) -> Self {
        Self::new(SimFn::Jaccard, tau)
    }

    /// The similarity function.
    pub fn sim_fn(&self) -> SimFn {
        self.sim
    }

    /// The threshold value τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Exact similarity of a pair given its intersection size and lengths.
    #[inline]
    pub fn similarity(&self, overlap: usize, l1: usize, l2: usize) -> f64 {
        debug_assert!(overlap <= l1.min(l2));
        let o = overlap as f64;
        match self.sim {
            SimFn::Jaccard => o / (l1 + l2 - overlap) as f64,
            SimFn::Cosine => o / ((l1 as f64) * (l2 as f64)).sqrt(),
            SimFn::Dice => 2.0 * o / (l1 + l2) as f64,
            SimFn::Overlap => o / l1.min(l2) as f64,
        }
    }

    /// The acceptance predicate: does this (overlap, lengths) triple match?
    ///
    /// This is the single source of truth every joiner (naive or filtered,
    /// local or distributed) uses, so result sets are bit-identical.
    #[inline]
    pub fn matches(&self, overlap: usize, l1: usize, l2: usize) -> bool {
        overlap > 0 && self.similarity(overlap, l1, l2) >= self.tau
    }

    /// Smallest intersection size that can reach τ for lengths `(l1, l2)`.
    /// Always at least 1.
    #[inline]
    pub fn min_overlap(&self, l1: usize, l2: usize) -> usize {
        let v = match self.sim {
            SimFn::Jaccard => self.tau / (1.0 + self.tau) * (l1 + l2) as f64,
            SimFn::Cosine => self.tau * ((l1 as f64) * (l2 as f64)).sqrt(),
            SimFn::Dice => self.tau * (l1 + l2) as f64 / 2.0,
            SimFn::Overlap => self.tau * l1.min(l2) as f64,
        };
        ceil_eps(v).max(1)
    }

    /// Smallest partner length that can match a record of length `l`.
    /// Always at least 1.
    #[inline]
    pub fn min_len(&self, l: usize) -> usize {
        let v = match self.sim {
            SimFn::Jaccard => self.tau * l as f64,
            SimFn::Cosine => self.tau * self.tau * l as f64,
            SimFn::Dice => self.tau * l as f64 / (2.0 - self.tau),
            SimFn::Overlap => return 1,
        };
        ceil_eps(v).max(1)
    }

    /// Largest partner length that can match a record of length `l`, or
    /// `None` when unbounded (Overlap similarity).
    #[inline]
    pub fn max_len(&self, l: usize) -> Option<usize> {
        let v = match self.sim {
            SimFn::Jaccard => l as f64 / self.tau,
            SimFn::Cosine => l as f64 / (self.tau * self.tau),
            SimFn::Dice => l as f64 * (2.0 - self.tau) / self.tau,
            SimFn::Overlap => return None,
        };
        Some(floor_eps(v))
    }

    /// `max_len` clamped to a known maximum record length in the stream.
    #[inline]
    pub fn max_len_clamped(&self, l: usize, domain_max: usize) -> usize {
        self.max_len(l).unwrap_or(domain_max).min(domain_max)
    }

    /// Whether the partner length check admits `l_partner` for `l`.
    #[inline]
    pub fn length_compatible(&self, l: usize, l_partner: usize) -> bool {
        l_partner >= self.min_len(l) && self.max_len(l).is_none_or(|m| l_partner <= m)
    }

    /// The streaming prefix length for a record of length `l`.
    ///
    /// Any two matching records share at least one token inside each
    /// other's first `prefix_len` tokens, regardless of which arrived
    /// first. Derived as `l − min_overlap(l, min_len(l)) + 1`, which is the
    /// loosest pair-specific prefix over all admissible partner lengths
    /// (min_overlap is non-decreasing in the partner length for every
    /// supported measure).
    #[inline]
    pub fn prefix_len(&self, l: usize) -> usize {
        let t = self.min_overlap(l, self.min_len(l));
        (l + 1).saturating_sub(t).clamp(1, l.max(1))
    }

    /// Pair-specific prefix length once both lengths are known (tighter than
    /// [`prefix_len`](Self::prefix_len); used for position-based pruning).
    #[inline]
    pub fn pair_prefix_len(&self, l: usize, l_partner: usize) -> usize {
        let t = self.min_overlap(l, l_partner);
        (l + 1).saturating_sub(t).clamp(1, l.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_bounds_match_hand_computation() {
        let t = Threshold::jaccard(0.8);
        // l=10: min_len = ceil(8) = 8, max_len = floor(12.5) = 12
        assert_eq!(t.min_len(10), 8);
        assert_eq!(t.max_len(10), Some(12));
        // min_overlap(10,10) = ceil(0.8/1.8*20) = ceil(8.888) = 9
        assert_eq!(t.min_overlap(10, 10), 9);
        // prefix = 10 - min_overlap(10, 8) + 1 = 10 - 8 + 1 = 3
        assert_eq!(t.min_overlap(10, 8), 8);
        assert_eq!(t.prefix_len(10), 3);
    }

    #[test]
    fn cosine_bounds() {
        let t = Threshold::new(SimFn::Cosine, 0.5);
        assert_eq!(t.min_len(16), 4); // ceil(0.25*16)
        assert_eq!(t.max_len(16), Some(64)); // floor(16/0.25)
        assert_eq!(t.min_overlap(16, 16), 8); // ceil(0.5*16)
    }

    #[test]
    fn dice_bounds() {
        let t = Threshold::new(SimFn::Dice, 0.8);
        // min_len(12) = ceil(0.8*12/1.2) = 8; max_len = floor(12*1.2/0.8) = 18
        assert_eq!(t.min_len(12), 8);
        assert_eq!(t.max_len(12), Some(18));
        assert_eq!(t.min_overlap(10, 14), 10); // ceil(0.8*24/2) = 10
    }

    #[test]
    fn overlap_has_no_length_filter() {
        let t = Threshold::new(SimFn::Overlap, 0.7);
        assert_eq!(t.min_len(100), 1);
        assert_eq!(t.max_len(100), None);
        assert!(t.length_compatible(100, 1_000_000));
        // Prefix degenerates to the whole record.
        assert_eq!(t.prefix_len(10), 10);
    }

    #[test]
    fn tau_one_means_equality() {
        let t = Threshold::jaccard(1.0);
        assert_eq!(t.min_len(7), 7);
        assert_eq!(t.max_len(7), Some(7));
        assert_eq!(t.min_overlap(7, 7), 7);
        assert_eq!(t.prefix_len(7), 1);
        assert!(t.matches(7, 7, 7));
        assert!(!t.matches(6, 7, 7));
    }

    #[test]
    fn similarity_values() {
        let j = Threshold::jaccard(0.5);
        assert!((j.similarity(2, 3, 3) - 0.5).abs() < 1e-12);
        let c = Threshold::new(SimFn::Cosine, 0.5);
        assert!((c.similarity(2, 4, 4) - 0.5).abs() < 1e-12);
        let d = Threshold::new(SimFn::Dice, 0.5);
        assert!((d.similarity(2, 4, 4) - 0.5).abs() < 1e-12);
        let o = Threshold::new(SimFn::Overlap, 0.5);
        assert!((o.similarity(2, 4, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_overlap_never_matches() {
        for f in [SimFn::Jaccard, SimFn::Cosine, SimFn::Dice, SimFn::Overlap] {
            let t = Threshold::new(f, 0.1);
            assert!(!t.matches(0, 5, 5));
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn zero_tau_rejected() {
        let _ = Threshold::jaccard(0.0);
    }

    #[test]
    fn max_len_clamped_respects_domain() {
        let t = Threshold::jaccard(0.5);
        assert_eq!(t.max_len_clamped(10, 15), 15); // floor(20) clamped
        assert_eq!(t.max_len_clamped(10, 100), 20);
        let o = Threshold::new(SimFn::Overlap, 0.5);
        assert_eq!(o.max_len_clamped(10, 64), 64);
    }

    fn all_fns() -> Vec<SimFn> {
        vec![SimFn::Jaccard, SimFn::Cosine, SimFn::Dice, SimFn::Overlap]
    }

    proptest! {
        /// min_overlap is the true threshold point: overlap = min_overlap
        /// matches (when feasible), overlap = min_overlap - 1 does not.
        #[test]
        fn min_overlap_is_tight(
            f_idx in 0usize..4, tau in 0.05f64..=1.0,
            l1 in 1usize..200, l2 in 1usize..200,
        ) {
            let t = Threshold::new(all_fns()[f_idx], tau);
            let mo = t.min_overlap(l1, l2);
            if mo <= l1.min(l2) {
                prop_assert!(t.matches(mo, l1, l2),
                    "min_overlap {mo} should match for l=({l1},{l2}) tau={tau}");
            }
            if mo > 1 && mo - 1 <= l1.min(l2) {
                prop_assert!(!t.matches(mo - 1, l1, l2),
                    "min_overlap-1 must not match");
            }
        }

        /// The length filter is safe: any pair of lengths that can host a
        /// matching overlap is length_compatible.
        #[test]
        fn length_filter_is_safe(
            f_idx in 0usize..4, tau in 0.05f64..=1.0,
            l1 in 1usize..150, l2 in 1usize..150,
        ) {
            let t = Threshold::new(all_fns()[f_idx], tau);
            let best = l1.min(l2); // overlap of a containment pair
            if t.matches(best, l1, l2) {
                prop_assert!(t.length_compatible(l1, l2),
                    "lengths ({l1},{l2}) host a match at tau={tau} but were filtered");
                prop_assert!(t.length_compatible(l2, l1), "length filter must be symmetric-safe");
            }
        }

        /// min_overlap is non-decreasing in the partner length — the
        /// monotonicity prefix_len relies on.
        #[test]
        fn min_overlap_monotone_in_partner(
            f_idx in 0usize..4, tau in 0.05f64..=1.0, l in 1usize..150,
        ) {
            let t = Threshold::new(all_fns()[f_idx], tau);
            let mut prev = 0;
            for lp in 1..=160usize {
                let mo = t.min_overlap(l, lp);
                prop_assert!(mo >= prev);
                prev = mo;
            }
        }

        /// prefix_len is the loosest pair prefix over admissible partners.
        #[test]
        fn prefix_covers_all_pairs(
            f_idx in 0usize..4, tau in 0.05f64..=1.0, l in 1usize..150,
        ) {
            let t = Threshold::new(all_fns()[f_idx], tau);
            let p = t.prefix_len(l);
            let hi = t.max_len_clamped(l, 300);
            for lp in t.min_len(l)..=hi {
                prop_assert!(t.pair_prefix_len(l, lp) <= p);
            }
        }
    }
}
