//! Join-execution counters.
//!
//! Every joiner maintains a [`JoinStats`]; the experiment harness reads them
//! to report candidate counts, verification costs and bundle behaviour
//! (figures F5–F7 of the evaluation).

use std::fmt;

/// Counters describing the work a joiner performed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JoinStats {
    /// Records probed against the index.
    pub probed: u64,
    /// Records inserted into the index.
    pub indexed: u64,
    /// Posting-list entries touched during candidate generation.
    pub posting_hits: u64,
    /// Distinct candidates after deduplication.
    pub candidates: u64,
    /// Candidates removed by the length filter.
    pub length_filtered: u64,
    /// Candidates removed by the positional filter (PPJoin only).
    pub position_filtered: u64,
    /// Candidates removed by the suffix filter (PPJoin+ only).
    pub suffix_filtered: u64,
    /// Full verifications performed (merge-based).
    pub verifications: u64,
    /// Token-merge steps spent in verification (cost proxy).
    pub verify_steps: u64,
    /// Cheap delta verifications performed (bundle batch verification).
    pub delta_verifications: u64,
    /// Result pairs emitted.
    pub results: u64,
    /// Index postings created.
    pub postings_created: u64,
    /// Records (or bundle members) evicted by the window.
    pub evicted: u64,
    /// Bundles created (bundle joiner only).
    pub bundles_created: u64,
    /// Records absorbed into an existing bundle (bundle joiner only).
    pub bundle_absorbed: u64,
}

impl JoinStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another stats block into this one (for aggregating joiners).
    pub fn merge(&mut self, other: &JoinStats) {
        self.probed += other.probed;
        self.indexed += other.indexed;
        self.posting_hits += other.posting_hits;
        self.candidates += other.candidates;
        self.length_filtered += other.length_filtered;
        self.position_filtered += other.position_filtered;
        self.suffix_filtered += other.suffix_filtered;
        self.verifications += other.verifications;
        self.verify_steps += other.verify_steps;
        self.delta_verifications += other.delta_verifications;
        self.results += other.results;
        self.postings_created += other.postings_created;
        self.evicted += other.evicted;
        self.bundles_created += other.bundles_created;
        self.bundle_absorbed += other.bundle_absorbed;
    }

    /// Candidates per probe (selectivity of the filter stack).
    pub fn candidates_per_probe(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.candidates as f64 / self.probed as f64
        }
    }

    /// Fraction of records absorbed into bundles rather than founding one.
    pub fn absorb_ratio(&self) -> f64 {
        let total = self.bundles_created + self.bundle_absorbed;
        if total == 0 {
            0.0
        } else {
            self.bundle_absorbed as f64 / total as f64
        }
    }
}

impl fmt::Display for JoinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "probed             {:>12}", self.probed)?;
        writeln!(f, "indexed            {:>12}", self.indexed)?;
        writeln!(f, "posting hits       {:>12}", self.posting_hits)?;
        writeln!(f, "candidates         {:>12}", self.candidates)?;
        writeln!(f, "length filtered    {:>12}", self.length_filtered)?;
        writeln!(f, "position filtered  {:>12}", self.position_filtered)?;
        writeln!(f, "suffix filtered    {:>12}", self.suffix_filtered)?;
        writeln!(f, "verifications      {:>12}", self.verifications)?;
        writeln!(f, "verify steps       {:>12}", self.verify_steps)?;
        writeln!(f, "delta verifs       {:>12}", self.delta_verifications)?;
        writeln!(f, "results            {:>12}", self.results)?;
        writeln!(f, "postings created   {:>12}", self.postings_created)?;
        writeln!(f, "evicted            {:>12}", self.evicted)?;
        writeln!(f, "bundles created    {:>12}", self.bundles_created)?;
        write!(f, "bundle absorbed    {:>12}", self.bundle_absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = JoinStats {
            probed: 1,
            results: 2,
            ..JoinStats::new()
        };
        let b = JoinStats {
            probed: 10,
            results: 20,
            bundles_created: 3,
            ..JoinStats::new()
        };
        a.merge(&b);
        assert_eq!(a.probed, 11);
        assert_eq!(a.results, 22);
        assert_eq!(a.bundles_created, 3);
    }

    #[test]
    fn ratios_handle_zero() {
        let s = JoinStats::new();
        assert_eq!(s.candidates_per_probe(), 0.0);
        assert_eq!(s.absorb_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = JoinStats {
            probed: 4,
            candidates: 10,
            bundles_created: 1,
            bundle_absorbed: 3,
            ..JoinStats::new()
        };
        assert!((s.candidates_per_probe() - 2.5).abs() < 1e-12);
        assert!((s.absorb_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_complete() {
        let s = JoinStats::new();
        let text = s.to_string();
        for key in ["probed", "candidates", "results", "bundle absorbed"] {
            assert!(text.contains(key), "missing {key} in display");
        }
    }
}
