//! Intersection-size computation: the verification stage of the join.
//!
//! Three flavours cover the joiners' needs:
//!
//! * [`overlap`] — plain sorted-merge, used by the naive joiner and tests;
//! * [`overlap_with_min`] — merge with the classic *early termination*
//!   bound: at every step, if the tokens remaining on either side cannot
//!   lift the running overlap to the requirement, verification aborts;
//! * [`overlap_from`] — resumes a merge after known prefix positions with an
//!   already-accumulated overlap (PPJoin-style verification);
//! * [`intersect_small`] — asymmetric intersection of a tiny sorted slice
//!   against a large one (binary search per element), used by bundle batch
//!   verification to apply per-member token deltas.

use ssj_text::TokenId;

/// Exact `|a ∩ b|` of two strictly ascending token slices.
#[inline]
pub fn overlap(a: &[TokenId], b: &[TokenId]) -> usize {
    match overlap_from(a, b, 0, 0, 0, 0) {
        Some(o) => o,
        None => unreachable!("min_required = 0 never aborts"),
    }
}

/// `|a ∩ b|` if it reaches `min_required`, else `None` (early termination).
#[inline]
pub fn overlap_with_min(a: &[TokenId], b: &[TokenId], min_required: usize) -> Option<usize> {
    overlap_from(a, b, 0, 0, 0, min_required)
}

/// Resumes a merge of `a[start_a..]` with `b[start_b..]`, starting from an
/// already-known overlap `acc`, early-terminating against `min_required`
/// (`0` disables termination and yields the exact total).
pub fn overlap_from(
    a: &[TokenId],
    b: &[TokenId],
    start_a: usize,
    start_b: usize,
    acc: usize,
    min_required: usize,
) -> Option<usize> {
    let mut i = start_a;
    let mut j = start_b;
    let mut o = acc;
    // Upper bound on the final overlap; shrinks as we consume tokens
    // without matching. Checked on every non-match step.
    while i < a.len() && j < b.len() {
        let remaining = (a.len() - i).min(b.len() - j);
        if o + remaining < min_required {
            return None;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    if o >= min_required {
        Some(o)
    } else {
        None
    }
}

/// `|small ∩ big|` where `small` is expected to be a handful of tokens:
/// binary-searches each element of `small` in `big`. `O(|small|·log|big|)`.
#[inline]
pub fn intersect_small(small: &[TokenId], big: &[TokenId]) -> usize {
    if small.is_empty() || big.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut lo = 0usize;
    for &t in small {
        // `small` is sorted too, so the search window only moves right.
        match big[lo..].binary_search(&t) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= big.len() {
            break;
        }
    }
    count
}

/// Recursion cap for [`hamming_lower_bound`]: deeper probing gives tighter
/// bounds at higher cost; 4 levels matches the PPJoin+ paper's sweet spot.
const SUFFIX_FILTER_MAX_DEPTH: usize = 4;

/// A lower bound on the Hamming distance `|x| + |y| − 2·|x ∩ y|` of two
/// strictly ascending token slices — the PPJoin+ *suffix filter* primitive.
///
/// The sets are recursively split around the median token of `y`; the
/// distance decomposes exactly across the split, and each side is bounded
/// from below by its size difference. Recursion aborts early once the
/// accumulated bound exceeds `hd_max` (the caller prunes in that case), so
/// the typical cost is logarithmic rather than linear.
pub fn hamming_lower_bound(x: &[TokenId], y: &[TokenId], hd_max: usize) -> usize {
    hamming_lb_rec(x, y, hd_max as isize, 0) as usize
}

fn hamming_lb_rec(x: &[TokenId], y: &[TokenId], hd_max: isize, depth: usize) -> isize {
    if depth >= SUFFIX_FILTER_MAX_DEPTH || x.is_empty() || y.is_empty() {
        return (x.len() as isize - y.len() as isize).abs();
    }
    let mid = y.len() / 2;
    let pivot = y[mid];
    let (yl, yr) = (&y[..mid], &y[mid + 1..]);
    let (xl, xr, shared) = match x.binary_search(&pivot) {
        Ok(p) => (&x[..p], &x[p + 1..], true),
        Err(p) => (&x[..p], &x[p..], false),
    };
    // The pivot itself contributes 0 if present in both, else 1.
    let pivot_diff = isize::from(!shared);
    let left_floor = (xl.len() as isize - yl.len() as isize).abs();
    let right_floor = (xr.len() as isize - yr.len() as isize).abs();
    if left_floor + right_floor + pivot_diff > hd_max {
        return left_floor + right_floor + pivot_diff;
    }
    let left = hamming_lb_rec(xl, yl, hd_max - right_floor - pivot_diff, depth + 1);
    if left + right_floor + pivot_diff > hd_max {
        return left + right_floor + pivot_diff;
    }
    let right = hamming_lb_rec(xr, yr, hd_max - left - pivot_diff, depth + 1);
    left + right + pivot_diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tid(xs: &[u32]) -> Vec<TokenId> {
        xs.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn overlap_basic() {
        assert_eq!(overlap(&tid(&[1, 3, 5]), &tid(&[2, 3, 5, 7])), 2);
        assert_eq!(overlap(&tid(&[1, 2]), &tid(&[3, 4])), 0);
        assert_eq!(overlap(&tid(&[]), &tid(&[1])), 0);
        assert_eq!(overlap(&tid(&[1, 2, 3]), &tid(&[1, 2, 3])), 3);
    }

    #[test]
    fn early_termination_triggers() {
        // Overlap is 1 but 3 required: must abort.
        assert_eq!(overlap_with_min(&tid(&[1, 9]), &tid(&[1, 2, 3]), 3), None);
        // Exactly reaching the requirement succeeds.
        assert_eq!(
            overlap_with_min(&tid(&[1, 2, 3]), &tid(&[1, 2, 4]), 2),
            Some(2)
        );
    }

    #[test]
    fn early_termination_zero_is_exact() {
        assert_eq!(overlap_with_min(&tid(&[1, 5]), &tid(&[2, 6]), 0), Some(0));
    }

    #[test]
    fn resume_from_positions() {
        let a = tid(&[1, 2, 3, 4, 5]);
        let b = tid(&[2, 3, 9]);
        // Pretend the prefix scan already matched token 2 (a[1], b[0]).
        let o = overlap_from(&a, &b, 2, 1, 1, 0).unwrap();
        assert_eq!(o, 2); // token 3 found in the suffixes
        assert_eq!(o, overlap(&a, &b));
    }

    #[test]
    fn intersect_small_matches_merge() {
        let small = tid(&[3, 7, 100]);
        let big = tid(&[1, 2, 3, 5, 7, 9, 11]);
        assert_eq!(intersect_small(&small, &big), 2);
        assert_eq!(intersect_small(&tid(&[]), &big), 0);
        assert_eq!(intersect_small(&small, &tid(&[])), 0);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<TokenId>> {
        proptest::collection::btree_set(0u32..500, 0..80)
            .prop_map(|s| s.into_iter().map(TokenId).collect())
    }

    proptest! {
        #[test]
        fn overlap_agrees_with_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().filter(|t| b.contains(t)).count();
            prop_assert_eq!(overlap(&a, &b), naive);
            prop_assert_eq!(intersect_small(&a, &b), naive);
            prop_assert_eq!(intersect_small(&b, &a), naive);
        }

        #[test]
        fn early_termination_is_consistent(
            a in sorted_set(), b in sorted_set(), req in 0usize..50
        ) {
            let exact = overlap(&a, &b);
            match overlap_with_min(&a, &b, req) {
                Some(o) => {
                    prop_assert_eq!(o, exact);
                    prop_assert!(o >= req);
                }
                None => prop_assert!(exact < req),
            }
        }

        #[test]
        fn resume_equals_full_merge(a in sorted_set(), b in sorted_set()) {
            // Resuming from the very start with acc=0 must equal `overlap`.
            let exact = overlap(&a, &b);
            prop_assert_eq!(overlap_from(&a, &b, 0, 0, 0, 0), Some(exact));
        }

        /// The suffix-filter bound never exceeds the true Hamming distance
        /// (the safety property: pruning on it cannot drop true matches).
        #[test]
        fn hamming_bound_is_a_lower_bound(
            a in sorted_set(), b in sorted_set(), hd_max in 0usize..100
        ) {
            let true_hamming = a.len() + b.len() - 2 * overlap(&a, &b);
            let bound = hamming_lower_bound(&a, &b, hd_max);
            prop_assert!(bound <= true_hamming,
                "bound {bound} exceeds true hamming {true_hamming}");
        }
    }

    #[test]
    fn hamming_bound_identical_sets_is_zero() {
        let a = tid(&[1, 2, 3, 4, 5]);
        assert_eq!(hamming_lower_bound(&a, &a, 10), 0);
    }

    #[test]
    fn hamming_bound_disjoint_sets_detected() {
        let a = tid(&[1, 2, 3, 4]);
        let b = tid(&[10, 20, 30, 40]);
        // True hamming is 8; the bound must exceed a tight budget so the
        // filter actually prunes.
        assert!(hamming_lower_bound(&a, &b, 1) > 1);
    }

    #[test]
    fn hamming_bound_empty_side() {
        let a = tid(&[1, 2, 3]);
        assert_eq!(hamming_lower_bound(&a, &tid(&[]), 5), 3);
        assert_eq!(hamming_lower_bound(&tid(&[]), &tid(&[]), 5), 0);
    }
}
