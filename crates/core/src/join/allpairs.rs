//! Streaming AllPairs: prefix-index candidate generation + length filter.

use super::{JoinConfig, MatchPair, StreamJoiner};
use crate::index::{
    compact_all, should_compact, InvertedIndex, Posting, RecordStore, SeenFilter, Slot,
};
use crate::stats::JoinStats;
use crate::verify;
use crate::window::EvictionQueue;
use ssj_text::Record;

/// Prefix-filtering joiner without positional information (Bayardo et al.'s
/// AllPairs adapted to arbitrary-arrival-order streams: both probe and index
/// use the streaming prefix).
#[derive(Debug)]
pub struct AllPairsJoiner {
    cfg: JoinConfig,
    store: RecordStore,
    index: InvertedIndex,
    queue: EvictionQueue<Slot>,
    seen: SeenFilter,
    stats: JoinStats,
    /// Scratch candidate buffer, reused across probes.
    candidates: Vec<Slot>,
}

impl AllPairsJoiner {
    /// An AllPairs joiner with the given threshold and window.
    pub fn new(cfg: JoinConfig) -> Self {
        Self {
            cfg,
            store: RecordStore::new(),
            index: InvertedIndex::new(),
            queue: EvictionQueue::new(),
            seen: SeenFilter::new(),
            stats: JoinStats::new(),
            candidates: Vec::new(),
        }
    }

    fn evict(&mut self, probe_id: u64, probe_ts: u64) {
        let store = &mut self.store;
        let stats = &mut self.stats;
        self.queue
            .drain_expired(self.cfg.window, probe_id, probe_ts, |slot| {
                store.remove(slot);
                stats.evicted += 1;
            });
        if should_compact(store.live(), store.dead()) {
            compact_all(store, &mut self.index, &mut self.queue, &mut self.seen);
        }
    }
}

impl StreamJoiner for AllPairsJoiner {
    fn name(&self) -> &'static str {
        "allpairs"
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.evict(record.id().0, record.timestamp());
        let t = self.cfg.threshold;
        let lr = record.len();

        // Candidate generation: any stored record sharing a prefix token.
        self.seen.next_epoch();
        self.candidates.clear();
        {
            let store = &self.store;
            let seen = &mut self.seen;
            let candidates = &mut self.candidates;
            let stats = &mut self.stats;
            for &tok in record.prefix(t.prefix_len(lr)) {
                self.index.scan_prune(
                    tok,
                    |slot| store.get(slot).is_some(),
                    |p| {
                        stats.posting_hits += 1;
                        if seen.first_visit(p.slot) {
                            candidates.push(p.slot);
                        }
                    },
                );
            }
        }

        // Filter + verify.
        for i in 0..self.candidates.len() {
            let slot = self.candidates[i];
            let s = self.store.get(slot).expect("candidates are live");
            self.stats.candidates += 1;
            let ls = s.len();
            if !t.length_compatible(lr, ls) {
                self.stats.length_filtered += 1;
                continue;
            }
            let mo = t.min_overlap(lr, ls);
            self.stats.verifications += 1;
            self.stats.verify_steps += (lr + ls) as u64;
            if let Some(o) = verify::overlap_with_min(record.tokens(), s.tokens(), mo) {
                if t.matches(o, lr, ls) {
                    self.stats.results += 1;
                    out.push(MatchPair {
                        earlier: s.id(),
                        later: record.id(),
                        similarity: t.similarity(o, lr, ls),
                    });
                }
            }
        }
        self.stats.probed += 1;
    }

    fn insert(&mut self, record: &Record) {
        self.evict(record.id().0, record.timestamp());
        let slot = self.store.insert(record.clone());
        let p = self.cfg.threshold.prefix_len(record.len());
        for (pos, &tok) in record.prefix(p).iter().enumerate() {
            self.index.add(
                tok,
                Posting {
                    slot,
                    pos: pos as u32,
                },
            );
            self.stats.postings_created += 1;
        }
        self.queue.push(record.id().0, record.timestamp(), slot);
        self.stats.indexed += 1;
    }

    fn window_snapshot(&self) -> Vec<Record> {
        self.queue
            .iter()
            .map(|&slot| self.store.get(slot).expect("queued slot is live").clone())
            .collect()
    }

    fn stats(&self) -> &JoinStats {
        &self.stats
    }

    fn stored(&self) -> usize {
        self.store.live()
    }

    fn postings(&self) -> usize {
        self.index.postings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{run_stream, NaiveJoiner};
    use crate::sim::{SimFn, Threshold};
    use crate::window::Window;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    fn assert_same_as_naive(cfg: JoinConfig, records: &[Record]) {
        let mut naive = NaiveJoiner::new(cfg);
        let mut ap = AllPairsJoiner::new(cfg);
        let mut expect: Vec<_> = run_stream(&mut naive, records)
            .iter()
            .map(|m| m.key())
            .collect();
        let mut got: Vec<_> = run_stream(&mut ap, records)
            .iter()
            .map(|m| m.key())
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn agrees_with_naive_on_small_case() {
        let records = vec![
            rec(0, &[1, 2, 3, 4]),
            rec(1, &[1, 2, 3, 5]),
            rec(2, &[10, 11]),
            rec(3, &[1, 2, 3, 4, 5]),
            rec(4, &[10, 11]),
        ];
        assert_same_as_naive(JoinConfig::jaccard(0.6), &records);
    }

    #[test]
    fn agrees_with_naive_windowed() {
        let records: Vec<Record> = (0..30)
            .map(|i| rec(i, &[(i % 5) as u32 * 3, (i % 5) as u32 * 3 + 1, 100]))
            .collect();
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.5),
            window: Window::Count(7),
        };
        assert_same_as_naive(cfg, &records);
    }

    #[test]
    fn agrees_with_naive_overlap_measure() {
        let records = vec![
            rec(0, &[1, 2, 3, 4, 5, 6, 7, 8]),
            rec(1, &[1, 2]),
            rec(2, &[7, 8, 9]),
        ];
        let cfg = JoinConfig {
            threshold: Threshold::new(SimFn::Overlap, 0.9),
            window: Window::Unbounded,
        };
        assert_same_as_naive(cfg, &records);
    }

    #[test]
    fn prunes_with_prefix_index() {
        let mut j = AllPairsJoiner::new(JoinConfig::jaccard(0.9));
        let mut out = Vec::new();
        // Disjoint records: no posting hits at all after the first.
        for i in 0..20u64 {
            let base = (i as u32) * 10;
            j.process(&rec(i, &[base, base + 1, base + 2]), &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(j.stats().candidates, 0);
        assert_eq!(j.stats().verifications, 0);
    }

    #[test]
    fn eviction_drops_index_entries() {
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.8),
            window: Window::Count(2),
        };
        let mut j = AllPairsJoiner::new(cfg);
        let mut out = Vec::new();
        for i in 0..10u64 {
            j.process(&rec(i, &[1, 2, 3]), &mut out);
        }
        assert!(j.stored() <= 3);
        // Each probe can match at most the 2 records in its window.
        let last_probe_matches = out.iter().filter(|m| m.later == RecordId(9)).count();
        assert_eq!(last_probe_matches, 2);
    }

    #[test]
    fn stats_track_probes_and_inserts() {
        let mut j = AllPairsJoiner::new(JoinConfig::jaccard(0.7));
        let mut out = Vec::new();
        j.process(&rec(0, &[1, 2]), &mut out);
        j.process(&rec(1, &[1, 2]), &mut out);
        assert_eq!(j.stats().probed, 2);
        assert_eq!(j.stats().indexed, 2);
        assert_eq!(j.stats().results, 1);
        assert!(j.postings() > 0);
    }
}
