//! The naive joiner: verify the probe against every live record.
//!
//! Quadratic and filter-free — it exists as the ground truth every other
//! joiner is checked against, and as the "no filtering" baseline in the
//! ablation benchmarks.

use super::{JoinConfig, MatchPair, StreamJoiner};
use crate::stats::JoinStats;
use crate::verify;
use crate::window::EvictionQueue;
use ssj_text::Record;

/// Scan-everything reference joiner.
#[derive(Debug)]
pub struct NaiveJoiner {
    cfg: JoinConfig,
    live: EvictionQueue<Record>,
    stats: JoinStats,
}

impl NaiveJoiner {
    /// A naive joiner with the given threshold and window.
    pub fn new(cfg: JoinConfig) -> Self {
        Self {
            cfg,
            live: EvictionQueue::new(),
            stats: JoinStats::new(),
        }
    }
}

impl StreamJoiner for NaiveJoiner {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        let stats = &mut self.stats;
        stats.evicted +=
            self.live
                .drain_expired(self.cfg.window, record.id().0, record.timestamp(), |_| {})
                as u64;
        let t = self.cfg.threshold;
        for s in self.live.iter() {
            stats.verifications += 1;
            stats.verify_steps += (record.len() + s.len()) as u64;
            let o = verify::overlap(record.tokens(), s.tokens());
            if t.matches(o, record.len(), s.len()) {
                stats.results += 1;
                out.push(MatchPair {
                    earlier: s.id(),
                    later: record.id(),
                    similarity: t.similarity(o, record.len(), s.len()),
                });
            }
        }
        stats.probed += 1;
    }

    fn insert(&mut self, record: &Record) {
        self.stats.evicted +=
            self.live
                .drain_expired(self.cfg.window, record.id().0, record.timestamp(), |_| {})
                as u64;
        self.live
            .push(record.id().0, record.timestamp(), record.clone());
        self.stats.indexed += 1;
    }

    fn window_snapshot(&self) -> Vec<Record> {
        self.live.iter().cloned().collect()
    }

    fn stats(&self) -> &JoinStats {
        &self.stats
    }

    fn stored(&self) -> usize {
        self.live.len()
    }

    fn postings(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::run_stream;
    use crate::sim::Threshold;
    use crate::window::Window;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    #[test]
    fn finds_identical_pair() {
        let mut j = NaiveJoiner::new(JoinConfig::jaccard(0.8));
        let out = run_stream(&mut j, &[rec(0, &[1, 2, 3]), rec(1, &[1, 2, 3])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].earlier, RecordId(0));
        assert_eq!(out[0].later, RecordId(1));
        assert!((out[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_threshold() {
        let mut j = NaiveJoiner::new(JoinConfig::jaccard(0.8));
        // Jaccard({1,2,3},{1,2,4}) = 2/4 = 0.5 < 0.8
        let out = run_stream(&mut j, &[rec(0, &[1, 2, 3]), rec(1, &[1, 2, 4])]);
        assert!(out.is_empty());
    }

    #[test]
    fn no_self_match() {
        let mut j = NaiveJoiner::new(JoinConfig::jaccard(0.1));
        let out = run_stream(&mut j, &[rec(0, &[1, 2])]);
        assert!(out.is_empty());
    }

    #[test]
    fn count_window_evicts() {
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.9),
            window: Window::Count(1),
        };
        let mut j = NaiveJoiner::new(cfg);
        // r2 matches r0 but r0 is out of the (size-1) window by then.
        let out = run_stream(&mut j, &[rec(0, &[1, 2]), rec(1, &[7, 8]), rec(2, &[1, 2])]);
        assert!(out.is_empty());
        assert_eq!(j.stored(), 2); // r1 evicted... r1+r2 remain after final insert
        assert!(j.stats().evicted >= 1);
    }

    #[test]
    fn all_pairs_of_triplet() {
        let mut j = NaiveJoiner::new(JoinConfig::jaccard(0.99));
        let out = run_stream(&mut j, &[rec(0, &[4, 5]), rec(1, &[4, 5]), rec(2, &[4, 5])]);
        // (0,1), (0,2), (1,2)
        assert_eq!(out.len(), 3);
        let keys: Vec<_> = out.iter().map(|m| m.key()).collect();
        assert!(keys.contains(&(0, 1)));
        assert!(keys.contains(&(0, 2)));
        assert!(keys.contains(&(1, 2)));
    }
}
