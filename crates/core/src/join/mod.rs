//! Streaming local join algorithms.
//!
//! Every joiner implements [`StreamJoiner`]: probe the index with an
//! incoming record, then (for self-joins) insert it. The four
//! implementations trade filtering power for index maintenance cost:
//!
//! | joiner | candidate generation | extra filters | verification |
//! |---|---|---|---|
//! | [`NaiveJoiner`] | none (scan) | — | full merge |
//! | [`AllPairsJoiner`] | prefix index | length | early-terminated merge |
//! | [`PpJoinJoiner`] | prefix index | length + positional | resumed merge |
//! | [`BundleJoiner`] | bundle prefix index | bundle length bounds | shared + per-member delta |
//!
//! All four apply the identical acceptance predicate
//! [`Threshold::matches`](crate::sim::Threshold::matches), so their result
//! sets are interchangeable — a property the test suite enforces.

mod allpairs;
pub mod bistream;
mod bundle;
mod naive;
mod ppjoin;

pub use allpairs::AllPairsJoiner;
pub use bistream::{merge_streams, run_bistream, BiStreamJoiner, Side};
pub use bundle::{BundleConfig, BundleJoiner};
pub use naive::NaiveJoiner;
pub use ppjoin::PpJoinJoiner;

use crate::sim::Threshold;
use crate::stats::JoinStats;
use crate::window::Window;
use ssj_text::{Record, RecordId};

/// One join result: an (earlier, later) record pair and its similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchPair {
    /// The record that arrived first (it was in the index).
    pub earlier: RecordId,
    /// The record that arrived later (it was the probe).
    pub later: RecordId,
    /// Exact similarity under the configured measure.
    pub similarity: f64,
}

impl MatchPair {
    /// Canonical key for set comparisons in tests and dedup.
    pub fn key(&self) -> (u64, u64) {
        (self.earlier.0, self.later.0)
    }
}

/// Threshold + window: the two knobs every joiner shares.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Similarity function and threshold τ.
    pub threshold: Threshold,
    /// Sliding-window policy.
    pub window: Window,
}

impl JoinConfig {
    /// Unbounded-window Jaccard config (the common benchmark setting).
    pub fn jaccard(tau: f64) -> Self {
        Self {
            threshold: Threshold::jaccard(tau),
            window: Window::Unbounded,
        }
    }

    /// Replaces the window policy.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }
}

/// A streaming set-similarity self-join operator.
///
/// In the distributed setting a joiner may receive *probe-only* records
/// (records indexed elsewhere) and *insert-only* records (records probing
/// elsewhere), which is why the two operations are exposed separately;
/// [`process`](Self::process) is the single-node probe-then-insert step.
pub trait StreamJoiner {
    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Finds all indexed records matching `record` (without inserting it)
    /// and appends them to `out`. Also advances the eviction watermark.
    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>);

    /// Adds `record` to the index.
    fn insert(&mut self, record: &Record);

    /// Probe, then insert: the self-join step for one arrival.
    fn process(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.probe(record, out);
        self.insert(record);
    }

    /// Execution counters.
    fn stats(&self) -> &JoinStats;

    /// Live records currently indexed.
    fn stored(&self) -> usize;

    /// Current inverted-index size in postings (0 for the naive joiner).
    fn postings(&self) -> usize;
}

impl StreamJoiner for Box<dyn StreamJoiner + Send> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.as_mut().probe(record, out)
    }

    fn insert(&mut self, record: &Record) {
        self.as_mut().insert(record)
    }

    fn process(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.as_mut().process(record, out)
    }

    fn stats(&self) -> &JoinStats {
        self.as_ref().stats()
    }

    fn stored(&self) -> usize {
        self.as_ref().stored()
    }

    fn postings(&self) -> usize {
        self.as_ref().postings()
    }
}

/// Runs a whole stream through a joiner, collecting every result.
/// Convenience for tests and examples.
pub fn run_stream<J: StreamJoiner + ?Sized>(joiner: &mut J, records: &[Record]) -> Vec<MatchPair> {
    let mut out = Vec::new();
    for r in records {
        joiner.process(r, &mut out);
    }
    out
}
