//! Streaming local join algorithms.
//!
//! Every joiner implements [`StreamJoiner`]: probe the index with an
//! incoming record, then (for self-joins) insert it. The four
//! implementations trade filtering power for index maintenance cost:
//!
//! | joiner | candidate generation | extra filters | verification |
//! |---|---|---|---|
//! | [`NaiveJoiner`] | none (scan) | — | full merge |
//! | [`AllPairsJoiner`] | prefix index | length | early-terminated merge |
//! | [`PpJoinJoiner`] | prefix index | length + positional | resumed merge |
//! | [`BundleJoiner`] | bundle prefix index | bundle length bounds | shared + per-member delta |
//!
//! All four apply the identical acceptance predicate
//! [`Threshold::matches`](crate::sim::Threshold::matches), so their result
//! sets are interchangeable — a property the test suite enforces.

mod allpairs;
pub mod bistream;
mod bundle;
mod naive;
mod ppjoin;

pub use allpairs::AllPairsJoiner;
pub use bistream::{merge_streams, run_bistream, BiStreamJoiner, Side};
pub use bundle::{BundleConfig, BundleJoiner};
pub use naive::NaiveJoiner;
pub use ppjoin::PpJoinJoiner;

use crate::sim::Threshold;
use crate::stats::JoinStats;
use crate::window::Window;
use ssj_text::{Record, RecordId};

/// One join result: an (earlier, later) record pair and its similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchPair {
    /// The record that arrived first (it was in the index).
    pub earlier: RecordId,
    /// The record that arrived later (it was the probe).
    pub later: RecordId,
    /// Exact similarity under the configured measure.
    pub similarity: f64,
}

impl MatchPair {
    /// Canonical key for set comparisons in tests and dedup.
    pub fn key(&self) -> (u64, u64) {
        (self.earlier.0, self.later.0)
    }
}

/// Threshold + window: the two knobs every joiner shares.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Similarity function and threshold τ.
    pub threshold: Threshold,
    /// Sliding-window policy.
    pub window: Window,
}

impl JoinConfig {
    /// Unbounded-window Jaccard config (the common benchmark setting).
    pub fn jaccard(tau: f64) -> Self {
        Self {
            threshold: Threshold::jaccard(tau),
            window: Window::Unbounded,
        }
    }

    /// Replaces the window policy.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }
}

/// A streaming set-similarity self-join operator.
///
/// In the distributed setting a joiner may receive *probe-only* records
/// (records indexed elsewhere) and *insert-only* records (records probing
/// elsewhere), which is why the two operations are exposed separately;
/// [`process`](Self::process) is the single-node probe-then-insert step.
pub trait StreamJoiner {
    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Finds all indexed records matching `record` (without inserting it)
    /// and appends them to `out`. Also advances the eviction watermark.
    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>);

    /// Adds `record` to the index.
    fn insert(&mut self, record: &Record);

    /// Probe, then insert: the self-join step for one arrival.
    fn process(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.probe(record, out);
        self.insert(record);
    }

    /// The live window contents as full records, in arrival order.
    ///
    /// Together with [`restore`](Self::restore) this is the recovery path:
    /// a replacement joiner rebuilds its index from the in-window records in
    /// O(window) work instead of re-processing the whole stream. Joiners
    /// that store deltas rather than full records (the bundle joiner)
    /// reconstruct each record exactly, so
    /// `fresh.restore(&old.window_snapshot())` always reproduces the old
    /// joiner's visible index state.
    fn window_snapshot(&self) -> Vec<Record>;

    /// Rebuilds index state from `records`, the in-window portion of the
    /// stream in arrival order. Index-only: nothing is probed and no
    /// results are produced. The default insert loop costs O(window)
    /// because each insert's eviction scan only ever touches
    /// already-expired entries.
    fn restore(&mut self, records: &[Record]) {
        for r in records {
            self.insert(r);
        }
    }

    /// Execution counters.
    fn stats(&self) -> &JoinStats;

    /// Live records currently indexed.
    fn stored(&self) -> usize;

    /// Current inverted-index size in postings (0 for the naive joiner).
    fn postings(&self) -> usize;
}

impl StreamJoiner for Box<dyn StreamJoiner + Send> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.as_mut().probe(record, out)
    }

    fn insert(&mut self, record: &Record) {
        self.as_mut().insert(record)
    }

    fn process(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.as_mut().process(record, out)
    }

    fn window_snapshot(&self) -> Vec<Record> {
        self.as_ref().window_snapshot()
    }

    fn restore(&mut self, records: &[Record]) {
        self.as_mut().restore(records)
    }

    fn stats(&self) -> &JoinStats {
        self.as_ref().stats()
    }

    fn stored(&self) -> usize {
        self.as_ref().stored()
    }

    fn postings(&self) -> usize {
        self.as_ref().postings()
    }
}

/// Runs a whole stream through a joiner, collecting every result.
/// Convenience for tests and examples.
pub fn run_stream<J: StreamJoiner + ?Sized>(joiner: &mut J, records: &[Record]) -> Vec<MatchPair> {
    let mut out = Vec::new();
    for r in records {
        joiner.process(r, &mut out);
    }
    out
}

/// One in how many arrivals [`run_stream_profiled`] times: a systematic
/// 1-in-8 sample keeps the two clock reads off seven of every eight
/// records, so per-record latencies well under a microsecond can be
/// profiled without the clock dominating the measurement.
pub const PROFILE_SAMPLE_EVERY: usize = 8;

/// Runs a whole stream like [`run_stream`], additionally sampling the
/// wall-clock latency of one arrival in every [`PROFILE_SAMPLE_EVERY`]
/// into `profile` under [`obs::Stage::Execute`].
///
/// This is the local-join counterpart of the distributed driver's
/// per-stage profile, used by the observability overhead benchmark to put
/// a number on what the instrumentation itself costs. Every record goes
/// through the same fused [`process`](StreamJoiner::process) step as
/// [`run_stream`] (timing must never force a joiner onto a slower
/// split probe/insert path), so the only added work is two clock reads
/// and one histogram increment per sampled arrival.
pub fn run_stream_profiled<J: StreamJoiner + ?Sized>(
    joiner: &mut J,
    records: &[Record],
    profile: &mut obs::StageProfile,
) -> Vec<MatchPair> {
    let mut out = Vec::new();
    for (i, r) in records.iter().enumerate() {
        if i % PROFILE_SAMPLE_EVERY == 0 {
            let t0 = std::time::Instant::now();
            joiner.process(r, &mut out);
            profile.record(obs::Stage::Execute, t0.elapsed());
        } else {
            joiner.process(r, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod snapshot_tests {
    //! The snapshot/restore contract every joiner must satisfy: after any
    //! prefix of the stream, `fresh.restore(&old.window_snapshot())` yields
    //! a joiner whose observable behavior on the rest of the stream is
    //! identical to the original's.

    use super::*;
    use ssj_text::TokenId;

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id * 10,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    /// A stream mixing near-duplicate families (so bundles actually form)
    /// with singletons, under ids 0..n and timestamps 10·id.
    fn family_stream(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let fam = (i % 5) as u32 * 50;
                let variant = (i % 3) as u32;
                rec(
                    i,
                    &[fam, fam + 1, fam + 2, fam + 3, fam + 4, fam + 6 + variant],
                )
            })
            .collect()
    }

    fn joiner_under_test(which: &str, cfg: JoinConfig) -> Box<dyn StreamJoiner + Send> {
        match which {
            "naive" => Box::new(NaiveJoiner::new(cfg)),
            "allpairs" => Box::new(AllPairsJoiner::new(cfg)),
            "ppjoin" => Box::new(PpJoinJoiner::new(cfg)),
            "ppjoin+" => Box::new(PpJoinJoiner::new_plus(cfg)),
            "bundle" => Box::new(BundleJoiner::with_defaults(cfg)),
            other => panic!("unknown joiner {other}"),
        }
    }

    const ALL: [&str; 5] = ["naive", "allpairs", "ppjoin", "ppjoin+", "bundle"];

    fn windows() -> [Window; 3] {
        [Window::Unbounded, Window::Count(12), Window::TimeMs(150)]
    }

    #[test]
    fn snapshot_is_the_visible_window_in_arrival_order() {
        let records = family_stream(40);
        for window in windows() {
            let cfg = JoinConfig::jaccard(0.6).with_window(window);
            let reference = {
                let mut j = NaiveJoiner::new(cfg);
                run_stream(&mut j, &records);
                j.window_snapshot()
            };
            assert!(!reference.is_empty());
            assert!(
                reference.windows(2).all(|w| w[0].id() < w[1].id()),
                "snapshot out of arrival order"
            );
            for which in ALL {
                let mut j = joiner_under_test(which, cfg);
                run_stream(&mut j, &records);
                let snap = j.window_snapshot();
                assert_eq!(snap.len(), j.stored(), "{which} {window:?}");
                let got: Vec<_> = snap
                    .iter()
                    .map(|r| (r.id(), r.timestamp(), r.tokens().to_vec()))
                    .collect();
                let want: Vec<_> = reference
                    .iter()
                    .map(|r| (r.id(), r.timestamp(), r.tokens().to_vec()))
                    .collect();
                assert_eq!(got, want, "{which} {window:?}");
            }
        }
    }

    #[test]
    fn restore_from_snapshot_resumes_exactly() {
        let records = family_stream(60);
        let (head, tail) = records.split_at(40);
        for window in windows() {
            let cfg = JoinConfig::jaccard(0.6).with_window(window);
            for which in ALL {
                let mut original = joiner_under_test(which, cfg);
                run_stream(&mut original, head);
                let snap = original.window_snapshot();

                let mut fresh = joiner_under_test(which, cfg);
                fresh.restore(&snap);
                assert_eq!(fresh.stored(), snap.len(), "{which} {window:?}");

                let mut expect: Vec<_> = run_stream(&mut original, tail)
                    .iter()
                    .map(|m| m.key())
                    .collect();
                let mut got: Vec<_> = run_stream(&mut fresh, tail)
                    .iter()
                    .map(|m| m.key())
                    .collect();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "{which} {window:?}");
            }
        }
    }

    #[test]
    fn restore_produces_no_results() {
        let records = family_stream(30);
        for which in ALL {
            let cfg = JoinConfig::jaccard(0.5);
            let mut original = joiner_under_test(which, cfg);
            run_stream(&mut original, &records);
            let mut fresh = joiner_under_test(which, cfg);
            fresh.restore(&original.window_snapshot());
            assert_eq!(fresh.stats().results, 0, "{which} emitted during restore");
            assert_eq!(fresh.stats().probed, 0, "{which} probed during restore");
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        for which in ALL {
            let cfg = JoinConfig::jaccard(0.8);
            let j = joiner_under_test(which, cfg);
            assert!(j.window_snapshot().is_empty(), "{which}");
            let mut fresh = joiner_under_test(which, cfg);
            fresh.restore(&[]);
            assert_eq!(fresh.stored(), 0, "{which}");
        }
    }
}

#[cfg(test)]
mod profiled_tests {
    use super::*;
    use ssj_text::TokenId;

    #[test]
    fn profiled_run_matches_plain_run_and_counts_every_record() {
        let records: Vec<Record> = (0..40u64)
            .map(|id| {
                let toks = (0..6u32).map(|t| TokenId(t + (id as u32 % 5))).collect();
                Record::from_sorted(RecordId(id), id, toks)
            })
            .collect();
        let cfg = JoinConfig::jaccard(0.6);

        let mut plain = BundleJoiner::new(BundleConfig::new(cfg));
        let expected = run_stream(&mut plain, &records);

        let mut profiled = BundleJoiner::new(BundleConfig::new(cfg));
        let mut profile = obs::StageProfile::new();
        let got = run_stream_profiled(&mut profiled, &records, &mut profile);

        assert_eq!(expected, got, "profiling must not change the results");
        // 40 records at a 1-in-8 sample: records 0, 8, 16, 24, 32.
        let sampled = 40usize.div_ceil(PROFILE_SAMPLE_EVERY) as u64;
        assert_eq!(profile.get(obs::Stage::Execute).count(), sampled);
        // Only the one stage the local path exercises is populated.
        for (stage, h) in profile.stages() {
            match stage {
                obs::Stage::Execute => assert_eq!(h.count(), sampled),
                _ => assert_eq!(h.count(), 0, "unexpected samples in {}", stage.name()),
            }
        }
    }
}
