//! Two-stream (R–S) similarity join.
//!
//! The self-join matches each record against earlier records of the *same*
//! stream; data-integration workloads instead join two different feeds
//! (e.g. a news wire against a social stream). The bi-stream joiner keeps
//! one index per side: an arrival from the left stream probes the *right*
//! index and is inserted into the *left* index, and vice versa — so every
//! cross-stream pair within the window is reported exactly once, by
//! whichever record arrived later.
//!
//! Record ids must be globally increasing across both streams (they encode
//! arrival order, which windows and result orientation rely on).

use super::{MatchPair, StreamJoiner};
use crate::stats::JoinStats;
use ssj_text::Record;

/// Which input stream a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The R (left) stream.
    Left,
    /// The S (right) stream.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A bi-stream joiner built from two single-stream joiners of the same
/// algorithm (one index per side).
#[derive(Debug)]
pub struct BiStreamJoiner<J> {
    left: J,
    right: J,
    stats: JoinStats,
}

impl<J: StreamJoiner> BiStreamJoiner<J> {
    /// Builds the two sides with a factory (both sides get identical
    /// configuration).
    pub fn new(mut factory: impl FnMut() -> J) -> Self {
        Self {
            left: factory(),
            right: factory(),
            stats: JoinStats::new(),
        }
    }

    /// Processes one arrival: probe the opposite index, insert into the own
    /// side's index. Matches are appended to `out` with the usual
    /// (earlier, later) orientation.
    pub fn process(&mut self, side: Side, record: &Record, out: &mut Vec<MatchPair>) {
        let (own, other) = match side {
            Side::Left => (&mut self.left, &mut self.right),
            Side::Right => (&mut self.right, &mut self.left),
        };
        other.probe(record, out);
        own.insert(record);
    }

    /// Probe-only against the opposite side (distributed probe messages).
    pub fn probe(&mut self, side: Side, record: &Record, out: &mut Vec<MatchPair>) {
        match side {
            Side::Left => self.right.probe(record, out),
            Side::Right => self.left.probe(record, out),
        }
    }

    /// Insert-only into the own side (distributed index messages).
    pub fn insert(&mut self, side: Side, record: &Record) {
        match side {
            Side::Left => self.left.insert(record),
            Side::Right => self.right.insert(record),
        }
    }

    /// Combined counters of both sides.
    pub fn stats(&mut self) -> &JoinStats {
        self.stats = JoinStats::new();
        self.stats.merge(self.left.stats());
        self.stats.merge(self.right.stats());
        &self.stats
    }

    /// Records stored across both indexes.
    pub fn stored(&self) -> usize {
        self.left.stored() + self.right.stored()
    }

    /// Postings across both indexes.
    pub fn postings(&self) -> usize {
        self.left.postings() + self.right.postings()
    }

    /// Side-tagged snapshot of every record both sides consider live, in
    /// global arrival (ascending id) order — the bi-stream analogue of
    /// [`StreamJoiner::window_snapshot`], suitable for checkpointing and
    /// for replay through [`Self::insert`].
    pub fn window_snapshot(&self) -> Vec<(Side, Record)> {
        let left = self.left.window_snapshot();
        let right = self.right.window_snapshot();
        let mut out = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() || j < right.len() {
            let take_left = match (left.get(i), right.get(j)) {
                (Some(l), Some(r)) => l.id() < r.id(),
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                out.push((Side::Left, left[i].clone()));
                i += 1;
            } else {
                out.push((Side::Right, right[j].clone()));
                j += 1;
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0].1.id() < w[1].1.id()));
        out
    }
}

/// Runs two pre-merged streams through a bi-stream joiner: `arrivals` is
/// the global arrival order, each record tagged with its side.
pub fn run_bistream<J: StreamJoiner>(
    joiner: &mut BiStreamJoiner<J>,
    arrivals: &[(Side, Record)],
) -> Vec<MatchPair> {
    let mut out = Vec::new();
    for (side, record) in arrivals {
        joiner.process(*side, record, &mut out);
    }
    out
}

/// Merges two id-ordered streams into one arrival sequence ordered by
/// record id. Panics if any id appears on both sides (ids must be globally
/// unique).
pub fn merge_streams(left: &[Record], right: &[Record]) -> Vec<(Side, Record)> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => {
                assert_ne!(l.id(), r.id(), "record ids must be globally unique");
                l.id() < r.id()
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("loop condition"),
        };
        if take_left {
            out.push((Side::Left, left[i].clone()));
            i += 1;
        } else {
            out.push((Side::Right, right[j].clone()));
            j += 1;
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0].1.id() < w[1].1.id()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{AllPairsJoiner, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner};
    use crate::sim::Threshold;
    use crate::verify;
    use crate::window::Window;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    /// Reference bi-join: all cross-stream pairs within the window.
    fn naive_bi(arrivals: &[(Side, Record)], cfg: JoinConfig) -> Vec<(u64, u64)> {
        let mut keys = Vec::new();
        for (i, (side, r)) in arrivals.iter().enumerate() {
            for (other_side, s) in arrivals.iter().take(i) {
                if side == other_side {
                    continue;
                }
                if cfg
                    .window
                    .expired(s.id().0, s.timestamp(), r.id().0, r.timestamp())
                {
                    continue;
                }
                let o = verify::overlap(r.tokens(), s.tokens());
                if cfg.threshold.matches(o, r.len(), s.len()) {
                    keys.push((s.id().0, r.id().0));
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    fn arrivals() -> Vec<(Side, Record)> {
        let mut v = Vec::new();
        for i in 0..60u64 {
            // Family cycle (3) is coprime with the side cycle (2), so every
            // family appears on both sides and cross-stream matches exist.
            let fam = (i % 3) as u32 * 30;
            let side = if i % 2 == 0 { Side::Left } else { Side::Right };
            v.push((
                side,
                rec(i, &[fam, fam + 1, fam + 2, fam + 3 + (i % 2) as u32]),
            ));
        }
        v
    }

    #[test]
    fn cross_stream_pairs_only() {
        let cfg = JoinConfig::jaccard(0.9);
        let mut j = BiStreamJoiner::new(|| NaiveJoiner::new(cfg));
        // Identical records on the SAME side never match each other.
        let mut out = Vec::new();
        j.process(Side::Left, &rec(0, &[1, 2, 3]), &mut out);
        j.process(Side::Left, &rec(1, &[1, 2, 3]), &mut out);
        assert!(out.is_empty());
        j.process(Side::Right, &rec(2, &[1, 2, 3]), &mut out);
        assert_eq!(out.len(), 2, "right record matches both left records");
    }

    #[test]
    fn all_joiners_match_reference() {
        let arr = arrivals();
        let cfg = JoinConfig::jaccard(0.6);
        let expect = naive_bi(&arr, cfg);
        assert!(!expect.is_empty());

        let run = |out: Vec<MatchPair>| {
            let mut keys: Vec<_> = out.iter().map(|m| m.key()).collect();
            keys.sort_unstable();
            keys
        };
        let mut naive = BiStreamJoiner::new(|| NaiveJoiner::new(cfg));
        assert_eq!(run(run_bistream(&mut naive, &arr)), expect);
        let mut ap = BiStreamJoiner::new(|| AllPairsJoiner::new(cfg));
        assert_eq!(run(run_bistream(&mut ap, &arr)), expect);
        let mut pp = BiStreamJoiner::new(|| PpJoinJoiner::new(cfg));
        assert_eq!(run(run_bistream(&mut pp, &arr)), expect);
        let mut bj = BiStreamJoiner::new(|| BundleJoiner::with_defaults(cfg));
        assert_eq!(run(run_bistream(&mut bj, &arr)), expect);
    }

    #[test]
    fn windows_apply_across_streams() {
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.9),
            window: Window::Count(2),
        };
        let arr = vec![
            (Side::Left, rec(0, &[1, 2])),
            (Side::Right, rec(1, &[9, 10])),
            (Side::Right, rec(2, &[11, 12])),
            (Side::Right, rec(3, &[1, 2])), // distance 3 from record 0: expired
        ];
        let expect = naive_bi(&arr, cfg);
        assert!(expect.is_empty());
        let mut j = BiStreamJoiner::new(|| PpJoinJoiner::new(cfg));
        assert!(run_bistream(&mut j, &arr).is_empty());
    }

    #[test]
    fn merge_streams_orders_by_id() {
        let left = vec![rec(0, &[1]), rec(3, &[2]), rec(4, &[3])];
        let right = vec![rec(1, &[4]), rec(2, &[5]), rec(7, &[6])];
        let merged = merge_streams(&left, &right);
        let ids: Vec<u64> = merged.iter().map(|(_, r)| r.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 7]);
        assert_eq!(merged[0].0, Side::Left);
        assert_eq!(merged[1].0, Side::Right);
    }

    #[test]
    #[should_panic(expected = "globally unique")]
    fn merge_streams_rejects_duplicate_ids() {
        let left = vec![rec(1, &[1])];
        let right = vec![rec(1, &[2])];
        let _ = merge_streams(&left, &right);
    }

    #[test]
    fn stats_aggregate_both_sides() {
        let cfg = JoinConfig::jaccard(0.8);
        let mut j = BiStreamJoiner::new(|| PpJoinJoiner::new(cfg));
        let mut out = Vec::new();
        j.process(Side::Left, &rec(0, &[1, 2, 3]), &mut out);
        j.process(Side::Right, &rec(1, &[1, 2, 3]), &mut out);
        assert_eq!(j.stored(), 2);
        assert_eq!(j.stats().indexed, 2);
        assert_eq!(j.stats().results, 1);
        assert!(j.postings() > 0);
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }

    #[test]
    fn window_snapshot_merges_sides_in_id_order() {
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.8),
            window: Window::Count(3),
        };
        let mut j = BiStreamJoiner::new(|| AllPairsJoiner::new(cfg));
        let mut out = Vec::new();
        j.process(Side::Left, &rec(0, &[1, 2]), &mut out);
        j.process(Side::Right, &rec(1, &[3, 4]), &mut out);
        j.process(Side::Left, &rec(2, &[5, 6]), &mut out);
        j.process(Side::Right, &rec(3, &[7, 8]), &mut out);

        let snap = j.window_snapshot();
        let ids: Vec<u64> = snap.iter().map(|(_, r)| r.id().0).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "not id-ordered: {ids:?}"
        );
        assert!(snap.iter().any(|(s, _)| *s == Side::Left));
        assert!(snap.iter().any(|(s, _)| *s == Side::Right));

        // Rebuilding a fresh joiner from the snapshot reproduces the same
        // visible window.
        let mut rebuilt = BiStreamJoiner::new(|| AllPairsJoiner::new(cfg));
        for (side, r) in &snap {
            rebuilt.insert(*side, r);
        }
        let snap2 = rebuilt.window_snapshot();
        assert_eq!(snap.len(), snap2.len());
        for ((s0, r0), (s1, r1)) in snap.iter().zip(&snap2) {
            assert_eq!(s0, s1);
            assert_eq!(r0.id(), r1.id());
        }
    }
}
