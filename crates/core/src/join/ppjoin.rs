//! Streaming PPJoin: AllPairs plus the positional filter and resumed
//! (partial) verification.
//!
//! The joiner also offers **PPJoin+** mode ([`PpJoinJoiner::new_plus`]):
//! before verifying a surviving candidate, the *suffix filter* computes a
//! cheap lower bound on the Hamming distance of the unseen suffixes and
//! prunes pairs whose bound already rules out the required overlap.
//!
//! While scanning the probe's prefix tokens, the joiner accumulates for each
//! candidate the exact number of shared prefix tokens `α` and the positions
//! of the last shared token on both sides. At every shared token it applies
//! the *positional filter*: the final overlap can be at most
//! `α + 1 + min(remaining_r, remaining_s)`; if that upper bound cannot reach
//! `min_overlap`, the candidate is discarded before verification.
//! Verification then resumes the merge *after* the last shared positions,
//! reusing `α` instead of re-scanning the prefixes.

use super::{JoinConfig, MatchPair, StreamJoiner};
use crate::index::{
    compact_all, should_compact, InvertedIndex, Posting, RecordStore, SeenFilter, Slot,
};
use crate::stats::JoinStats;
use crate::verify;
use crate::window::EvictionQueue;
use ssj_text::{FxHashMap, Record};

/// Per-candidate accumulator built during the prefix scan.
#[derive(Debug, Clone, Copy)]
struct CandAcc {
    /// Shared prefix tokens counted so far (exact left-overlap).
    alpha: u32,
    /// Position in the probe of the last shared token.
    last_probe_pos: u32,
    /// Position in the indexed record of the last shared token.
    last_index_pos: u32,
    /// Discarded by a filter; kept in the map so later postings skip it.
    pruned: bool,
}

/// Prefix + length + positional filtering joiner (Xiao et al.'s PPJoin
/// adapted to arbitrary-arrival-order streams).
#[derive(Debug)]
pub struct PpJoinJoiner {
    cfg: JoinConfig,
    /// PPJoin+ mode: apply the suffix filter before verification.
    suffix_filter: bool,
    store: RecordStore,
    index: InvertedIndex,
    queue: EvictionQueue<Slot>,
    seen: SeenFilter,
    stats: JoinStats,
    /// Scratch: per-probe candidate accumulators (cleared, not freed).
    acc: FxHashMap<Slot, CandAcc>,
    /// Scratch: candidate order for deterministic iteration.
    order: Vec<Slot>,
}

impl PpJoinJoiner {
    /// A PPJoin joiner with the given threshold and window.
    pub fn new(cfg: JoinConfig) -> Self {
        Self {
            cfg,
            suffix_filter: false,
            store: RecordStore::new(),
            index: InvertedIndex::new(),
            queue: EvictionQueue::new(),
            seen: SeenFilter::new(),
            stats: JoinStats::new(),
            acc: FxHashMap::default(),
            order: Vec::new(),
        }
    }

    fn evict(&mut self, probe_id: u64, probe_ts: u64) {
        let store = &mut self.store;
        let stats = &mut self.stats;
        self.queue
            .drain_expired(self.cfg.window, probe_id, probe_ts, |slot| {
                store.remove(slot);
                stats.evicted += 1;
            });
        if should_compact(store.live(), store.dead()) {
            compact_all(store, &mut self.index, &mut self.queue, &mut self.seen);
        }
    }
}

impl PpJoinJoiner {
    /// A PPJoin+ joiner: PPJoin plus suffix filtering.
    pub fn new_plus(cfg: JoinConfig) -> Self {
        let mut j = Self::new(cfg);
        j.suffix_filter = true;
        j
    }
}

impl StreamJoiner for PpJoinJoiner {
    fn name(&self) -> &'static str {
        if self.suffix_filter {
            "ppjoin+"
        } else {
            "ppjoin"
        }
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.evict(record.id().0, record.timestamp());
        let t = self.cfg.threshold;
        let lr = record.len();

        self.acc.clear();
        self.order.clear();
        {
            let store = &self.store;
            let acc = &mut self.acc;
            let order = &mut self.order;
            let stats = &mut self.stats;
            for (i, &tok) in record.prefix(t.prefix_len(lr)).iter().enumerate() {
                self.index.scan_prune(
                    tok,
                    |slot| store.get(slot).is_some(),
                    |p| {
                        stats.posting_hits += 1;
                        let s = store.get(p.slot).expect("live posting");
                        let ls = s.len();
                        let entry = acc.entry(p.slot).or_insert_with(|| {
                            stats.candidates += 1;
                            order.push(p.slot);
                            let pruned = if !t.length_compatible(lr, ls) {
                                stats.length_filtered += 1;
                                true
                            } else {
                                false
                            };
                            CandAcc {
                                alpha: 0,
                                last_probe_pos: 0,
                                last_index_pos: 0,
                                pruned,
                            }
                        });
                        if entry.pruned {
                            return;
                        }
                        // Positional filter: best achievable total overlap if
                        // this shared token is counted.
                        let mo = t.min_overlap(lr, ls);
                        let remaining = (lr - i - 1).min(ls - p.pos as usize - 1);
                        let ubound = entry.alpha as usize + 1 + remaining;
                        if ubound < mo {
                            entry.pruned = true;
                            stats.position_filtered += 1;
                        } else {
                            entry.alpha += 1;
                            entry.last_probe_pos = i as u32;
                            entry.last_index_pos = p.pos;
                        }
                    },
                );
            }
        }

        // Resumed verification of the survivors.
        for idx in 0..self.order.len() {
            let slot = self.order[idx];
            let cand = self.acc[&slot];
            if cand.pruned || cand.alpha == 0 {
                continue;
            }
            let s = self.store.get(slot).expect("live candidate");
            let ls = s.len();
            let mo = t.min_overlap(lr, ls);
            let start_a = cand.last_probe_pos as usize + 1;
            let start_b = cand.last_index_pos as usize + 1;
            if self.suffix_filter {
                // Suffix filter: the unseen suffixes must still contribute
                // `mo - alpha` common tokens; bound their Hamming distance.
                let xs = &record.tokens()[start_a..];
                let ys = &s.tokens()[start_b..];
                let needed = mo.saturating_sub(cand.alpha as usize);
                let budget = (xs.len() + ys.len()).saturating_sub(2 * needed);
                if verify::hamming_lower_bound(xs, ys, budget) > budget {
                    self.stats.suffix_filtered += 1;
                    continue;
                }
            }
            self.stats.verifications += 1;
            self.stats.verify_steps += ((lr - start_a) + (ls - start_b)) as u64;
            if let Some(o) = verify::overlap_from(
                record.tokens(),
                s.tokens(),
                start_a,
                start_b,
                cand.alpha as usize,
                mo,
            ) {
                if t.matches(o, lr, ls) {
                    self.stats.results += 1;
                    out.push(MatchPair {
                        earlier: s.id(),
                        later: record.id(),
                        similarity: t.similarity(o, lr, ls),
                    });
                }
            }
        }
        self.stats.probed += 1;
    }

    fn insert(&mut self, record: &Record) {
        self.evict(record.id().0, record.timestamp());
        let slot = self.store.insert(record.clone());
        let p = self.cfg.threshold.prefix_len(record.len());
        for (pos, &tok) in record.prefix(p).iter().enumerate() {
            self.index.add(
                tok,
                Posting {
                    slot,
                    pos: pos as u32,
                },
            );
            self.stats.postings_created += 1;
        }
        self.queue.push(record.id().0, record.timestamp(), slot);
        self.stats.indexed += 1;
    }

    fn window_snapshot(&self) -> Vec<Record> {
        self.queue
            .iter()
            .map(|&slot| self.store.get(slot).expect("queued slot is live").clone())
            .collect()
    }

    fn stats(&self) -> &JoinStats {
        &self.stats
    }

    fn stored(&self) -> usize {
        self.store.live()
    }

    fn postings(&self) -> usize {
        self.index.postings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{run_stream, NaiveJoiner};
    use crate::sim::Threshold;
    use crate::window::Window;
    use ssj_text::{RecordId, TokenId};

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    fn assert_same_as_naive(cfg: JoinConfig, records: &[Record]) {
        let mut naive = NaiveJoiner::new(cfg);
        let mut pp = PpJoinJoiner::new(cfg);
        let mut expect: Vec<_> = run_stream(&mut naive, records)
            .iter()
            .map(|m| m.key())
            .collect();
        let mut got: Vec<_> = run_stream(&mut pp, records)
            .iter()
            .map(|m| m.key())
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn agrees_with_naive_basic() {
        let records = vec![
            rec(0, &[1, 2, 3, 4, 5]),
            rec(1, &[1, 2, 3, 4, 6]),
            rec(2, &[2, 3, 4, 5, 6]),
            rec(3, &[20, 21, 22]),
            rec(4, &[1, 2, 3, 4, 5, 6]),
        ];
        assert_same_as_naive(JoinConfig::jaccard(0.6), &records);
    }

    #[test]
    fn agrees_with_naive_high_threshold() {
        let records: Vec<Record> = (0..40)
            .map(|i| {
                let b = (i % 4) as u32 * 100;
                rec(
                    i,
                    &[b, b + 1, b + 2, b + 3, b + 4, b + 5, 1000 + i as u32 % 3],
                )
            })
            .collect();
        assert_same_as_naive(JoinConfig::jaccard(0.8), &records);
    }

    #[test]
    fn agrees_with_naive_windowed() {
        let records: Vec<Record> = (0..25)
            .map(|i| rec(i, &[(i % 3) as u32, (i % 3) as u32 + 10, 99]))
            .collect();
        let cfg = JoinConfig {
            threshold: Threshold::jaccard(0.5),
            window: Window::Count(6),
        };
        assert_same_as_naive(cfg, &records);
    }

    #[test]
    fn positional_filter_fires() {
        let mut j = PpJoinJoiner::new(JoinConfig::jaccard(0.9));
        let mut out = Vec::new();
        // Share only the *second* prefix token: the candidate is generated,
        // but with both matching positions at index 1 the remaining-token
        // bound (1 + min(8, 8) = 9) cannot reach min_overlap(10,10) = 10,
        // so the positional filter kills it before verification.
        j.process(&rec(0, &[1, 5, 30, 31, 32, 33, 34, 35, 36, 37]), &mut out);
        j.process(&rec(1, &[2, 5, 40, 41, 42, 43, 44, 45, 46, 47]), &mut out);
        assert!(out.is_empty());
        assert!(j.stats().position_filtered >= 1);
        assert_eq!(j.stats().verifications, 0);
    }

    #[test]
    fn plus_mode_agrees_with_naive() {
        let records: Vec<Record> = (0..60)
            .map(|i| {
                let b = (i % 5) as u32 * 40;
                rec(
                    i,
                    &[b, b + 1, b + 2, b + 3, b + 4, b + 5, 500 + (i % 3) as u32],
                )
            })
            .collect();
        for tau in [0.5, 0.7, 0.9] {
            let cfg = JoinConfig::jaccard(tau);
            let mut naive = NaiveJoiner::new(cfg);
            let mut plus = PpJoinJoiner::new_plus(cfg);
            let mut expect: Vec<_> = run_stream(&mut naive, &records)
                .iter()
                .map(|m| m.key())
                .collect();
            let mut got: Vec<_> = run_stream(&mut plus, &records)
                .iter()
                .map(|m| m.key())
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "tau={tau}");
        }
    }

    #[test]
    fn suffix_filter_fires_and_saves_verifications() {
        // Candidates share two early prefix tokens but have completely
        // disjoint suffixes: the positional filter passes (plenty of
        // remaining tokens) while the suffix filter sees the divergence.
        let mk = |id: u64, base: u32| {
            let mut toks = vec![1, 2];
            toks.extend((0..18).map(|x| base + x));
            rec(id, &toks)
        };
        let cfg = JoinConfig::jaccard(0.6);
        let mut plain = PpJoinJoiner::new(cfg);
        let mut plus = PpJoinJoiner::new_plus(cfg);
        let mut out = Vec::new();
        for (i, base) in [100u32, 200, 300, 400, 500].iter().enumerate() {
            plain.process(&mk(i as u64, *base), &mut out);
            plus.process(&mk(100 + i as u64, *base), &mut out);
        }
        assert!(out.is_empty());
        assert!(
            plus.stats().suffix_filtered > 0,
            "suffix filter never fired"
        );
        assert!(
            plus.stats().verifications < plain.stats().verifications,
            "plus {} vs plain {}",
            plus.stats().verifications,
            plain.stats().verifications
        );
        assert_eq!(plus.name(), "ppjoin+");
    }

    #[test]
    fn verification_resumes_correctly() {
        // Construct records where alpha > 0 and suffix tokens matter.
        let mut j = PpJoinJoiner::new(JoinConfig::jaccard(0.7));
        let mut out = Vec::new();
        j.process(&rec(0, &[1, 2, 3, 4, 5, 6, 7]), &mut out);
        j.process(&rec(1, &[1, 2, 3, 4, 5, 6, 8]), &mut out);
        assert_eq!(out.len(), 1);
        // Jaccard = 6/8 = 0.75
        assert!((out[0].similarity - 0.75).abs() < 1e-12);
    }
}
