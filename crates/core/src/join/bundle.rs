//! The bundle-based joiner: the paper's local join contribution.
//!
//! Streams are full of near-duplicates (reposted articles, re-issued
//! queries). The bundle joiner exploits them by grouping arriving records
//! into *bundles* on the fly:
//!
//! * a bundle holds a **representative** token set (its founding record)
//!   and **members** stored as tiny token deltas `(add, del)` against the
//!   representative;
//! * the inverted index posts **bundles**, not records — a near-duplicate
//!   member adds few or no new postings, so candidate generation touches
//!   far fewer posting entries (reduced *filtering cost*);
//! * a probe is verified against a whole candidate bundle at once (**batch
//!   verification**): the expensive merge `|r ∩ rep|` is computed once and
//!   each member's overlap is derived from its deltas:
//!   `|r ∩ m| = |r ∩ rep| − |r ∩ del_m| + |r ∩ add_m|`, which holds exactly
//!   because `del_m ⊆ rep` and `add_m ∩ rep = ∅`.
//!
//! Grouping is *best effort* and never affects correctness: every candidate
//! member is verified with the exact acceptance predicate, and the bundle
//! posting set is the union of its members' prefix tokens, so the prefix
//! filter stays complete.

use super::{JoinConfig, MatchPair, StreamJoiner};
use crate::index::{should_compact, InvertedIndex, Posting, SeenFilter, Slot, SlotStore};
use crate::sim::Threshold;
use crate::stats::JoinStats;
use crate::verify;
use crate::window::EvictionQueue;
use ssj_text::{Record, RecordId, TokenId};

/// Tuning knobs for the bundle joiner.
#[derive(Debug, Clone, Copy)]
pub struct BundleConfig {
    /// Join threshold and window.
    pub join: JoinConfig,
    /// Minimum similarity to the representative required to absorb a record
    /// into an existing bundle. Higher values give tighter bundles (smaller
    /// deltas) but fewer absorptions. Values below the join threshold are
    /// allowed — grouping is best-effort and never affects result
    /// correctness — but absorption candidates are only discovered through
    /// the join-threshold prefix index, so very low values mostly loosen
    /// delta sizes rather than find more bundles.
    pub bundle_tau: f64,
    /// Maximum members per bundle (bounds batch-verification cost).
    pub max_members: usize,
    /// Maximum `(|add| + |del|) / |rep|` for an absorbed member (bounds
    /// delta-verification cost).
    pub max_delta_frac: f64,
}

impl BundleConfig {
    /// Defaults from the evaluation: `bundle_tau = max(τ, 0.8)`,
    /// 64 members, deltas up to 25% of the representative.
    pub fn new(join: JoinConfig) -> Self {
        Self {
            join,
            bundle_tau: join.threshold.tau().max(0.8),
            max_members: 64,
            max_delta_frac: 0.25,
        }
    }

    /// Overrides the absorption threshold.
    pub fn with_bundle_tau(mut self, bundle_tau: f64) -> Self {
        self.bundle_tau = bundle_tau;
        self
    }

    /// Overrides the member cap.
    pub fn with_max_members(mut self, max_members: usize) -> Self {
        self.max_members = max_members;
        self
    }

    fn validate(&self) {
        assert!(
            self.bundle_tau > 0.0 && self.bundle_tau <= 1.0,
            "bundle_tau must lie in (0, 1]"
        );
        assert!(self.max_members >= 1, "bundles need at least one member");
        assert!(
            (0.0..=1.0).contains(&self.max_delta_frac),
            "max_delta_frac must lie in [0, 1]"
        );
    }
}

/// A bundle member: identity plus its token delta against the
/// representative.
#[derive(Debug)]
struct Member {
    id: RecordId,
    len: u32,
    /// Tokens in the member but not in the representative (sorted).
    add: Box<[TokenId]>,
    /// Tokens in the representative but not in the member (sorted).
    del: Box<[TokenId]>,
    alive: bool,
}

/// A group of near-duplicate records sharing one representative.
#[derive(Debug)]
struct Bundle {
    /// The founding record; its token set is the representative.
    rep: Record,
    members: Vec<Member>,
    alive: u32,
    /// Length bounds over alive members (for the bundle-level length
    /// filter).
    min_len: u32,
    max_len: u32,
    /// Tokens posted to the inverted index for this bundle (sorted). The
    /// union of members' prefix tokens — the completeness invariant.
    posted: Vec<TokenId>,
}

impl Bundle {
    fn recompute_len_bounds(&mut self) {
        let mut min_len = u32::MAX;
        let mut max_len = 0;
        for m in self.members.iter().filter(|m| m.alive) {
            min_len = min_len.min(m.len);
            max_len = max_len.max(m.len);
        }
        self.min_len = min_len;
        self.max_len = max_len;
    }

    /// Largest `|add|` among alive members — bounds how far a member's
    /// overlap can exceed the representative's.
    fn max_add(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.alive)
            .map(|m| m.add.len())
            .max()
            .unwrap_or(0)
    }
}

/// The bundle-based streaming joiner.
#[derive(Debug)]
pub struct BundleJoiner {
    cfg: BundleConfig,
    bundle_threshold: Threshold,
    store: SlotStore<Bundle>,
    index: InvertedIndex,
    /// Eviction entries: (bundle slot, member index).
    queue: EvictionQueue<(Slot, u32)>,
    seen: SeenFilter,
    stats: JoinStats,
    live_members: usize,
    candidates: Vec<Slot>,
}

impl BundleJoiner {
    /// A bundle joiner with the given configuration.
    pub fn new(cfg: BundleConfig) -> Self {
        cfg.validate();
        let t = cfg.join.threshold;
        Self {
            cfg,
            bundle_threshold: Threshold::new(t.sim_fn(), cfg.bundle_tau),
            store: SlotStore::new(),
            index: InvertedIndex::new(),
            queue: EvictionQueue::new(),
            seen: SeenFilter::new(),
            stats: JoinStats::new(),
            live_members: 0,
            candidates: Vec::new(),
        }
    }

    /// Convenience: defaults on top of a join config.
    pub fn with_defaults(join: JoinConfig) -> Self {
        Self::new(BundleConfig::new(join))
    }

    /// Live bundle count (for reporting index compression).
    pub fn bundles(&self) -> usize {
        self.store.live()
    }

    fn evict(&mut self, probe_id: u64, probe_ts: u64) {
        let store = &mut self.store;
        let stats = &mut self.stats;
        let live_members = &mut self.live_members;
        self.queue.drain_expired(
            self.cfg.join.window,
            probe_id,
            probe_ts,
            |(slot, member_idx)| {
                let bundle = store.get_mut(slot).expect("queued member in live bundle");
                let m = &mut bundle.members[member_idx as usize];
                debug_assert!(m.alive, "member evicted twice");
                m.alive = false;
                bundle.alive -= 1;
                *live_members -= 1;
                stats.evicted += 1;
                if bundle.alive == 0 {
                    store.remove(slot);
                } else {
                    bundle.recompute_len_bounds();
                }
            },
        );
        if should_compact(store.live(), store.dead()) {
            let remap = store.compact();
            self.index.apply_remap(&remap);
            self.queue
                .for_each_payload_mut(|(slot, _)| *slot = remap[*slot as usize]);
            self.seen.reset();
        }
    }

    /// Prefix-scan candidate bundles into `self.candidates` (deduplicated).
    fn collect_candidates(&mut self, record: &Record) {
        self.seen.next_epoch();
        self.candidates.clear();
        let t = self.cfg.join.threshold;
        let store = &self.store;
        let seen = &mut self.seen;
        let candidates = &mut self.candidates;
        let stats = &mut self.stats;
        for &tok in record.prefix(t.prefix_len(record.len())) {
            self.index.scan_prune(
                tok,
                |slot| store.get(slot).is_some(),
                |p| {
                    stats.posting_hits += 1;
                    if seen.first_visit(p.slot) {
                        candidates.push(p.slot);
                    }
                },
            );
        }
    }

    /// Batch-verifies `record` against candidate bundles, optionally
    /// emitting matches, and returns the best absorption target
    /// `(slot, similarity-to-rep)` if one qualifies.
    fn probe_internal(
        &mut self,
        record: &Record,
        mut out: Option<&mut Vec<MatchPair>>,
        want_group: bool,
    ) -> Option<(Slot, f64)> {
        let t = self.cfg.join.threshold;
        let bt = self.bundle_threshold;
        let lr = record.len();
        let lo = t.min_len(lr);
        let hi = t.max_len(lr);

        self.collect_candidates(record);
        let mut best: Option<(Slot, f64)> = None;

        for i in 0..self.candidates.len() {
            let slot = self.candidates[i];
            let bundle = self.store.get(slot).expect("candidates are live");
            self.stats.candidates += 1;

            // Bundle-level length filter for join results.
            let members_in_range = bundle.alive > 0
                && (bundle.max_len as usize) >= lo
                && hi.is_none_or(|h| (bundle.min_len as usize) <= h);
            // Is this bundle even a possible absorption target?
            let lrep = bundle.rep.len();
            let groupable = want_group
                && bundle.members.len() < self.cfg.max_members
                && bt.length_compatible(lr, lrep);
            if !members_in_range && !groupable {
                self.stats.length_filtered += 1;
                continue;
            }
            if out.is_none() && !groupable {
                // Insert-only scan: this bundle can't absorb the record and
                // no matches are being collected — nothing to verify.
                continue;
            }

            // Shared verification: one merge against the representative.
            // Early termination is valid against the loosest requirement
            // anything downstream could have: for member emission, the
            // smallest member min-overlap discounted by how much a member's
            // `add` tokens could raise its overlap above the
            // representative's; for the grouping decision, the absorption
            // threshold's own min-overlap (an overlap below it cannot reach
            // `bundle_tau` either). `overlap_with_min` returns the *exact*
            // overlap whenever it returns at all, so both uses stay exact.
            let member_req = if members_in_range && out.is_some() {
                bundle
                    .members
                    .iter()
                    .filter(|m| m.alive && t.length_compatible(lr, m.len as usize))
                    .map(|m| t.min_overlap(lr, m.len as usize))
                    .min()
                    .unwrap_or(usize::MAX)
                    .saturating_sub(bundle.max_add())
            } else {
                usize::MAX
            };
            let group_req = if groupable {
                bt.min_overlap(lr, lrep)
            } else {
                usize::MAX
            };
            let min_required = member_req.min(group_req);
            if min_required == usize::MAX {
                // The bundle's length bounds straddle the filter interval
                // without any member actually inside it, and grouping does
                // not apply: nothing to verify.
                continue;
            }
            self.stats.verifications += 1;
            self.stats.verify_steps += (lr + lrep) as u64;
            let Some(o_rep) =
                verify::overlap_with_min(record.tokens(), bundle.rep.tokens(), min_required)
            else {
                continue;
            };

            if groupable {
                let sim_rep = t.similarity(o_rep, lr, lrep);
                if sim_rep >= self.cfg.bundle_tau && best.is_none_or(|(_, s)| sim_rep > s) {
                    best = Some((slot, sim_rep));
                }
            }

            if !members_in_range {
                continue;
            }
            if let Some(out) = out.as_deref_mut() {
                for m in bundle.members.iter().filter(|m| m.alive) {
                    let lm = m.len as usize;
                    if !t.length_compatible(lr, lm) {
                        continue;
                    }
                    self.stats.delta_verifications += 1;
                    let o_m = o_rep + verify::intersect_small(&m.add, record.tokens())
                        - verify::intersect_small(&m.del, record.tokens());
                    debug_assert!(o_m <= lr.min(lm));
                    if t.matches(o_m, lr, lm) {
                        self.stats.results += 1;
                        out.push(MatchPair {
                            earlier: m.id,
                            later: record.id(),
                            similarity: t.similarity(o_m, lr, lm),
                        });
                    }
                }
            }
        }
        best
    }

    /// Inserts `record`, absorbing it into `target` when the delta fits,
    /// founding a new bundle otherwise.
    fn insert_with(&mut self, record: &Record, target: Option<(Slot, f64)>) {
        let t = self.cfg.join.threshold;
        if let Some((slot, _)) = target {
            if let Some(bundle) = self.store.get_mut(slot) {
                let max_delta =
                    ((self.cfg.max_delta_frac * bundle.rep.len() as f64).floor() as usize).max(1);
                let (add, del) = token_deltas(record.tokens(), bundle.rep.tokens());
                if bundle.members.len() < self.cfg.max_members && add.len() + del.len() <= max_delta
                {
                    // Post any prefix tokens this member brings that the
                    // bundle has not posted yet (keeps the union invariant).
                    let prefix = record.prefix(t.prefix_len(record.len()));
                    for &tok in prefix {
                        if let Err(ins) = bundle.posted.binary_search(&tok) {
                            bundle.posted.insert(ins, tok);
                            self.index.add(tok, Posting { slot, pos: 0 });
                            self.stats.postings_created += 1;
                        }
                    }
                    let member_idx = bundle.members.len() as u32;
                    bundle.members.push(Member {
                        id: record.id(),
                        len: record.len() as u32,
                        add: add.into(),
                        del: del.into(),
                        alive: true,
                    });
                    bundle.alive += 1;
                    bundle.min_len = bundle.min_len.min(record.len() as u32);
                    bundle.max_len = bundle.max_len.max(record.len() as u32);
                    self.queue
                        .push(record.id().0, record.timestamp(), (slot, member_idx));
                    self.live_members += 1;
                    self.stats.bundle_absorbed += 1;
                    self.stats.indexed += 1;
                    return;
                }
            }
        }

        // Found a new bundle.
        let prefix_len = t.prefix_len(record.len());
        let posted: Vec<TokenId> = record.prefix(prefix_len).to_vec();
        let founder = Member {
            id: record.id(),
            len: record.len() as u32,
            add: Box::default(),
            del: Box::default(),
            alive: true,
        };
        let slot = self.store.insert(Bundle {
            rep: record.clone(),
            members: vec![founder],
            alive: 1,
            min_len: record.len() as u32,
            max_len: record.len() as u32,
            posted: posted.clone(),
        });
        for &tok in &posted {
            self.index.add(tok, Posting { slot, pos: 0 });
            self.stats.postings_created += 1;
        }
        self.queue
            .push(record.id().0, record.timestamp(), (slot, 0));
        self.live_members += 1;
        self.stats.bundles_created += 1;
        self.stats.indexed += 1;
    }
}

/// Inverse of [`token_deltas`]: reconstructs a member's token set
/// `(rep \ del) ∪ add` as one sorted merge. Exact because `del ⊆ rep` and
/// `add ∩ rep = ∅` (the delta invariants).
fn apply_deltas(rep: &[TokenId], add: &[TokenId], del: &[TokenId]) -> Vec<TokenId> {
    let mut out = Vec::with_capacity((rep.len() + add.len()).saturating_sub(del.len()));
    let mut ai = 0;
    let mut di = 0;
    for &tok in rep {
        while ai < add.len() && add[ai] < tok {
            out.push(add[ai]);
            ai += 1;
        }
        if di < del.len() && del[di] == tok {
            di += 1;
            continue;
        }
        out.push(tok);
    }
    out.extend_from_slice(&add[ai..]);
    debug_assert_eq!(di, del.len(), "del must be a subset of rep");
    out
}

/// `(a \ b, b \ a)` of two sorted token slices.
fn token_deltas(a: &[TokenId], b: &[TokenId]) -> (Vec<TokenId>, Vec<TokenId>) {
    let mut add = Vec::new();
    let mut del = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                add.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                del.push(b[j]);
                j += 1;
            }
        }
    }
    add.extend_from_slice(&a[i..]);
    del.extend_from_slice(&b[j..]);
    (add, del)
}

impl StreamJoiner for BundleJoiner {
    fn name(&self) -> &'static str {
        "bundle"
    }

    fn probe(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        self.evict(record.id().0, record.timestamp());
        self.probe_internal(record, Some(out), false);
        self.stats.probed += 1;
    }

    fn insert(&mut self, record: &Record) {
        self.evict(record.id().0, record.timestamp());
        let target = self.probe_internal(record, None, true);
        self.insert_with(record, target);
    }

    fn process(&mut self, record: &Record, out: &mut Vec<MatchPair>) {
        // Single scan serving both the join probe and the grouping decision.
        self.evict(record.id().0, record.timestamp());
        let target = self.probe_internal(record, Some(out), true);
        self.stats.probed += 1;
        self.insert_with(record, target);
    }

    fn window_snapshot(&self) -> Vec<Record> {
        // The queue holds (bundle, member) handles in arrival order; each
        // member's full token set is reconstructed from its delta against
        // the representative, so the snapshot is exact even though the
        // joiner never stores member records.
        self.queue
            .entries()
            .map(|(id, ts, &(slot, member_idx))| {
                let bundle = self.store.get(slot).expect("queued member in live bundle");
                let m = &bundle.members[member_idx as usize];
                debug_assert!(m.alive, "queued member is alive");
                debug_assert_eq!(m.id.0, id);
                let tokens = apply_deltas(bundle.rep.tokens(), &m.add, &m.del);
                debug_assert_eq!(tokens.len(), m.len as usize);
                Record::from_sorted(m.id, ts, tokens)
            })
            .collect()
    }

    fn stats(&self) -> &JoinStats {
        &self.stats
    }

    fn stored(&self) -> usize {
        self.live_members
    }

    fn postings(&self) -> usize {
        self.index.postings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{run_stream, NaiveJoiner};
    use crate::window::Window;
    use ssj_text::RecordId;

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(
            RecordId(id),
            id,
            toks.iter().copied().map(TokenId).collect(),
        )
    }

    fn assert_same_as_naive(cfg: BundleConfig, records: &[Record]) {
        let mut naive = NaiveJoiner::new(cfg.join);
        let mut bj = BundleJoiner::new(cfg);
        let mut expect: Vec<_> = run_stream(&mut naive, records)
            .iter()
            .map(|m| m.key())
            .collect();
        let mut got: Vec<_> = run_stream(&mut bj, records)
            .iter()
            .map(|m| m.key())
            .collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn token_deltas_basic() {
        let a: Vec<TokenId> = [1u32, 3, 5].iter().map(|&x| TokenId(x)).collect();
        let b: Vec<TokenId> = [1u32, 4, 5, 6].iter().map(|&x| TokenId(x)).collect();
        let (add, del) = token_deltas(&a, &b);
        assert_eq!(add, vec![TokenId(3)]);
        assert_eq!(del, vec![TokenId(4), TokenId(6)]);
    }

    #[test]
    fn near_duplicates_are_absorbed() {
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.6));
        let mut j = BundleJoiner::new(cfg);
        let mut out = Vec::new();
        j.process(&rec(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]), &mut out);
        j.process(&rec(1, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 11]), &mut out);
        j.process(&rec(2, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]), &mut out);
        assert_eq!(j.bundles(), 1, "all three should share one bundle");
        assert_eq!(j.stats().bundle_absorbed, 2);
        assert_eq!(out.len(), 3); // all pairs match at 0.6
    }

    #[test]
    fn dissimilar_records_found_new_bundles() {
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.8));
        let mut j = BundleJoiner::new(cfg);
        let mut out = Vec::new();
        j.process(&rec(0, &[1, 2, 3]), &mut out);
        j.process(&rec(1, &[10, 20, 30]), &mut out);
        assert_eq!(j.bundles(), 2);
        assert_eq!(j.stats().bundles_created, 2);
    }

    #[test]
    fn agrees_with_naive_mixed_stream() {
        let mut records = Vec::new();
        for i in 0..60u64 {
            let fam = (i % 5) as u32 * 50;
            let variant = (i % 3) as u32;
            records.push(rec(
                i,
                &[fam, fam + 1, fam + 2, fam + 3, fam + 4, fam + 5 + variant],
            ));
        }
        assert_same_as_naive(BundleConfig::new(JoinConfig::jaccard(0.7)), &records);
    }

    #[test]
    fn agrees_with_naive_windowed() {
        let records: Vec<Record> = (0..40)
            .map(|i| {
                let fam = (i % 4) as u32 * 20;
                rec(i, &[fam, fam + 1, fam + 2, fam + 3, 1000 + (i % 2) as u32])
            })
            .collect();
        let cfg = BundleConfig::new(JoinConfig {
            threshold: Threshold::jaccard(0.6),
            window: Window::Count(9),
        });
        assert_same_as_naive(cfg, &records);
    }

    #[test]
    fn member_cap_respected() {
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.5)).with_max_members(2);
        let mut j = BundleJoiner::new(cfg);
        let mut out = Vec::new();
        for i in 0..5u64 {
            j.process(&rec(i, &[1, 2, 3, 4, 5]), &mut out);
        }
        assert!(j.bundles() >= 2, "cap forces extra bundles");
        for slotted in 0..j.store.capacity_slots() as u32 {
            if let Some(b) = j.store.get(slotted) {
                assert!(b.members.len() <= 2);
            }
        }
        // Results unaffected: 5 identical records → C(5,2)=10 pairs.
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn eviction_kills_members_and_bundles() {
        let cfg = BundleConfig::new(JoinConfig {
            threshold: Threshold::jaccard(0.9),
            window: Window::Count(2),
        });
        let mut j = BundleJoiner::new(cfg);
        let mut out = Vec::new();
        for i in 0..10u64 {
            j.process(&rec(i, &[1, 2, 3, 4]), &mut out);
        }
        assert!(j.stored() <= 3);
        assert!(j.stats().evicted >= 7);
        let last = out.iter().filter(|m| m.later == RecordId(9)).count();
        assert_eq!(last, 2);
    }

    #[test]
    fn delta_verification_matches_exact_overlap() {
        // Probe similar to a member but less similar to the representative.
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.6)).with_bundle_tau(0.6);
        let mut j = BundleJoiner::new(cfg);
        let mut out = Vec::new();
        j.process(&rec(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]), &mut out);
        // Member differs from rep in two tokens.
        j.process(&rec(1, &[1, 2, 3, 4, 5, 6, 7, 8, 11, 12]), &mut out);
        // Probe equals the member exactly.
        j.process(&rec(2, &[1, 2, 3, 4, 5, 6, 7, 8, 11, 12]), &mut out);
        let pair_12 = out
            .iter()
            .find(|m| m.key() == (1, 2))
            .expect("member match found");
        assert!((pair_12.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bundle_tau")]
    fn config_validates_bundle_tau() {
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.9)).with_bundle_tau(0.0);
        let _ = BundleJoiner::new(cfg);
    }

    #[test]
    fn loose_bundle_tau_below_join_tau_stays_exact() {
        // Grouping threshold below the join threshold forms looser bundles
        // but must not change the result set.
        let mut records = Vec::new();
        for i in 0..80u64 {
            let fam = (i % 6) as u32 * 40;
            let variant = (i % 4) as u32;
            records.push(rec(i, &[fam, fam + 1, fam + 2, fam + 3, fam + 8 + variant]));
        }
        let cfg = BundleConfig::new(JoinConfig::jaccard(0.8)).with_bundle_tau(0.5);
        assert_same_as_naive(cfg, &records);
    }
}
