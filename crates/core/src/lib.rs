//! Core streaming set-similarity join algorithms.
//!
//! This crate contains everything a *single* joiner needs: similarity
//! measures with exact filter bounds ([`sim`]), merge- and delta-based
//! verification ([`verify`]), sliding windows ([`window`]), index machinery
//! ([`index`]), and four streaming join algorithms ([`join`]) — the naive
//! ground truth, the AllPairs and PPJoin baselines, and the bundle-based
//! joiner with batch verification that is the paper's local contribution.
//!
//! ```
//! use ssj_core::join::{BundleJoiner, JoinConfig, StreamJoiner};
//! use ssj_text::{Record, RecordId, TokenId};
//!
//! let mut joiner = BundleJoiner::with_defaults(JoinConfig::jaccard(0.8));
//! let mk = |id, toks: &[u32]| {
//!     Record::from_sorted(RecordId(id), 0, toks.iter().map(|&t| TokenId(t)).collect())
//! };
//! let mut out = Vec::new();
//! joiner.process(&mk(0, &[1, 2, 3, 4, 5]), &mut out);
//! joiner.process(&mk(1, &[1, 2, 3, 4, 5]), &mut out);
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].earlier, RecordId(0));
//! ```

#![warn(missing_docs)]

pub mod index;
pub mod join;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod verify;
pub mod window;

pub use join::{
    AllPairsJoiner, BundleConfig, BundleJoiner, JoinConfig, MatchPair, NaiveJoiner, PpJoinJoiner,
    StreamJoiner,
};
pub use sim::{SimFn, Threshold};
pub use stats::JoinStats;
pub use window::Window;
