//! Sliding-window semantics for the streaming join.
//!
//! Window membership is defined by *watermarks carried by the probing
//! record*, not by per-joiner local counts: a stored record is visible to a
//! probe iff it lies within the window measured from the probe's global
//! arrival id (count windows) or timestamp (time windows). This makes the
//! semantics identical whether the index lives on one node or is length-
//! partitioned across many — each joiner evaluates the same predicate —
//! which is what the distributed-equivalence tests rely on.

use std::collections::VecDeque;

/// A sliding-window policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Join against the entire history.
    Unbounded,
    /// A probe joins against the `W` most recently arrived records
    /// (by global arrival id).
    Count(u64),
    /// A probe with timestamp `t` joins against records with timestamps in
    /// `(t − W, t]`.
    TimeMs(u64),
}

impl Window {
    /// Is a stored record (with the given arrival id and timestamp) outside
    /// the window of a probe?
    #[inline]
    pub fn expired(&self, stored_id: u64, stored_ts: u64, probe_id: u64, probe_ts: u64) -> bool {
        match *self {
            Window::Unbounded => false,
            Window::Count(w) => probe_id.saturating_sub(stored_id) > w,
            Window::TimeMs(w) => probe_ts.saturating_sub(stored_ts) > w,
        }
    }
}

/// A FIFO of stored entries in arrival order, drained as the watermark
/// advances. Joiners push on insert and call [`drain_expired`] on every
/// probe/insert; the callback receives each evicted payload.
///
/// [`drain_expired`]: EvictionQueue::drain_expired
#[derive(Debug, Clone)]
pub struct EvictionQueue<T> {
    entries: VecDeque<(u64, u64, T)>,
}

impl<T> Default for EvictionQueue<T> {
    fn default() -> Self {
        Self {
            entries: VecDeque::new(),
        }
    }
}

impl<T> EvictionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stored entry. Ids and timestamps must be non-decreasing
    /// across calls (streams arrive in order); this is debug-asserted.
    pub fn push(&mut self, id: u64, ts: u64, payload: T) {
        debug_assert!(
            self.entries
                .back()
                .is_none_or(|&(i, t, _)| i <= id && t <= ts),
            "eviction queue requires arrival order"
        );
        self.entries.push_back((id, ts, payload));
    }

    /// Evicts every entry expired w.r.t. the probe watermark, invoking
    /// `on_evict` for each. Returns the number evicted.
    pub fn drain_expired(
        &mut self,
        window: Window,
        probe_id: u64,
        probe_ts: u64,
        mut on_evict: impl FnMut(T),
    ) -> usize {
        let mut n = 0;
        while let Some(&(id, ts, _)) = self.entries.front() {
            if window.expired(id, ts, probe_id, probe_ts) {
                let (_, _, payload) = self.entries.pop_front().expect("front checked");
                on_evict(payload);
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Iterates the live payloads in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, _, payload)| payload)
    }

    /// Iterates the live entries as `(id, timestamp, payload)` in arrival
    /// order. Used by the snapshot path, where the stored payload alone does
    /// not carry its arrival coordinates.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64, &T)> {
        self.entries
            .iter()
            .map(|(id, ts, payload)| (*id, *ts, payload))
    }

    /// Mutable access to every stored payload (used to rewrite slot handles
    /// after a store compaction).
    pub fn for_each_payload_mut(&mut self, mut f: impl FnMut(&mut T)) {
        for (_, _, payload) in self.entries.iter_mut() {
            f(payload);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        assert!(!Window::Unbounded.expired(0, 0, u64::MAX, u64::MAX));
    }

    #[test]
    fn count_window_keeps_last_w() {
        let w = Window::Count(2);
        // probe id 10 sees ids 8 and 9.
        assert!(!w.expired(9, 0, 10, 0));
        assert!(!w.expired(8, 0, 10, 0));
        assert!(w.expired(7, 0, 10, 0));
    }

    #[test]
    fn time_window_half_open() {
        let w = Window::TimeMs(100);
        assert!(!w.expired(0, 900, 0, 1000)); // exactly at the edge: visible
        assert!(w.expired(0, 899, 0, 1000));
    }

    #[test]
    fn saturating_on_reordered_watermark() {
        // A stored id larger than the probe id (can't happen in practice)
        // must not underflow.
        assert!(!Window::Count(1).expired(5, 0, 3, 0));
    }

    #[test]
    fn eviction_queue_drains_in_order() {
        let mut q = EvictionQueue::new();
        for i in 0..5u64 {
            q.push(i, i * 10, i);
        }
        let mut evicted = Vec::new();
        let n = q.drain_expired(Window::Count(2), 4, 40, |p| evicted.push(p));
        // probe id 4 sees ids 2,3 (4 itself not stored yet) — evicts 0,1.
        assert_eq!(n, 2);
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn eviction_queue_time_window() {
        let mut q = EvictionQueue::new();
        q.push(0, 0, "a");
        q.push(1, 500, "b");
        q.push(2, 900, "c");
        let mut out = Vec::new();
        q.drain_expired(Window::TimeMs(300), 3, 1000, |p| out.push(p));
        assert_eq!(out, vec!["a", "b"]); // 900 is within (700, 1000]
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn eviction_queue_unbounded_never_drains() {
        let mut q = EvictionQueue::new();
        q.push(0, 0, ());
        assert_eq!(
            q.drain_expired(Window::Unbounded, 1 << 40, 1 << 40, |_| {}),
            0
        );
        assert_eq!(q.len(), 1);
    }
}
