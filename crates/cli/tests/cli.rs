//! End-to-end CLI tests driving the built `dssj` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dssj(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dssj"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dssj-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const DOCS: &str = "apache storm stream processing\n\
                    stream processing with apache storm\n\
                    rust borrow checker explained\n\
                    the rust borrow checker, explained\n";

#[test]
fn join_finds_similar_lines() {
    let input = write_temp("join_input.txt", DOCS);
    let out = dssj(&["join", "--input", input.to_str().unwrap(), "--tau", "0.6"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pairs       : 2"), "{stdout}");
    assert!(stdout.contains("line 0 <-> line 1"), "{stdout}");
    assert!(stdout.contains("line 2 <-> line 3"), "{stdout}");
}

#[test]
fn join_with_qgrams() {
    let input = write_temp(
        "join_qgram.txt",
        "similarity join\nsimilarity joins\nunrelated words\n",
    );
    let out = dssj(&[
        "join",
        "--input",
        input.to_str().unwrap(),
        "--tau",
        "0.7",
        "--qgram",
        "3",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pairs       : 1"), "{stdout}");
}

#[test]
fn bistream_joins_two_files() {
    let left = write_temp(
        "bi_left.txt",
        "breaking news about storms\ncalm weather today\n",
    );
    let right = write_temp("bi_right.txt", "breaking news about storms\n");
    let out = dssj(&[
        "bistream",
        "--left",
        left.to_str().unwrap(),
        "--right",
        right.to_str().unwrap(),
        "--tau",
        "0.9",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pairs       : 1"), "{stdout}");
}

#[test]
fn generate_then_partition_roundtrip() {
    let corpus = std::env::temp_dir().join("dssj-cli-tests/gen.txt");
    let out = dssj(&[
        "generate",
        "--profile",
        "aol",
        "--n",
        "500",
        "--out",
        corpus.to_str().unwrap(),
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&corpus).unwrap();
    assert_eq!(text.lines().count(), 500);

    let out = dssj(&["partition", "--input", corpus.to_str().unwrap(), "--k", "4"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("joiner 0"), "{stdout}");
    assert!(stdout.contains("imbalance"), "{stdout}");
}

#[test]
fn join_under_chaos_finds_the_same_pairs() {
    let input = write_temp("join_chaos.txt", DOCS);
    let out = dssj(&[
        "join",
        "--input",
        input.to_str().unwrap(),
        "--tau",
        "0.6",
        "--chaos-seed",
        "42",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // At-least-once delivery masks the injected link faults: the result
    // set is identical to the clean run's.
    assert!(stdout.contains("pairs       : 2"), "{stdout}");
    assert!(stdout.contains("line 0 <-> line 1"), "{stdout}");
    assert!(stdout.contains("line 2 <-> line 3"), "{stdout}");
}

#[test]
fn bad_chaos_seed_rejected() {
    let input = write_temp("chaos_seed.txt", "a b c\n");
    let out = dssj(&[
        "join",
        "--input",
        input.to_str().unwrap(),
        "--chaos-seed",
        "not-a-number",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("chaos-seed"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dssj(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_required_flag_fails() {
    let out = dssj(&["join"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn bad_tau_rejected() {
    let input = write_temp("tau.txt", "a b c\n");
    let out = dssj(&["join", "--input", input.to_str().unwrap(), "--tau", "1.5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("tau"));
}
