//! The four `dssj` subcommands.

use crate::args::{ArgError, Args};
use ssj_core::{JoinConfig, Threshold, Window};
use ssj_distrib::{
    run_bistream_distributed, run_distributed, CheckpointConfig, DistributedJoinConfig, FileStore,
    LocalAlgo, PartitionMethod, Scheduler, SimConfig, Strategy,
};
use ssj_partition::{imbalance, load_aware, CostModel, LengthHistogram};
use ssj_text::{load_lines, Corpus, QGramTokenizer, Record, WordTokenizer};
use ssj_workloads::{DatasetProfile, StreamGenerator};
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

type CliResult = Result<(), Box<dyn Error>>;

/// Prints usage and returns the conventional exit code.
pub fn usage() -> ExitCode {
    eprintln!(
        "usage:
  dssj join      --input FILE [--tau T=0.8] [--algo bundle|ppjoin|allpairs]
                 [--qgram Q] [--window N] [--k K=4] [--show-pairs N=10]
                 [--chaos-seed S] [--shed-watermark W] [--source-rate R]
                 [--sim SEED] [--checkpoint-dir DIR [--checkpoint-interval N=1000]]
                 [--restore-from DIR] [--trace-out FILE] [--chrome-out FILE]
                 [--metrics-out FILE]
  dssj bistream  --left FILE --right FILE [--tau T=0.8] [--algo A] [--k K=4]
                 [--chaos-seed S] [--source-rate R] [--sim SEED]
                 [--checkpoint-dir DIR [--checkpoint-interval N=1000]]
                 [--restore-from DIR] [--trace-out FILE] [--chrome-out FILE]
                 [--metrics-out FILE]
  dssj generate  --profile aol|dblp|enron|tweet --n N --out FILE [--seed S=1]
  dssj partition --input FILE [--tau T=0.8] [--k K=8]"
    );
    ExitCode::from(2)
}

fn load(path: &str, args: &Args) -> Result<Corpus, Box<dyn Error>> {
    let corpus = match args.get("qgram") {
        Some(q) => {
            let q: usize = q
                .parse()
                .map_err(|_| ArgError(format!("--qgram: cannot parse '{q}'")))?;
            load_lines(Path::new(path), QGramTokenizer::new(q), 1)?
        }
        None => load_lines(Path::new(path), WordTokenizer::default(), 1)?,
    };
    Ok(corpus)
}

fn join_config(args: &Args) -> Result<JoinConfig, ArgError> {
    let tau: f64 = args.get_or("tau", 0.8)?;
    if !(0.0..=1.0).contains(&tau) || tau == 0.0 {
        return Err(ArgError(format!("--tau must be in (0, 1], got {tau}")));
    }
    let window = match args.get("window") {
        None => Window::Unbounded,
        Some(w) => Window::Count(
            w.parse()
                .map_err(|_| ArgError(format!("--window: cannot parse '{w}'")))?,
        ),
    };
    Ok(JoinConfig {
        threshold: Threshold::jaccard(tau),
        window,
    })
}

fn local_algo(args: &Args) -> Result<LocalAlgo, ArgError> {
    match args.get("algo").unwrap_or("bundle") {
        "bundle" => Ok(LocalAlgo::bundle()),
        "ppjoin" => Ok(LocalAlgo::PpJoin),
        "allpairs" => Ok(LocalAlgo::AllPairs),
        "naive" => Ok(LocalAlgo::Naive),
        other => Err(ArgError(format!("--algo: unknown algorithm '{other}'"))),
    }
}

fn parse_opt<T: std::str::FromStr>(args: &Args, key: &str) -> Result<Option<T>, ArgError> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
    }
}

fn dist_config(args: &Args, join: JoinConfig) -> Result<DistributedJoinConfig, ArgError> {
    let k: usize = args.get_or("k", 4)?;
    let scheduler = match parse_opt::<u64>(args, "sim")? {
        // Deterministic replay: the whole topology runs on the virtual
        // clock, so wall-clock pacing is meaningless there.
        Some(seed) => {
            args.forbid(
                "source-rate",
                "paces the source on the wall clock and cannot run under --sim",
            )?;
            Scheduler::Sim(SimConfig::seeded(seed))
        }
        None => Scheduler::Threads,
    };
    args.require_with("checkpoint-interval", "checkpoint-dir")?;
    let checkpoint = match args.get("checkpoint-dir") {
        Some(dir) => {
            let interval: u64 = args.get_or("checkpoint-interval", 1000)?;
            if interval == 0 {
                return Err(ArgError("--checkpoint-interval must be > 0".into()));
            }
            Some(
                CheckpointConfig::in_dir(interval, Path::new(dir))
                    .map_err(|e| ArgError(format!("--checkpoint-dir {dir}: {e}")))?,
            )
        }
        None => None,
    };
    let restore_from = match args.get("restore-from") {
        Some(dir) => Some(Arc::new(
            FileStore::open(Path::new(dir))
                .map_err(|e| ArgError(format!("--restore-from {dir}: {e}")))?,
        ) as _),
        None => None,
    };
    Ok(DistributedJoinConfig {
        k,
        join,
        local: local_algo(args)?,
        strategy: Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 10_000,
        },
        channel_capacity: 1024,
        source_rate: parse_opt(args, "source-rate")?,
        fault: None,
        // Chaos mode: lossy wires masked by at-least-once delivery — the
        // result set is unchanged, the cost shows up in the summary.
        chaos_seed: parse_opt(args, "chaos-seed")?,
        // Degraded mode: shed whole records above this queue depth.
        shed_watermark: parse_opt(args, "shed-watermark")?,
        replay_buffer_cap: None,
        checkpoint,
        restore_from,
        scheduler,
        // Tracing is observation-only: under --sim the same seed renders a
        // byte-identical trace, and leaving both flags off keeps the hot
        // path instrumentation-free.
        trace: if args.has("trace-out") || args.has("chrome-out") {
            Some(ssj_distrib::TraceConfig::default())
        } else {
            None
        },
    })
}

/// Writes whichever observability exports were requested: a JSONL span
/// trace (`--trace-out`), a chrome://tracing timeline (`--chrome-out`),
/// and a Prometheus text-format metrics snapshot (`--metrics-out`).
fn write_exports(args: &Args, out: &ssj_distrib::DistributedJoinResult) -> CliResult {
    if let Some(path) = args.get("trace-out") {
        let trace = out.trace.as_ref().expect("tracing enabled by --trace-out");
        std::fs::write(path, obs::trace_jsonl(trace))?;
        println!("trace       : {} spans -> {path}", trace.len());
    }
    if let Some(path) = args.get("chrome-out") {
        let trace = out.trace.as_ref().expect("tracing enabled by --chrome-out");
        std::fs::write(path, obs::trace_chrome(trace))?;
        println!("chrome trace: {} spans -> {path}", trace.len());
    }
    if let Some(path) = args.get("metrics-out") {
        let snap = out.report.metrics_snapshot();
        std::fs::write(path, obs::prometheus(&snap))?;
        println!("metrics     : {} series -> {path}", snap.samples.len());
    }
    Ok(())
}

fn print_summary(out: &ssj_distrib::DistributedJoinResult) {
    println!("records     : {}", out.records);
    println!("pairs       : {}", out.pairs.len());
    println!("throughput  : {:.0} records/s", out.throughput());
    println!(
        "comm        : {:.2} msgs/record, {:.0} bytes/record, replication {:.2}",
        out.msgs_per_record(),
        out.bytes_per_record(),
        out.replication()
    );
    println!(
        "latency     : mean {:.0} us, p99 {:.0} us",
        out.latency.mean().as_secs_f64() * 1e6,
        out.latency.quantile(0.99).as_secs_f64() * 1e6
    );
    let (dropped, duped, delayed) = out.report.link_faults();
    if dropped + duped + delayed > 0 {
        println!(
            "chaos       : link faults {} dropped / {} duplicated / {} delayed, \
             {} retries, {} duplicate deliveries suppressed",
            dropped,
            duped,
            delayed,
            out.report.total_retries(),
            out.report.total_dup_drops()
        );
    }
    if out.report.shed() > 0 {
        println!(
            "shed        : {} records dropped at the dispatcher under overload",
            out.report.shed()
        );
    }
    if out.report.checkpoints() > 0 {
        let latency = out.report.checkpoint_latency();
        println!(
            "checkpoints : {} snapshots published, {} bytes, epoch latency mean {:.0} us",
            out.report.checkpoints(),
            out.report.checkpoint_bytes(),
            latency.mean().as_secs_f64() * 1e6
        );
    }
    if let Some(cut) = out.restored_cut {
        println!("restored    : resumed from checkpoint cut at record id {cut}");
    }
}

/// `dssj join` — self-join one file of line-documents.
pub fn join(args: &Args) -> CliResult {
    let corpus = load(args.required("input")?, args)?;
    let join = join_config(args)?;
    let cfg = dist_config(args, join)?;
    let out = run_distributed(corpus.records(), &cfg);
    print_summary(&out);
    write_exports(args, &out)?;
    if args.flag("verbose") {
        for j in &out.joiners {
            println!(
                "joiner {}: indexed {} candidates {} verifications {} results {}",
                j.task, j.stats.indexed, j.stats.candidates, j.stats.verifications, j.stats.results
            );
        }
    }
    let show: usize = args.get_or("show-pairs", 10)?;
    let mut pairs = out.pairs.clone();
    pairs.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then(a.key().cmp(&b.key()))
    });
    for m in pairs.iter().take(show) {
        println!(
            "{:.3}  line {} <-> line {}",
            m.similarity, m.earlier.0, m.later.0
        );
    }
    Ok(())
}

/// `dssj bistream` — join two files against each other.
pub fn bistream(args: &Args) -> CliResult {
    // Shed-adjusted recall accounting is only defined for the self-join
    // oracle; reject here instead of producing silently meaningless output.
    args.forbid(
        "shed-watermark",
        "cannot be combined with bistream input (shed accounting is only \
         defined for self-joins)",
    )?;
    // Token ids must come from one shared dictionary and record ids must be
    // globally unique, so both files are tokenized together.
    let (left_records, right_records) =
        tokenize_together(args.required("left")?, args.required("right")?, args)?;
    let join = join_config(args)?;
    let cfg = dist_config(args, join)?;
    let out = run_bistream_distributed(&left_records, &right_records, &cfg);
    print_summary(&out);
    write_exports(args, &out)?;
    let show: usize = args.get_or("show-pairs", 10)?;
    for m in out.pairs.iter().take(show) {
        println!("{:.3}  {:?} <-> {:?}", m.similarity, m.earlier, m.later);
    }
    Ok(())
}

/// Tokenizes two files under one shared dictionary: the left file's lines
/// take the first record ids, the right file's the following ones (ids are
/// arrival order, so here "all of left arrived before right" — windowed
/// bi-stream joins from files should pre-interleave the inputs).
fn tokenize_together(
    left_path: &str,
    right_path: &str,
    args: &Args,
) -> Result<(Vec<Record>, Vec<Record>), Box<dyn Error>> {
    use ssj_text::{CorpusBuilder, Tokenizer};
    fn build<T: Tokenizer>(
        left_path: &str,
        right_path: &str,
        tokenizer: T,
    ) -> Result<(Vec<Record>, usize), Box<dyn Error>> {
        let left_text = std::fs::read_to_string(left_path)?;
        let right_text = std::fs::read_to_string(right_path)?;
        let mut builder = CorpusBuilder::new(tokenizer);
        let mut n_left = 0;
        let mut ts = 0;
        for line in left_text.lines() {
            let before = builder.len();
            builder.push_text(line, ts);
            if builder.len() > before {
                n_left += 1;
                ts += 1;
            }
        }
        for line in right_text.lines() {
            builder.push_text(line, ts);
            ts += 1;
        }
        Ok((builder.build().into_records(), n_left))
    }
    let (records, n_left) = match args.get("qgram") {
        Some(q) => {
            let q: usize = q
                .parse()
                .map_err(|_| ArgError(format!("--qgram: cannot parse '{q}'")))?;
            build(left_path, right_path, QGramTokenizer::new(q))?
        }
        None => build(left_path, right_path, WordTokenizer::default())?,
    };
    let left = records[..n_left].to_vec();
    let right = records[n_left..].to_vec();
    Ok((left, right))
}

/// `dssj generate` — write a synthetic corpus as pseudo-word text.
pub fn generate(args: &Args) -> CliResult {
    let profile_name = args.required("profile")?;
    let profile = DatasetProfile::by_name(profile_name)
        .ok_or_else(|| ArgError(format!("unknown profile '{profile_name}'")))?;
    let n: usize = args.get_or("n", 10_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let out_path = args.required("out")?;
    let records = StreamGenerator::new(profile, seed).take_records(n);
    let mut file = std::io::BufWriter::new(std::fs::File::create(out_path)?);
    for r in &records {
        let mut first = true;
        for t in r.tokens() {
            if !first {
                write!(file, " ")?;
            }
            write!(file, "t{}", t.raw())?;
            first = false;
        }
        writeln!(file)?;
    }
    file.flush()?;
    println!("wrote {} records to {out_path}", records.len());
    Ok(())
}

/// `dssj partition` — show the load-aware partition plan for a corpus.
pub fn partition(args: &Args) -> CliResult {
    let corpus = load(args.required("input")?, args)?;
    let tau: f64 = args.get_or("tau", 0.8)?;
    let k: usize = args.get_or("k", 8)?;
    let hist = LengthHistogram::from_records(corpus.records());
    if hist.is_empty() {
        return Err(Box::new(ArgError("input has no records".into())));
    }
    let cost = CostModel::build(&hist, Threshold::jaccard(tau), hist.max_len());
    let plan = load_aware(&cost, k);
    println!(
        "{} records, lengths 1..={}, mean {:.1}",
        hist.total(),
        hist.max_len(),
        hist.mean()
    );
    println!("load-aware partition for k = {k}, tau = {tau}:");
    let loads = plan.loads(&cost);
    let total: f64 = loads.iter().sum();
    for (i, load) in loads.iter().enumerate() {
        let (lo, hi) = plan.range(i);
        println!(
            "  joiner {i}: lengths [{lo:>4}, {hi:>4}]  load {:>5.1}%",
            100.0 * load / total.max(1e-12)
        );
    }
    println!("imbalance (max/avg): {:.3}", imbalance(&plan, &cost));
    Ok(())
}
