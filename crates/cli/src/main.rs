//! `dssj` — the command-line interface.
//!
//! ```text
//! dssj join      --input FILE [--tau T] [--algo bundle|ppjoin|allpairs]
//!                [--qgram Q] [--window N] [--k K] [--show-pairs N]
//!                [--sim SEED] [--source-rate R] [--checkpoint-dir DIR]
//!                [--checkpoint-interval N] [--restore-from DIR]
//! dssj bistream  --left FILE --right FILE [--tau T] [--algo ...] [--k K]
//! dssj generate  --profile aol|dblp|enron|tweet --n N --out FILE [--seed S]
//! dssj partition --input FILE [--tau T] [--k K]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return commands::usage();
    };
    let parsed = match args::Args::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return commands::usage();
        }
    };
    let result = match command.as_str() {
        "join" => commands::join(&parsed),
        "bistream" => commands::bistream(&parsed),
        "generate" => commands::generate(&parsed),
        "partition" => commands::partition(&parsed),
        "--help" | "-h" | "help" => {
            commands::usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: unknown command '{other}'");
            return commands::usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
