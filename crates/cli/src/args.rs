//! Tiny flag parser: `--key value` pairs plus boolean flags. Hand-rolled
//! to keep the dependency set at the workspace's approved list.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command arguments.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A parse or lookup failure, rendered to the user as-is.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` and `--flag` tokens.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected argument '{token}'")));
            };
            // A value follows unless the next token is another flag or the
            // end of input.
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.values.insert(key.to_owned(), argv[i + 1].clone());
                i += 2;
            } else {
                args.flags.push(key.to_owned());
                i += 1;
            }
        }
        Ok(args)
    }

    /// A required string value.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// An optional string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Whether the key appeared at all, as `--key value` or bare `--key`.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key) || self.flag(key)
    }

    /// Rejects `--key` if it was given, explaining why the combination is
    /// invalid. Commands use this to fail fast on incompatible flag combos
    /// (e.g. `--shed-watermark` with bistream input) instead of tripping an
    /// assert deep inside the join driver.
    pub fn forbid(&self, key: &str, why: &str) -> Result<(), ArgError> {
        if self.has(key) {
            return Err(ArgError(format!("--{key}: {why}")));
        }
        Ok(())
    }

    /// Rejects `--key` unless `--requires` was also given: some flags only
    /// make sense as a refinement of another (e.g. `--checkpoint-interval`
    /// without `--checkpoint-dir` would silently checkpoint nowhere).
    pub fn require_with(&self, key: &str, requires: &str) -> Result<(), ArgError> {
        if self.has(key) && !self.has(requires) {
            return Err(ArgError(format!(
                "--{key} requires --{requires} to be given as well"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = Args::parse(&argv(&["--tau", "0.8", "--verbose", "--k", "4"])).unwrap();
        assert_eq!(a.required("tau").unwrap(), "0.8");
        assert_eq!(a.get_or("k", 1usize).unwrap(), 4);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_required_reports_key() {
        let a = Args::parse(&argv(&[])).unwrap();
        let e = a.required("input").unwrap_err();
        assert!(e.to_string().contains("--input"));
    }

    #[test]
    fn bad_parse_reports_value() {
        let a = Args::parse(&argv(&["--k", "banana"])).unwrap();
        let e = a.get_or("k", 1usize).unwrap_err();
        assert!(e.to_string().contains("banana"));
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Args::parse(&argv(&["stray"])).is_err());
    }

    #[test]
    fn forbid_rejects_present_keys_only() {
        let a = Args::parse(&argv(&["--shed-watermark", "4", "--verbose"])).unwrap();
        let e = a.forbid("shed-watermark", "not valid here").unwrap_err();
        assert!(e.to_string().contains("--shed-watermark"));
        assert!(e.to_string().contains("not valid here"));
        // Bare flags count as present too; absent keys pass.
        assert!(a.forbid("verbose", "no").is_err());
        assert!(a.forbid("chaos-seed", "no").is_ok());
    }

    #[test]
    fn require_with_enforces_the_companion_flag() {
        let a = Args::parse(&argv(&["--checkpoint-interval", "500"])).unwrap();
        let e = a
            .require_with("checkpoint-interval", "checkpoint-dir")
            .unwrap_err();
        assert!(e.to_string().contains("--checkpoint-dir"));
        let b = Args::parse(&argv(&[
            "--checkpoint-interval",
            "500",
            "--checkpoint-dir",
            "/tmp/x",
        ]))
        .unwrap();
        assert!(b
            .require_with("checkpoint-interval", "checkpoint-dir")
            .is_ok());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert_eq!(a.get_or("tau", 0.8f64).unwrap(), 0.8);
        assert!(a.get("missing").is_none());
    }
}
