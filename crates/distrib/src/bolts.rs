//! The three processing vertices of the join topology.

use crate::checkpoint::CheckpointCoordinator;
use crate::msg::{JoinMsg, RecordMsg};
use crate::recovery::{RecoveryState, ReplayEntry};
use crate::route::{token_owner, Router};
use obs::{Stage, StageProfile};
use parking_lot::Mutex;
use ssj_core::join::bistream::BiStreamJoiner;
use ssj_core::snapshot::SnapshotEntry;
use ssj_core::window::EvictionQueue;
use ssj_core::{JoinStats, MatchPair, StreamJoiner, Threshold, Window};
use ssj_text::{FxHashMap, Record, RecordId, TokenId};
use std::sync::Arc;
use std::time::Duration;
use stormlite::{BarrierAligner, Bolt, LatencyHistogram, Outbox, Timestamp};

/// Task-local per-stage latency recorder. Bolts record into the private
/// [`StageProfile`] on the hot path (no locking) and merge it into the
/// run-shared profile once, when the bolt finishes. Recording reads only
/// the topology clock — it never mutates it and draws no randomness — so
/// enabling stage profiling leaves simulated transcripts byte-identical.
pub struct StageRecorder {
    local: StageProfile,
    shared: Arc<Mutex<StageProfile>>,
}

impl StageRecorder {
    /// A recorder that flushes into `shared` on [`StageRecorder::flush`].
    pub fn new(shared: Arc<Mutex<StageProfile>>) -> Self {
        Self {
            local: StageProfile::new(),
            shared,
        }
    }

    #[inline]
    fn record(&mut self, stage: Stage, dur: Duration) {
        self.local.record(stage, dur);
    }

    /// Merges the task-local samples into the shared profile.
    pub fn flush(&mut self) {
        self.shared.lock().merge(&self.local);
        self.local = StageProfile::new();
    }
}

/// The dispatcher's side of checkpointing: counts dispatched records and
/// opens an epoch (injecting one barrier per joiner wire) every
/// [`CheckpointCoordinator::interval`] of them.
struct DispatcherCheckpoint {
    coordinator: Arc<CheckpointCoordinator>,
    /// Whether routed payloads carry sides (recorded in manifests).
    bistream: bool,
    /// Records dispatched since the last barrier.
    routed_since_barrier: u64,
    /// Id of the last dispatched record — the next barrier's cut.
    last_dispatched: Option<u64>,
    /// Per task: last index-target id routed there (its snapshot cut).
    cuts: Vec<Option<u64>>,
}

/// Routes each arriving record to its index/probe joiners. One task.
pub struct DispatcherBolt<R: Router> {
    router: R,
    /// Replay buffers fed for every index target (fault-injected runs only).
    recovery: Option<Arc<RecoveryState>>,
    /// Degraded mode: shed whole records when any target joiner's queue is
    /// at least this deep. `None` = never shed (backpressure blocks instead).
    shed_watermark: Option<usize>,
    /// Ids of shed records, for exact recall accounting by the caller.
    shed_log: Arc<Mutex<Vec<u64>>>,
    /// Barrier injection state (checkpointing runs only).
    checkpoint: Option<DispatcherCheckpoint>,
    /// Per-stage latency recording (observability-enabled runs only).
    stages: Option<StageRecorder>,
}

impl<R: Router> DispatcherBolt<R> {
    /// A dispatcher around a router.
    pub fn new(router: R) -> Self {
        Self {
            router,
            recovery: None,
            shed_watermark: None,
            shed_log: Arc::new(Mutex::new(Vec::new())),
            checkpoint: None,
            stages: None,
        }
    }

    /// Records per-stage latencies into `shared` (see [`StageRecorder`]).
    /// `None` (the default) records nothing and costs nothing.
    pub fn with_stages(mut self, shared: Option<Arc<Mutex<StageProfile>>>) -> Self {
        self.stages = shared.map(StageRecorder::new);
        self
    }

    /// Feeds the recovery replay buffers as records are routed.
    pub fn with_recovery(mut self, recovery: Option<Arc<RecoveryState>>) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables load shedding at `watermark` queued messages, logging shed
    /// record ids into `log`. Shedding drops the *whole* record — it is
    /// neither probed nor indexed anywhere — so the surviving output is
    /// exactly the join of the kept records.
    pub fn with_shedding(mut self, watermark: Option<usize>, log: Arc<Mutex<Vec<u64>>>) -> Self {
        self.shed_watermark = watermark;
        self.shed_log = log;
        self
    }

    /// Enables barrier injection every `coordinator.interval()` dispatched
    /// records. `bistream` is recorded in each epoch's manifest so a
    /// restore can validate topology shape.
    pub fn with_checkpointing(
        mut self,
        coordinator: Option<Arc<CheckpointCoordinator>>,
        bistream: bool,
    ) -> Self {
        self.checkpoint = coordinator.map(|coordinator| DispatcherCheckpoint {
            cuts: vec![None; coordinator.k()],
            coordinator,
            bistream,
            routed_since_barrier: 0,
            last_dispatched: None,
        });
        self
    }

    /// Buffers `payload` for replay at `task` before its index message is
    /// emitted (the ordering [`RecoveryState::buffer_index_target`]
    /// requires).
    fn buffer_for_replay(&self, task: usize, payload: &RecordMsg) {
        if let Some(recovery) = &self.recovery {
            recovery.buffer_index_target(task, ReplayEntry::from_payload(payload));
        }
    }

    /// Checkpoint bookkeeping after a record's messages are emitted: the
    /// record joins the current epoch, and once the interval fills the
    /// dispatcher opens the next epoch and injects its barrier down every
    /// joiner wire (including joiners this record skipped — every task must
    /// publish for the epoch to commit).
    fn note_dispatched(&mut self, id: u64, index_targets: &[usize], out: &mut Outbox<JoinMsg>) {
        let Some(cp) = &mut self.checkpoint else {
            return;
        };
        cp.last_dispatched = Some(id);
        for &t in index_targets {
            cp.cuts[t] = Some(id);
        }
        cp.routed_since_barrier += 1;
        if cp.routed_since_barrier < cp.coordinator.interval() {
            return;
        }
        cp.routed_since_barrier = 0;
        let injected_at = out.now();
        let epoch = cp.coordinator.begin_epoch(
            injected_at,
            cp.last_dispatched.expect("set just above"),
            cp.cuts.clone(),
            cp.bistream,
            self.router.length_partition().cloned(),
        );
        for t in 0..cp.cuts.len() {
            out.emit_direct(t, JoinMsg::Barrier { epoch, injected_at });
        }
    }
}

impl<R: Router> Bolt<JoinMsg> for DispatcherBolt<R> {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        let incoming = msg.payload().expect("dispatcher receives record messages");
        // Latency is measured from the moment the dispatcher makes the
        // routing decision (the paper measures processing latency, not
        // source queueing). The stamp reads the topology clock, so
        // simulated runs measure virtual time.
        let payload = RecordMsg {
            record: incoming.record.clone(),
            ingest: out.now(),
            side: incoming.side,
        };
        let decision = self.router.route(&payload.record);
        // Route span: anchored on the ingest stamp already read above, so
        // stage recording adds no clock mutation and no extra reads when
        // disabled. `b` is the record's total fanout.
        if self.stages.is_some() || out.tracing() {
            let dur = out.now().saturating_since(payload.ingest);
            if let Some(st) = &mut self.stages {
                st.record(Stage::Route, dur);
            }
            out.trace_span(
                Stage::Route,
                payload.ingest,
                payload.record.id().0,
                (decision.index.len() + decision.probe.len()) as u64,
            );
        }
        if matches!(msg, JoinMsg::Index(_)) {
            // Restore re-dispatch: the driver replays a checkpoint's window
            // as index-only source tuples. They rebuild joiner state through
            // the current router — no probes (their results already exist),
            // no shedding (they are state, not load) — and join the current
            // epoch like any dispatched record, so a barrier mid-restore
            // still cuts a consistent prefix.
            for &ix in &decision.index {
                self.buffer_for_replay(ix, &payload);
                out.emit_direct(ix, JoinMsg::Index(payload.clone()));
            }
            self.note_dispatched(payload.record.id().0, &decision.index, out);
            return;
        }
        if let Some(watermark) = self.shed_watermark {
            // Overload check: deepest downstream queue among this record's
            // targets. Shedding happens *before* any emit or replay
            // buffering, so a shed record leaves no trace downstream and
            // the run's output is exactly the join of the kept records.
            let depth = decision
                .index
                .iter()
                .chain(decision.probe.iter())
                .map(|&t| out.direct_queue_depth(t))
                .max()
                .unwrap_or(0);
            if depth >= watermark {
                out.record_shed(1);
                out.trace_instant(Stage::Shed, payload.record.id().0, depth as u64);
                self.shed_log.lock().push(payload.record.id().0);
                return;
            }
        }
        let mut probe_iter = decision.probe.iter().peekable();
        for &ix in &decision.index {
            // Emit probes ordered before/interleaved with the index target;
            // a target in both sets gets the atomic combined message.
            while let Some(&&p) = probe_iter.peek() {
                if p < ix {
                    out.emit_direct(p, JoinMsg::Probe(payload.clone()));
                    probe_iter.next();
                } else {
                    break;
                }
            }
            self.buffer_for_replay(ix, &payload);
            if probe_iter.peek() == Some(&&ix) {
                probe_iter.next();
                out.emit_direct(ix, JoinMsg::ProbeAndIndex(payload.clone()));
            } else {
                out.emit_direct(ix, JoinMsg::Index(payload.clone()));
            }
        }
        for &p in probe_iter {
            out.emit_direct(p, JoinMsg::Probe(payload.clone()));
        }
        self.note_dispatched(payload.record.id().0, &decision.index, out);
    }

    fn finish(&mut self, _out: &mut Outbox<JoinMsg>) {
        if let Some(st) = &mut self.stages {
            st.flush();
        }
    }
}

/// Exact duplicate-result elimination for replicating routers.
///
/// Under prefix routing, the pair `(s, r)` is produced at every joiner
/// owning a token in `prefix(r) ∩ prefix(s)`. Exactly one joiner emits it:
/// the owner of the *smallest* common prefix token. Each joiner remembers
/// the prefix token set of every record it indexed (cheap: prefixes are
/// short, token storage is shared) so it can evaluate the rule locally.
struct PrefixDedup {
    threshold: Threshold,
    window: Window,
    k: usize,
    me: usize,
    prefixes: FxHashMap<RecordId, Box<[TokenId]>>,
    queue: EvictionQueue<RecordId>,
}

impl PrefixDedup {
    fn advance(&mut self, probe_id: u64, probe_ts: u64) {
        let prefixes = &mut self.prefixes;
        self.queue
            .drain_expired(self.window, probe_id, probe_ts, |id| {
                prefixes.remove(&id);
            });
    }

    fn on_index(&mut self, record: &Record) {
        let p = self.threshold.prefix_len(record.len());
        self.prefixes
            .insert(record.id(), record.prefix(p).to_vec().into());
        self.queue
            .push(record.id().0, record.timestamp(), record.id());
    }

    fn should_emit(&self, probe: &Record, earlier: RecordId) -> bool {
        let stored = self
            .prefixes
            .get(&earlier)
            .expect("matched record was indexed here");
        let p = self.threshold.prefix_len(probe.len());
        let min_common = first_common(probe.prefix(p), stored)
            .expect("a matching pair always shares a prefix token");
        token_owner(min_common, self.k) == self.me
    }
}

/// First (smallest) common element of two ascending token slices.
fn first_common(a: &[TokenId], b: &[TokenId]) -> Option<TokenId> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => return Some(a[i]),
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    None
}

/// Final per-joiner statistics published when the topology drains.
#[derive(Debug, Clone)]
pub struct JoinerSnapshot {
    /// Task index of the joiner.
    pub task: usize,
    /// The local joiner's counters (of the final incarnation only — a
    /// crashed incarnation's counters die with it).
    pub stats: JoinStats,
    /// Records (or bundle members) still stored at drain time.
    pub stored: usize,
    /// Inverted-index postings at drain time.
    pub postings: usize,
    /// Which incarnation of this task survived to the drain (0 = the task
    /// never crashed; only meaningful in fault-injected runs).
    pub incarnation: u64,
    /// Records replayed into this task across all of its restarts.
    pub replayed: u64,
    /// Replay-buffer entries evicted by the buffer cap before expiry —
    /// nonzero means a restart may have restored less than its full window.
    pub replay_overflow: u64,
    /// The checkpoint epoch the surviving incarnation restored its window
    /// from, if it came up after a crash with a complete epoch available
    /// (`None` = fresh start or plain buffer replay).
    pub restored_from_epoch: Option<u64>,
}

/// The joiner's local state: one index for self-joins, a pair of indexes
/// for bi-stream joins.
enum LocalState {
    Solo(Box<dyn StreamJoiner + Send>),
    Bi(BiStreamJoiner<Box<dyn StreamJoiner + Send>>),
}

impl LocalState {
    fn probe(&mut self, payload: &RecordMsg, buf: &mut Vec<MatchPair>) {
        match (self, payload.side) {
            (LocalState::Solo(j), None) => j.probe(&payload.record, buf),
            (LocalState::Bi(j), Some(side)) => j.probe(side, &payload.record, buf),
            _ => panic!("message side does not match the joiner mode"),
        }
    }

    fn insert(&mut self, payload: &RecordMsg) {
        match (self, payload.side) {
            (LocalState::Solo(j), None) => j.insert(&payload.record),
            (LocalState::Bi(j), Some(side)) => j.insert(side, &payload.record),
            _ => panic!("message side does not match the joiner mode"),
        }
    }

    /// Rebuilds index state from replayed entries — index-only, nothing is
    /// probed and no results are produced.
    fn restore(&mut self, entries: &[ReplayEntry]) {
        match self {
            LocalState::Solo(j) => {
                let records: Vec<Record> = entries.iter().map(|e| e.record.clone()).collect();
                j.restore(&records);
            }
            LocalState::Bi(j) => {
                for e in entries {
                    j.insert(e.side.expect("bi-stream entries carry a side"), &e.record);
                }
            }
        }
    }

    /// The in-window records this joiner holds, as checkpoint snapshot
    /// entries in ascending id order.
    fn window_snapshot(&self) -> Vec<SnapshotEntry> {
        match self {
            LocalState::Solo(j) => j.window_snapshot().into_iter().map(|r| (None, r)).collect(),
            LocalState::Bi(j) => j
                .window_snapshot()
                .into_iter()
                .map(|(side, r)| (Some(side), r))
                .collect(),
        }
    }

    fn snapshot(&mut self, task: usize) -> JoinerSnapshot {
        match self {
            LocalState::Solo(j) => JoinerSnapshot {
                task,
                stats: j.stats().clone(),
                stored: j.stored(),
                postings: j.postings(),
                incarnation: 0,
                replayed: 0,
                replay_overflow: 0,
                restored_from_epoch: None,
            },
            LocalState::Bi(j) => {
                let stored = j.stored();
                let postings = j.postings();
                JoinerSnapshot {
                    task,
                    stats: j.stats().clone(),
                    stored,
                    postings,
                    incarnation: 0,
                    replayed: 0,
                    replay_overflow: 0,
                    restored_from_epoch: None,
                }
            }
        }
    }
}

/// One of the `k` parallel joiners: wraps any local [`StreamJoiner`]
/// (self-join) or a [`BiStreamJoiner`] pair (R–S join).
pub struct JoinerBolt {
    local: LocalState,
    dedup: Option<PrefixDedup>,
    task: usize,
    buf: Vec<MatchPair>,
    snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
    recovery: Option<Arc<RecoveryState>>,
    coordinator: Option<Arc<CheckpointCoordinator>>,
    /// The dispatcher is this joiner's single upstream, so barriers align
    /// on first sight — the aligner still guards the general invariant.
    aligner: BarrierAligner,
    incarnation: u64,
    restored_from_epoch: Option<u64>,
    /// Per-stage latency recording (observability-enabled runs only).
    stages: Option<StageRecorder>,
}

impl JoinerBolt {
    fn with_state(
        local: LocalState,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
        coordinator: Option<Arc<CheckpointCoordinator>>,
    ) -> Self {
        let dedup = dedup_cfg.map(|(threshold, window, k)| PrefixDedup {
            threshold,
            window,
            k,
            me: task,
            prefixes: FxHashMap::default(),
            queue: EvictionQueue::new(),
        });
        let mut bolt = Self {
            local,
            dedup,
            task,
            buf: Vec::new(),
            snapshots,
            recovery,
            coordinator,
            aligner: BarrierAligner::new(1),
            incarnation: 0,
            restored_from_epoch: None,
            stages: None,
        };
        bolt.replay_lost_state();
        bolt
    }

    /// Records per-stage latencies into `shared` (see [`StageRecorder`]).
    /// `None` (the default) records nothing and costs nothing.
    pub fn with_stages(mut self, shared: Option<Arc<Mutex<StageProfile>>>) -> Self {
        self.stages = shared.map(StageRecorder::new);
        self
    }

    /// Stage timing start: reads the clock only when stage profiling or
    /// tracing is on, so disabled runs pay nothing.
    #[inline]
    fn stage_start(&self, out: &Outbox<JoinMsg>) -> Option<Timestamp> {
        (self.stages.is_some() || out.tracing()).then(|| out.now())
    }

    /// Closes a stage span opened by [`Self::stage_start`]: records the
    /// duration into the stage profile and emits a trace span. Purely
    /// observational — no randomness, no clock mutation.
    #[inline]
    fn stage_end(
        &mut self,
        stage: Stage,
        t0: Option<Timestamp>,
        a: u64,
        b: u64,
        out: &mut Outbox<JoinMsg>,
    ) {
        let Some(t0) = t0 else { return };
        if let Some(st) = &mut self.stages {
            st.record(stage, out.now().saturating_since(t0));
        }
        out.trace_span(stage, t0, a, b);
    }

    /// Records (or bundle members) currently held by the local joiner.
    fn stored_len(&self) -> u64 {
        match &self.local {
            LocalState::Solo(j) => j.stored() as u64,
            LocalState::Bi(j) => j.stored() as u64,
        }
    }

    /// Crash recovery: a restarted incarnation rebuilds the index state its
    /// predecessor lost. With checkpointing, the bulk comes from the latest
    /// complete epoch's snapshot; the replay buffer — truncated at every
    /// commit to entries after the snapshot cut, so the two never overlap —
    /// covers only the uncheckpointed tail, bounding replay work by the
    /// checkpoint interval instead of the window size. Both paths are
    /// index-only: restore re-emits nothing, so no result pair is
    /// duplicated.
    fn replay_lost_state(&mut self) {
        let Some(recovery) = &self.recovery else {
            return;
        };
        self.incarnation = recovery.begin_incarnation(self.task);
        if self.incarnation == 0 {
            return;
        }
        // Snapshot and replay-buffer suffix must be captured atomically
        // with respect to epoch commits: a commit between the two reads
        // would truncate the buffer past the (older) snapshot being
        // restored, silently dropping the records between the two cuts.
        let (snapshot, entries) = match &self.coordinator {
            Some(c) => c.restore_and_replay_for(self.task),
            None => (None, recovery.replay_for(self.task)),
        };
        if let Some((epoch, snapshot)) = snapshot {
            self.restored_from_epoch = Some(epoch);
            let restored: Vec<ReplayEntry> = snapshot
                .into_iter()
                .map(|(side, record)| ReplayEntry { record, side })
                .collect();
            self.local.restore(&restored);
            if let Some(d) = &mut self.dedup {
                for e in &restored {
                    d.on_index(&e.record);
                }
            }
        }
        self.local.restore(&entries);
        if let Some(d) = &mut self.dedup {
            for e in &entries {
                d.on_index(&e.record);
            }
        }
    }

    /// A self-join joiner bolt. `dedup_cfg` must be provided exactly when
    /// the router replicates records (`Router::needs_result_dedup`);
    /// `recovery` exactly when the run injects faults or checkpoints;
    /// `coordinator` exactly when the run checkpoints.
    pub fn new(
        joiner: Box<dyn StreamJoiner + Send>,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
        coordinator: Option<Arc<CheckpointCoordinator>>,
    ) -> Self {
        Self::with_state(
            LocalState::Solo(joiner),
            dedup_cfg,
            task,
            snapshots,
            recovery,
            coordinator,
        )
    }

    /// A bi-stream (R–S) joiner bolt holding one index per side.
    pub fn new_bistream(
        factory: impl FnMut() -> Box<dyn StreamJoiner + Send>,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
        coordinator: Option<Arc<CheckpointCoordinator>>,
    ) -> Self {
        Self::with_state(
            LocalState::Bi(BiStreamJoiner::new(factory)),
            dedup_cfg,
            task,
            snapshots,
            recovery,
            coordinator,
        )
    }

    fn probe(&mut self, payload: &RecordMsg, out: &mut Outbox<JoinMsg>) -> u64 {
        self.buf.clear();
        self.local.probe(payload, &mut self.buf);
        let mut emitted = 0u64;
        for pair in self.buf.drain(..) {
            if let Some(d) = &self.dedup {
                if !d.should_emit(&payload.record, pair.earlier) {
                    continue;
                }
            }
            emitted += 1;
            out.emit(JoinMsg::Result {
                pair,
                ingest: payload.ingest,
            });
        }
        emitted
    }

    fn insert(&mut self, payload: &RecordMsg) {
        self.local.insert(payload);
        if let Some(d) = &mut self.dedup {
            d.on_index(&payload.record);
        }
    }

    fn advance_dedup(&mut self, record: &Record) {
        if let Some(d) = &mut self.dedup {
            d.advance(record.id().0, record.timestamp());
        }
    }
}

impl Bolt<JoinMsg> for JoinerBolt {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        let processed = msg.record().map(|r| (r.id().0, r.timestamp()));
        match msg {
            JoinMsg::Probe(payload) => {
                self.advance_dedup(&payload.record);
                let t0 = self.stage_start(out);
                let emitted = self.probe(&payload, out);
                self.stage_end(Stage::Verify, t0, payload.record.id().0, emitted, out);
            }
            JoinMsg::Index(payload) => {
                self.advance_dedup(&payload.record);
                let t0 = self.stage_start(out);
                self.insert(&payload);
                if t0.is_some() {
                    let stored = self.stored_len();
                    self.stage_end(Stage::Index, t0, payload.record.id().0, stored, out);
                }
            }
            JoinMsg::ProbeAndIndex(payload) => {
                self.advance_dedup(&payload.record);
                let t0 = self.stage_start(out);
                let emitted = self.probe(&payload, out);
                self.stage_end(Stage::Verify, t0, payload.record.id().0, emitted, out);
                let t1 = self.stage_start(out);
                self.insert(&payload);
                if t1.is_some() {
                    let stored = self.stored_len();
                    self.stage_end(Stage::Index, t1, payload.record.id().0, stored, out);
                }
            }
            JoinMsg::Result { .. } => unreachable!("joiners do not receive results"),
            JoinMsg::Barrier { epoch, injected_at } => {
                // Alignment stall: how long the barrier sat behind data in
                // this joiner's queue before the snapshot could be cut.
                let stall = out.now().saturating_since(injected_at);
                out.record_barrier_stall(stall);
                if let Some(st) = &mut self.stages {
                    st.record(Stage::Barrier, stall);
                }
                out.trace_instant(
                    Stage::Barrier,
                    epoch,
                    stall.as_nanos().min(u128::from(u64::MAX)) as u64,
                );
                if self.aligner.observe(epoch) {
                    let coordinator = self
                        .coordinator
                        .as_ref()
                        .expect("barrier received without a checkpoint coordinator");
                    let entries = self.local.window_snapshot();
                    let outcome = coordinator.publish(epoch, self.task, &entries);
                    out.record_checkpoint(outcome.bytes);
                    out.trace_instant(Stage::Checkpoint, epoch, outcome.bytes);
                    if outcome.completed {
                        // Epoch latency, charged to the task that closed
                        // it: barrier injection to durable commit.
                        let lat = out.now().saturating_since(outcome.injected_at);
                        out.record_checkpoint_latency(lat);
                        if let Some(st) = &mut self.stages {
                            st.record(Stage::Checkpoint, lat);
                        }
                    }
                }
            }
        }
        // Watermark last: published only once the record's effects (results
        // emitted, index updated) are fully visible.
        if let (Some(recovery), Some((id, ts))) = (&self.recovery, processed) {
            recovery.mark_processed(self.task, id, ts);
        }
    }

    fn finish(&mut self, _out: &mut Outbox<JoinMsg>) {
        let mut snapshot = self.local.snapshot(self.task);
        snapshot.incarnation = self.incarnation;
        snapshot.restored_from_epoch = self.restored_from_epoch;
        if let Some(recovery) = &self.recovery {
            snapshot.replayed = recovery.replayed(self.task);
            snapshot.replay_overflow = recovery.overflowed(self.task);
        }
        self.snapshots.lock().push(snapshot);
        if let Some(st) = &mut self.stages {
            st.flush();
        }
    }
}

/// What the sink accumulated over a run.
#[derive(Debug, Default)]
pub struct SinkState {
    /// Every result pair.
    pub pairs: Vec<MatchPair>,
    /// Dispatch-to-result latency distribution.
    pub latency: LatencyHistogram,
}

/// Terminal bolt: collects result pairs and measures latency. One task.
pub struct SinkBolt {
    state: Arc<Mutex<SinkState>>,
    /// Per-stage latency recording (observability-enabled runs only).
    stages: Option<StageRecorder>,
}

impl SinkBolt {
    /// A sink writing into shared state.
    pub fn new(state: Arc<Mutex<SinkState>>) -> Self {
        Self {
            state,
            stages: None,
        }
    }

    /// Records the dispatch-to-result latency of every pair under
    /// [`Stage::Emit`] in `shared` (see [`StageRecorder`]).
    pub fn with_stages(mut self, shared: Option<Arc<Mutex<StageProfile>>>) -> Self {
        self.stages = shared.map(StageRecorder::new);
        self
    }
}

impl Bolt<JoinMsg> for SinkBolt {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        match msg {
            JoinMsg::Result { pair, ingest } => {
                // Dispatch-to-result latency on the topology clock:
                // wall time in threaded runs, virtual time in simulation.
                let latency = out.now().saturating_since(ingest);
                if let Some(st) = &mut self.stages {
                    st.record(Stage::Emit, latency);
                }
                let (earlier, later) = pair.key();
                out.trace_instant(Stage::Emit, earlier, later);
                let mut s = self.state.lock();
                s.pairs.push(pair);
                s.latency.record(latency);
            }
            _ => unreachable!("sink only receives results"),
        }
    }

    fn finish(&mut self, _out: &mut Outbox<JoinMsg>) {
        if let Some(st) = &mut self.stages {
            st.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(xs: &[u32]) -> Vec<TokenId> {
        xs.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn first_common_finds_smallest() {
        assert_eq!(
            first_common(&tid(&[2, 5, 9]), &tid(&[3, 5, 9])),
            Some(TokenId(5))
        );
        assert_eq!(first_common(&tid(&[1, 2]), &tid(&[3, 4])), None);
        assert_eq!(first_common(&tid(&[]), &tid(&[1])), None);
        assert_eq!(first_common(&tid(&[7]), &tid(&[7])), Some(TokenId(7)));
    }

    #[test]
    fn dedup_emits_exactly_one_owner() {
        let threshold = Threshold::jaccard(0.5);
        let k = 4;
        let r = Record::from_sorted(RecordId(1), 1, tid(&[10, 20, 30, 40]));
        let s = Record::from_sorted(RecordId(0), 0, tid(&[10, 20, 30, 41]));
        // Build one dedup per joiner, index s everywhere (as replication
        // would), and count how many would emit the pair.
        let emitted: usize = (0..k)
            .filter(|&me| {
                let mut d = PrefixDedup {
                    threshold,
                    window: Window::Unbounded,
                    k,
                    me,
                    prefixes: FxHashMap::default(),
                    queue: EvictionQueue::new(),
                };
                d.on_index(&s);
                d.should_emit(&r, RecordId(0))
            })
            .count();
        assert_eq!(emitted, 1);
    }

    #[test]
    fn dedup_window_eviction_drops_prefixes() {
        let mut d = PrefixDedup {
            threshold: Threshold::jaccard(0.5),
            window: Window::Count(1),
            k: 2,
            me: 0,
            prefixes: FxHashMap::default(),
            queue: EvictionQueue::new(),
        };
        let s = Record::from_sorted(RecordId(0), 0, tid(&[1, 2, 3]));
        d.on_index(&s);
        assert_eq!(d.prefixes.len(), 1);
        d.advance(5, 5);
        assert!(d.prefixes.is_empty());
    }
}
