//! The three processing vertices of the join topology.

use crate::msg::{JoinMsg, RecordMsg};
use crate::recovery::{RecoveryState, ReplayEntry};
use crate::route::{token_owner, Router};
use parking_lot::Mutex;
use ssj_core::join::bistream::BiStreamJoiner;
use ssj_core::window::EvictionQueue;
use ssj_core::{JoinStats, MatchPair, StreamJoiner, Threshold, Window};
use ssj_text::{FxHashMap, Record, RecordId, TokenId};
use std::sync::Arc;
use stormlite::{Bolt, LatencyHistogram, Outbox};

/// Routes each arriving record to its index/probe joiners. One task.
pub struct DispatcherBolt<R: Router> {
    router: R,
    /// Replay buffers fed for every index target (fault-injected runs only).
    recovery: Option<Arc<RecoveryState>>,
    /// Degraded mode: shed whole records when any target joiner's queue is
    /// at least this deep. `None` = never shed (backpressure blocks instead).
    shed_watermark: Option<usize>,
    /// Ids of shed records, for exact recall accounting by the caller.
    shed_log: Arc<Mutex<Vec<u64>>>,
}

impl<R: Router> DispatcherBolt<R> {
    /// A dispatcher around a router.
    pub fn new(router: R) -> Self {
        Self {
            router,
            recovery: None,
            shed_watermark: None,
            shed_log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Feeds the recovery replay buffers as records are routed.
    pub fn with_recovery(mut self, recovery: Option<Arc<RecoveryState>>) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables load shedding at `watermark` queued messages, logging shed
    /// record ids into `log`. Shedding drops the *whole* record — it is
    /// neither probed nor indexed anywhere — so the surviving output is
    /// exactly the join of the kept records.
    pub fn with_shedding(mut self, watermark: Option<usize>, log: Arc<Mutex<Vec<u64>>>) -> Self {
        self.shed_watermark = watermark;
        self.shed_log = log;
        self
    }

    /// Buffers `payload` for replay at `task` before its index message is
    /// emitted (the ordering [`RecoveryState::buffer_index_target`]
    /// requires).
    fn buffer_for_replay(&self, task: usize, payload: &RecordMsg) {
        if let Some(recovery) = &self.recovery {
            recovery.buffer_index_target(task, ReplayEntry::from_payload(payload));
        }
    }
}

impl<R: Router> Bolt<JoinMsg> for DispatcherBolt<R> {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        let incoming = msg.payload().expect("dispatcher receives record messages");
        // Latency is measured from the moment the dispatcher makes the
        // routing decision (the paper measures processing latency, not
        // source queueing). The stamp reads the topology clock, so
        // simulated runs measure virtual time.
        let payload = RecordMsg {
            record: incoming.record.clone(),
            ingest: out.now(),
            side: incoming.side,
        };
        let decision = self.router.route(&payload.record);
        if let Some(watermark) = self.shed_watermark {
            // Overload check: deepest downstream queue among this record's
            // targets. Shedding happens *before* any emit or replay
            // buffering, so a shed record leaves no trace downstream and
            // the run's output is exactly the join of the kept records.
            let depth = decision
                .index
                .iter()
                .chain(decision.probe.iter())
                .map(|&t| out.direct_queue_depth(t))
                .max()
                .unwrap_or(0);
            if depth >= watermark {
                out.record_shed(1);
                self.shed_log.lock().push(payload.record.id().0);
                return;
            }
        }
        let mut probe_iter = decision.probe.iter().peekable();
        for &ix in &decision.index {
            // Emit probes ordered before/interleaved with the index target;
            // a target in both sets gets the atomic combined message.
            while let Some(&&p) = probe_iter.peek() {
                if p < ix {
                    out.emit_direct(p, JoinMsg::Probe(payload.clone()));
                    probe_iter.next();
                } else {
                    break;
                }
            }
            self.buffer_for_replay(ix, &payload);
            if probe_iter.peek() == Some(&&ix) {
                probe_iter.next();
                out.emit_direct(ix, JoinMsg::ProbeAndIndex(payload.clone()));
            } else {
                out.emit_direct(ix, JoinMsg::Index(payload.clone()));
            }
        }
        for &p in probe_iter {
            out.emit_direct(p, JoinMsg::Probe(payload.clone()));
        }
    }
}

/// Exact duplicate-result elimination for replicating routers.
///
/// Under prefix routing, the pair `(s, r)` is produced at every joiner
/// owning a token in `prefix(r) ∩ prefix(s)`. Exactly one joiner emits it:
/// the owner of the *smallest* common prefix token. Each joiner remembers
/// the prefix token set of every record it indexed (cheap: prefixes are
/// short, token storage is shared) so it can evaluate the rule locally.
struct PrefixDedup {
    threshold: Threshold,
    window: Window,
    k: usize,
    me: usize,
    prefixes: FxHashMap<RecordId, Box<[TokenId]>>,
    queue: EvictionQueue<RecordId>,
}

impl PrefixDedup {
    fn advance(&mut self, probe_id: u64, probe_ts: u64) {
        let prefixes = &mut self.prefixes;
        self.queue
            .drain_expired(self.window, probe_id, probe_ts, |id| {
                prefixes.remove(&id);
            });
    }

    fn on_index(&mut self, record: &Record) {
        let p = self.threshold.prefix_len(record.len());
        self.prefixes
            .insert(record.id(), record.prefix(p).to_vec().into());
        self.queue
            .push(record.id().0, record.timestamp(), record.id());
    }

    fn should_emit(&self, probe: &Record, earlier: RecordId) -> bool {
        let stored = self
            .prefixes
            .get(&earlier)
            .expect("matched record was indexed here");
        let p = self.threshold.prefix_len(probe.len());
        let min_common = first_common(probe.prefix(p), stored)
            .expect("a matching pair always shares a prefix token");
        token_owner(min_common, self.k) == self.me
    }
}

/// First (smallest) common element of two ascending token slices.
fn first_common(a: &[TokenId], b: &[TokenId]) -> Option<TokenId> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => return Some(a[i]),
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    None
}

/// Final per-joiner statistics published when the topology drains.
#[derive(Debug, Clone)]
pub struct JoinerSnapshot {
    /// Task index of the joiner.
    pub task: usize,
    /// The local joiner's counters (of the final incarnation only — a
    /// crashed incarnation's counters die with it).
    pub stats: JoinStats,
    /// Records (or bundle members) still stored at drain time.
    pub stored: usize,
    /// Inverted-index postings at drain time.
    pub postings: usize,
    /// Which incarnation of this task survived to the drain (0 = the task
    /// never crashed; only meaningful in fault-injected runs).
    pub incarnation: u64,
    /// Records replayed into this task across all of its restarts.
    pub replayed: u64,
    /// Replay-buffer entries evicted by the buffer cap before expiry —
    /// nonzero means a restart may have restored less than its full window.
    pub replay_overflow: u64,
}

/// The joiner's local state: one index for self-joins, a pair of indexes
/// for bi-stream joins.
enum LocalState {
    Solo(Box<dyn StreamJoiner + Send>),
    Bi(BiStreamJoiner<Box<dyn StreamJoiner + Send>>),
}

impl LocalState {
    fn probe(&mut self, payload: &RecordMsg, buf: &mut Vec<MatchPair>) {
        match (self, payload.side) {
            (LocalState::Solo(j), None) => j.probe(&payload.record, buf),
            (LocalState::Bi(j), Some(side)) => j.probe(side, &payload.record, buf),
            _ => panic!("message side does not match the joiner mode"),
        }
    }

    fn insert(&mut self, payload: &RecordMsg) {
        match (self, payload.side) {
            (LocalState::Solo(j), None) => j.insert(&payload.record),
            (LocalState::Bi(j), Some(side)) => j.insert(side, &payload.record),
            _ => panic!("message side does not match the joiner mode"),
        }
    }

    /// Rebuilds index state from replayed entries — index-only, nothing is
    /// probed and no results are produced.
    fn restore(&mut self, entries: &[ReplayEntry]) {
        match self {
            LocalState::Solo(j) => {
                let records: Vec<Record> = entries.iter().map(|e| e.record.clone()).collect();
                j.restore(&records);
            }
            LocalState::Bi(j) => {
                for e in entries {
                    j.insert(e.side.expect("bi-stream entries carry a side"), &e.record);
                }
            }
        }
    }

    fn snapshot(&mut self, task: usize) -> JoinerSnapshot {
        match self {
            LocalState::Solo(j) => JoinerSnapshot {
                task,
                stats: j.stats().clone(),
                stored: j.stored(),
                postings: j.postings(),
                incarnation: 0,
                replayed: 0,
                replay_overflow: 0,
            },
            LocalState::Bi(j) => {
                let stored = j.stored();
                let postings = j.postings();
                JoinerSnapshot {
                    task,
                    stats: j.stats().clone(),
                    stored,
                    postings,
                    incarnation: 0,
                    replayed: 0,
                    replay_overflow: 0,
                }
            }
        }
    }
}

/// One of the `k` parallel joiners: wraps any local [`StreamJoiner`]
/// (self-join) or a [`BiStreamJoiner`] pair (R–S join).
pub struct JoinerBolt {
    local: LocalState,
    dedup: Option<PrefixDedup>,
    task: usize,
    buf: Vec<MatchPair>,
    snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
    recovery: Option<Arc<RecoveryState>>,
    incarnation: u64,
}

impl JoinerBolt {
    fn with_state(
        local: LocalState,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
    ) -> Self {
        let dedup = dedup_cfg.map(|(threshold, window, k)| PrefixDedup {
            threshold,
            window,
            k,
            me: task,
            prefixes: FxHashMap::default(),
            queue: EvictionQueue::new(),
        });
        let mut bolt = Self {
            local,
            dedup,
            task,
            buf: Vec::new(),
            snapshots,
            recovery,
            incarnation: 0,
        };
        bolt.replay_lost_state();
        bolt
    }

    /// Crash recovery: a restarted incarnation rebuilds the index state its
    /// predecessor lost by replaying the buffered in-window index targets
    /// up to the processing watermark (see [`crate::recovery`]). Index-only
    /// — replay re-emits nothing, so no result pair is duplicated.
    fn replay_lost_state(&mut self) {
        let Some(recovery) = &self.recovery else {
            return;
        };
        self.incarnation = recovery.begin_incarnation(self.task);
        if self.incarnation == 0 {
            return;
        }
        let entries = recovery.replay_for(self.task);
        self.local.restore(&entries);
        if let Some(d) = &mut self.dedup {
            for e in &entries {
                d.on_index(&e.record);
            }
        }
    }

    /// A self-join joiner bolt. `dedup_cfg` must be provided exactly when
    /// the router replicates records (`Router::needs_result_dedup`);
    /// `recovery` exactly when the run injects faults.
    pub fn new(
        joiner: Box<dyn StreamJoiner + Send>,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
    ) -> Self {
        Self::with_state(
            LocalState::Solo(joiner),
            dedup_cfg,
            task,
            snapshots,
            recovery,
        )
    }

    /// A bi-stream (R–S) joiner bolt holding one index per side.
    pub fn new_bistream(
        factory: impl FnMut() -> Box<dyn StreamJoiner + Send>,
        dedup_cfg: Option<(Threshold, Window, usize)>,
        task: usize,
        snapshots: Arc<Mutex<Vec<JoinerSnapshot>>>,
        recovery: Option<Arc<RecoveryState>>,
    ) -> Self {
        Self::with_state(
            LocalState::Bi(BiStreamJoiner::new(factory)),
            dedup_cfg,
            task,
            snapshots,
            recovery,
        )
    }

    fn probe(&mut self, payload: &RecordMsg, out: &mut Outbox<JoinMsg>) {
        self.buf.clear();
        self.local.probe(payload, &mut self.buf);
        for pair in self.buf.drain(..) {
            if let Some(d) = &self.dedup {
                if !d.should_emit(&payload.record, pair.earlier) {
                    continue;
                }
            }
            out.emit(JoinMsg::Result {
                pair,
                ingest: payload.ingest,
            });
        }
    }

    fn insert(&mut self, payload: &RecordMsg) {
        self.local.insert(payload);
        if let Some(d) = &mut self.dedup {
            d.on_index(&payload.record);
        }
    }

    fn advance_dedup(&mut self, record: &Record) {
        if let Some(d) = &mut self.dedup {
            d.advance(record.id().0, record.timestamp());
        }
    }
}

impl Bolt<JoinMsg> for JoinerBolt {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        let processed = msg.record().map(|r| (r.id().0, r.timestamp()));
        match msg {
            JoinMsg::Probe(payload) => {
                self.advance_dedup(&payload.record);
                self.probe(&payload, out);
            }
            JoinMsg::Index(payload) => {
                self.advance_dedup(&payload.record);
                self.insert(&payload);
            }
            JoinMsg::ProbeAndIndex(payload) => {
                self.advance_dedup(&payload.record);
                self.probe(&payload, out);
                self.insert(&payload);
            }
            JoinMsg::Result { .. } => unreachable!("joiners do not receive results"),
        }
        // Watermark last: published only once the record's effects (results
        // emitted, index updated) are fully visible.
        if let (Some(recovery), Some((id, ts))) = (&self.recovery, processed) {
            recovery.mark_processed(self.task, id, ts);
        }
    }

    fn finish(&mut self, _out: &mut Outbox<JoinMsg>) {
        let mut snapshot = self.local.snapshot(self.task);
        snapshot.incarnation = self.incarnation;
        if let Some(recovery) = &self.recovery {
            snapshot.replayed = recovery.replayed(self.task);
            snapshot.replay_overflow = recovery.overflowed(self.task);
        }
        self.snapshots.lock().push(snapshot);
    }
}

/// What the sink accumulated over a run.
#[derive(Debug, Default)]
pub struct SinkState {
    /// Every result pair.
    pub pairs: Vec<MatchPair>,
    /// Dispatch-to-result latency distribution.
    pub latency: LatencyHistogram,
}

/// Terminal bolt: collects result pairs and measures latency. One task.
pub struct SinkBolt {
    state: Arc<Mutex<SinkState>>,
}

impl SinkBolt {
    /// A sink writing into shared state.
    pub fn new(state: Arc<Mutex<SinkState>>) -> Self {
        Self { state }
    }
}

impl Bolt<JoinMsg> for SinkBolt {
    fn execute(&mut self, msg: JoinMsg, out: &mut Outbox<JoinMsg>) {
        match msg {
            JoinMsg::Result { pair, ingest } => {
                // Dispatch-to-result latency on the topology clock:
                // wall time in threaded runs, virtual time in simulation.
                let latency = out.now().saturating_since(ingest);
                let mut s = self.state.lock();
                s.pairs.push(pair);
                s.latency.record(latency);
            }
            _ => unreachable!("sink only receives results"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(xs: &[u32]) -> Vec<TokenId> {
        xs.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn first_common_finds_smallest() {
        assert_eq!(
            first_common(&tid(&[2, 5, 9]), &tid(&[3, 5, 9])),
            Some(TokenId(5))
        );
        assert_eq!(first_common(&tid(&[1, 2]), &tid(&[3, 4])), None);
        assert_eq!(first_common(&tid(&[]), &tid(&[1])), None);
        assert_eq!(first_common(&tid(&[7]), &tid(&[7])), Some(TokenId(7)));
    }

    #[test]
    fn dedup_emits_exactly_one_owner() {
        let threshold = Threshold::jaccard(0.5);
        let k = 4;
        let r = Record::from_sorted(RecordId(1), 1, tid(&[10, 20, 30, 40]));
        let s = Record::from_sorted(RecordId(0), 0, tid(&[10, 20, 30, 41]));
        // Build one dedup per joiner, index s everywhere (as replication
        // would), and count how many would emit the pair.
        let emitted: usize = (0..k)
            .filter(|&me| {
                let mut d = PrefixDedup {
                    threshold,
                    window: Window::Unbounded,
                    k,
                    me,
                    prefixes: FxHashMap::default(),
                    queue: EvictionQueue::new(),
                };
                d.on_index(&s);
                d.should_emit(&r, RecordId(0))
            })
            .count();
        assert_eq!(emitted, 1);
    }

    #[test]
    fn dedup_window_eviction_drops_prefixes() {
        let mut d = PrefixDedup {
            threshold: Threshold::jaccard(0.5),
            window: Window::Count(1),
            k: 2,
            me: 0,
            prefixes: FxHashMap::default(),
            queue: EvictionQueue::new(),
        };
        let s = Record::from_sorted(RecordId(0), 0, tid(&[1, 2, 3]));
        d.on_index(&s);
        assert_eq!(d.prefixes.len(), 1);
        d.advance(5, 5);
        assert!(d.prefixes.is_empty());
    }
}
