//! Joiner crash recovery: replay buffers and watermarks.
//!
//! When a joiner task crashes (see [`stormlite::FaultPlan`]) the runtime
//! rebuilds the bolt from its factory, but the fresh instance has lost its
//! partition of the inverted index. [`RecoveryState`] is the shared state
//! that lets it rebuild in O(window) work:
//!
//! * the **replay buffer**: for every joiner task, the dispatcher appends a
//!   copy of each record it routes there as an *index* target (the only
//!   messages that create joiner state). Entries expire exactly like the
//!   window they mirror, so the buffer is bounded by the window size plus
//!   the in-flight backlog — except under [`Window::Unbounded`], where it
//!   grows with the stream (an unbounded window *is* O(stream) state).
//! * the **watermark**: after fully processing any record-bearing tuple,
//!   the joiner publishes that record's `(id, timestamp)`. Because the
//!   single dispatcher feeds each joiner over one FIFO wire, a watermark of
//!   `w` proves every message with record id ≤ `w` was fully processed
//!   (its results already emitted) and every message with id > `w` is
//!   still queued and will be delivered to the fresh instance.
//!
//! On restart the fresh joiner therefore replays exactly the buffered
//! entries with `id ≤ watermark` that are still inside the window — via the
//! index-only [`StreamJoiner::restore`](ssj_core::StreamJoiner::restore)
//! path, which re-emits nothing — and resumes. No result pair is lost
//! (probes at or below the watermark already emitted; probes above it are
//! redelivered) and none is duplicated (replay never probes).
//!
//! The watermark is published as two relaxed atomics. The restart path
//! reads them from the same OS thread that wrote them (stormlite rebuilds
//! a task's bolt on the task's own thread), so it always sees the exact
//! crash-point values; the dispatcher's trimming path may read a stale or
//! torn pair, which can only *under*-trim — never drop a replayable entry.

use crate::msg::RecordMsg;
use parking_lot::Mutex;
use ssj_core::join::bistream::Side;
use ssj_core::Window;
use ssj_text::Record;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One buffered index-target record, awaiting possible replay.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    /// The record as the joiner would have indexed it.
    pub record: Record,
    /// Source stream for bi-stream joins (`None` = self-join).
    pub side: Option<Side>,
}

impl ReplayEntry {
    /// Captures the replayable part of a routed payload.
    pub fn from_payload(payload: &RecordMsg) -> Self {
        Self {
            record: payload.record.clone(),
            side: payload.side,
        }
    }
}

/// Per-task recovery state: the replay buffer and the processing watermark.
#[derive(Debug)]
struct TaskRecovery {
    /// In-window index targets in arrival order.
    buffer: Mutex<VecDeque<ReplayEntry>>,
    /// Last fully processed record id, stored as `id + 1` (0 = none yet).
    watermark_id: AtomicU64,
    /// Timestamp of the last fully processed record.
    watermark_ts: AtomicU64,
    /// Times this task's bolt has been (re)built.
    incarnations: AtomicU64,
    /// Records replayed into this task across all restarts.
    replayed: AtomicU64,
    /// Entries evicted by the buffer cap before they could expire.
    overflow: AtomicU64,
    /// Entries dropped because a completed checkpoint now covers them.
    truncated: AtomicU64,
}

impl TaskRecovery {
    fn new() -> Self {
        Self {
            buffer: Mutex::new(VecDeque::new()),
            watermark_id: AtomicU64::new(0),
            watermark_ts: AtomicU64::new(0),
            incarnations: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
        }
    }

    /// The watermark as `(last_processed_id, its_timestamp)`, or `None` if
    /// the task has not fully processed any record yet.
    fn watermark(&self) -> Option<(u64, u64)> {
        let id_plus_one = self.watermark_id.load(Ordering::Relaxed);
        if id_plus_one == 0 {
            return None;
        }
        Some((id_plus_one - 1, self.watermark_ts.load(Ordering::Relaxed)))
    }
}

/// Shared recovery state for one distributed run: one replay buffer and
/// watermark per joiner task. Created only when a fault plan or
/// checkpointing is active, so plain runs pay nothing.
#[derive(Debug)]
pub struct RecoveryState {
    window: Window,
    /// Per-task replay-buffer entry cap (`None` = bounded only by window
    /// expiry — which under [`Window::Unbounded`] means O(stream)).
    buffer_cap: Option<usize>,
    tasks: Vec<TaskRecovery>,
}

impl RecoveryState {
    /// Recovery state for `k` joiner tasks under the given window policy.
    pub fn new(k: usize, window: Window) -> Self {
        Self {
            window,
            buffer_cap: None,
            tasks: (0..k).map(|_| TaskRecovery::new()).collect(),
        }
    }

    /// Caps each task's replay buffer at `cap` entries. When the cap is
    /// hit the *oldest* entry is evicted and counted in
    /// [`overflowed`](Self::overflowed): recovery after an overflow may
    /// restore less than the full window, but the loss is explicit — the
    /// alternative under [`Window::Unbounded`] is a buffer that grows with
    /// the whole stream.
    pub fn with_buffer_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero-entry replay buffer cannot replay");
        self.buffer_cap = Some(cap);
        self
    }

    /// Dispatcher side: records that `entry` was routed to `task` as an
    /// index target, and drops buffered entries the task has both processed
    /// and expired. Must be called *before* the corresponding message is
    /// emitted, so a watermark covering the record implies its entry is
    /// buffered.
    pub fn buffer_index_target(&self, task: usize, entry: ReplayEntry) {
        let t = &self.tasks[task];
        let mut buf = t.buffer.lock();
        buf.push_back(entry);
        if let Some((w_id, w_ts)) = t.watermark() {
            // Arrival order makes expiry monotone front-to-back, and an
            // unprocessed entry (id > w_id) can never test expired against
            // the watermark of an earlier arrival — so popping from the
            // front while expired is exact.
            while let Some(front) = buf.front() {
                if self
                    .window
                    .expired(front.record.id().0, front.record.timestamp(), w_id, w_ts)
                {
                    buf.pop_front();
                } else {
                    break;
                }
            }
        }
        // Enforce the cap after expiry-trimming: evictions are a last
        // resort, taken only when in-window state alone exceeds the cap,
        // and every one is counted so capped recovery degrades loudly.
        if let Some(cap) = self.buffer_cap {
            while buf.len() > cap {
                buf.pop_front();
                t.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Joiner side: publishes that the record `(id, ts)` — probe or index —
    /// has been fully processed, results included.
    pub fn mark_processed(&self, task: usize, id: u64, ts: u64) {
        let t = &self.tasks[task];
        t.watermark_id.store(id + 1, Ordering::Relaxed);
        t.watermark_ts.store(ts, Ordering::Relaxed);
    }

    /// Joiner side, on (re)construction: claims the next incarnation number
    /// for `task`. Returns 0 for the first build (nothing to replay).
    pub fn begin_incarnation(&self, task: usize) -> u64 {
        self.tasks[task]
            .incarnations
            .fetch_add(1, Ordering::Relaxed)
    }

    /// Joiner side, on restart: the entries the crashed incarnation had
    /// fully processed and that are still inside the window — exactly the
    /// lost index state, in arrival order.
    pub fn replay_for(&self, task: usize) -> Vec<ReplayEntry> {
        let t = &self.tasks[task];
        let Some((w_id, w_ts)) = t.watermark() else {
            return Vec::new();
        };
        let buf = t.buffer.lock();
        let entries: Vec<ReplayEntry> = buf
            .iter()
            .filter(|e| {
                e.record.id().0 <= w_id
                    && !self
                        .window
                        .expired(e.record.id().0, e.record.timestamp(), w_id, w_ts)
            })
            .cloned()
            .collect();
        t.replayed
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        entries
    }

    /// Checkpoint coordinator side, when an epoch completes: drops every
    /// buffered entry for `task` with record id ≤ `through_id` — the
    /// durable snapshot now covers that state, so post-crash replay starts
    /// from the snapshot instead. `None` (no index target was ever routed
    /// to the task before the barrier) is a no-op.
    ///
    /// This is what bounds the replay buffer under [`Window::Unbounded`]:
    /// with an epoch committed every `interval` records, buffered state
    /// tops out near `interval` plus the in-flight backlog, independent of
    /// stream length — so a buffer cap sized above the interval never
    /// overflows and capped recovery loses nothing.
    pub fn commit_snapshot(&self, task: usize, through_id: Option<u64>) {
        let Some(through) = through_id else { return };
        let t = &self.tasks[task];
        let mut buf = t.buffer.lock();
        let mut dropped = 0u64;
        while let Some(front) = buf.front() {
            if front.record.id().0 <= through {
                buf.pop_front();
                dropped += 1;
            } else {
                break;
            }
        }
        drop(buf);
        t.truncated.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Number of joiner tasks this state tracks.
    pub fn k(&self) -> usize {
        self.tasks.len()
    }

    /// How many incarnations `task` has seen (1 = never crashed).
    pub fn incarnations(&self, task: usize) -> u64 {
        self.tasks[task].incarnations.load(Ordering::Relaxed)
    }

    /// Total records replayed into `task` across restarts.
    pub fn replayed(&self, task: usize) -> u64 {
        self.tasks[task].replayed.load(Ordering::Relaxed)
    }

    /// Currently buffered entries for `task` (test observability).
    pub fn buffered(&self, task: usize) -> usize {
        self.tasks[task].buffer.lock().len()
    }

    /// Replay-buffer entries for `task` evicted by the cap before they
    /// expired. Nonzero means a restart of this task may have restored
    /// less than its full lost window.
    pub fn overflowed(&self, task: usize) -> u64 {
        self.tasks[task].overflow.load(Ordering::Relaxed)
    }

    /// Buffered entries for `task` dropped because a completed checkpoint
    /// superseded them (see [`commit_snapshot`](Self::commit_snapshot)).
    pub fn truncated(&self, task: usize) -> u64 {
        self.tasks[task].truncated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::{RecordId, TokenId};

    fn entry(id: u64, ts: u64) -> ReplayEntry {
        ReplayEntry {
            record: Record::from_sorted(RecordId(id), ts, vec![TokenId(1), TokenId(2)]),
            side: None,
        }
    }

    #[test]
    fn replay_is_empty_before_any_processing() {
        let r = RecoveryState::new(2, Window::Unbounded);
        r.buffer_index_target(0, entry(0, 0));
        assert!(r.replay_for(0).is_empty(), "nothing processed yet");
        assert_eq!(r.buffered(0), 1);
    }

    #[test]
    fn replay_stops_at_the_watermark() {
        let r = RecoveryState::new(1, Window::Unbounded);
        for id in 0..10 {
            r.buffer_index_target(0, entry(id, id * 10));
        }
        r.mark_processed(0, 6, 60);
        let ids: Vec<u64> = r.replay_for(0).iter().map(|e| e.record.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn replay_excludes_expired_entries() {
        let r = RecoveryState::new(1, Window::Count(3));
        for id in 0..10 {
            r.buffer_index_target(0, entry(id, id * 10));
        }
        r.mark_processed(0, 9, 90);
        let ids: Vec<u64> = r.replay_for(0).iter().map(|e| e.record.id().0).collect();
        // Window::Count(3) from watermark 9 keeps ids 6..=9.
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trimming_drops_processed_expired_entries_only() {
        let r = RecoveryState::new(1, Window::Count(2));
        for id in 0..5 {
            r.buffer_index_target(0, entry(id, id));
        }
        assert_eq!(r.buffered(0), 5, "nothing trimmed before processing");
        r.mark_processed(0, 4, 4);
        // The next push trims ids 0 and 1 (expired w.r.t. watermark 4).
        r.buffer_index_target(0, entry(5, 5));
        assert_eq!(r.buffered(0), 4);
    }

    #[test]
    fn watermark_of_id_zero_is_distinguished_from_none() {
        let r = RecoveryState::new(1, Window::Unbounded);
        r.buffer_index_target(0, entry(0, 0));
        r.mark_processed(0, 0, 0);
        assert_eq!(r.replay_for(0).len(), 1);
    }

    #[test]
    fn buffer_cap_evicts_oldest_and_counts_overflow() {
        let r = RecoveryState::new(1, Window::Unbounded).with_buffer_cap(4);
        for id in 0..10 {
            r.buffer_index_target(0, entry(id, id));
        }
        assert_eq!(r.buffered(0), 4);
        assert_eq!(r.overflowed(0), 6);
        // Replay after overflow restores only what survived the cap.
        r.mark_processed(0, 9, 9);
        let ids: Vec<u64> = r.replay_for(0).iter().map(|e| e.record.id().0).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn cap_larger_than_window_never_overflows() {
        // Count(3) keeps the buffer at ≤ 4 entries (watermark trims), so a
        // cap of 8 is never hit: expiry does the bounding, not eviction.
        let r = RecoveryState::new(1, Window::Count(3)).with_buffer_cap(8);
        for id in 0..50 {
            r.buffer_index_target(0, entry(id, id));
            r.mark_processed(0, id, id);
        }
        assert_eq!(r.overflowed(0), 0);
        assert!(r.buffered(0) <= 8);
    }

    #[test]
    fn uncapped_unbounded_buffer_grows_with_stream() {
        let r = RecoveryState::new(1, Window::Unbounded);
        for id in 0..50 {
            r.buffer_index_target(0, entry(id, id));
            r.mark_processed(0, id, id);
        }
        assert_eq!(r.buffered(0), 50);
        assert_eq!(r.overflowed(0), 0);
    }

    #[test]
    #[should_panic(expected = "zero-entry replay buffer")]
    fn zero_cap_rejected() {
        let _ = RecoveryState::new(1, Window::Unbounded).with_buffer_cap(0);
    }

    #[test]
    fn snapshot_commit_truncates_covered_prefix_only() {
        let r = RecoveryState::new(1, Window::Unbounded);
        for id in 0..10 {
            r.buffer_index_target(0, entry(id, id));
        }
        r.commit_snapshot(0, Some(6));
        assert_eq!(r.buffered(0), 3);
        assert_eq!(r.truncated(0), 7);
        // Replay after the commit covers only the uncheckpointed suffix.
        r.mark_processed(0, 9, 9);
        let ids: Vec<u64> = r.replay_for(0).iter().map(|e| e.record.id().0).collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn snapshot_commit_with_no_cut_is_a_noop() {
        let r = RecoveryState::new(1, Window::Unbounded);
        r.buffer_index_target(0, entry(3, 3));
        r.commit_snapshot(0, None);
        assert_eq!(r.buffered(0), 1);
        assert_eq!(r.truncated(0), 0);
    }

    #[test]
    fn periodic_commits_bound_an_unbounded_buffer() {
        // Mirrors the checkpointing loop: an epoch commit every 8 records
        // keeps the unbounded-window buffer near the interval, so a cap of
        // 16 is never hit and nothing is lost to overflow.
        let r = RecoveryState::new(1, Window::Unbounded).with_buffer_cap(16);
        for id in 0..200u64 {
            r.buffer_index_target(0, entry(id, id));
            r.mark_processed(0, id, id);
            if (id + 1) % 8 == 0 {
                r.commit_snapshot(0, Some(id));
            }
        }
        assert_eq!(r.overflowed(0), 0);
        assert!(r.buffered(0) <= 8);
    }

    #[test]
    fn incarnations_count_up_per_task() {
        let r = RecoveryState::new(2, Window::Unbounded);
        assert_eq!(r.begin_incarnation(0), 0);
        assert_eq!(r.begin_incarnation(0), 1);
        assert_eq!(r.begin_incarnation(1), 0);
        assert_eq!(r.incarnations(0), 2);
        assert_eq!(r.incarnations(1), 1);
    }
}
