//! The tuple vocabulary of the join topology.

use ssj_core::join::bistream::Side;
use ssj_core::MatchPair;
use ssj_text::Record;
use stormlite::{Message, Timestamp};

/// The payload of every record-bearing message.
///
/// `ingest` stamps carry the dispatch time (on the topology clock — real
/// in threaded runs, virtual under simulation) through the pipeline so the
/// sink can measure per-record processing latency. `side` is `None` for
/// self-joins and tags the source stream for bi-stream (R–S) joins.
#[derive(Debug, Clone)]
pub struct RecordMsg {
    /// The record.
    pub record: Record,
    /// When the dispatcher saw the record, on the topology clock.
    pub ingest: Timestamp,
    /// Source stream for bi-stream joins (`None` = self-join).
    pub side: Option<Side>,
}

impl RecordMsg {
    /// A self-join payload.
    pub fn solo(record: Record, ingest: Timestamp) -> Self {
        Self {
            record,
            ingest,
            side: None,
        }
    }
}

/// Messages flowing between dispatcher, joiners and sink.
#[derive(Debug, Clone)]
pub enum JoinMsg {
    /// Probe the local index with this record (do not store it).
    Probe(RecordMsg),
    /// Store this record in the local index (no probe).
    Index(RecordMsg),
    /// Probe first, then store — the atomic step used when one joiner is
    /// both a probe and the index target of the same record.
    ProbeAndIndex(RecordMsg),
    /// A verified result pair.
    Result {
        /// The matching pair.
        pair: MatchPair,
        /// Dispatch time of the probing record, on the topology clock.
        ingest: Timestamp,
    },
    /// A checkpoint barrier control tuple. The dispatcher injects one per
    /// epoch down every joiner wire; a joiner receiving it snapshots its
    /// window and publishes the snapshot to the epoch's checkpoint. Rides
    /// the same FIFO wires as data, so everything dispatched before the
    /// barrier is reflected in the snapshot and nothing after it is.
    Barrier {
        /// The checkpoint epoch this barrier opens.
        epoch: u64,
        /// When the dispatcher injected the barrier, on the topology
        /// clock — the reference point for alignment-stall and checkpoint
        /// latency metrics.
        injected_at: Timestamp,
    },
}

impl JoinMsg {
    /// The carried record for record-bearing variants.
    pub fn record(&self) -> Option<&Record> {
        match self {
            JoinMsg::Probe(m) | JoinMsg::Index(m) | JoinMsg::ProbeAndIndex(m) => Some(&m.record),
            JoinMsg::Result { .. } | JoinMsg::Barrier { .. } => None,
        }
    }

    /// The full payload for record-bearing variants.
    pub fn payload(&self) -> Option<&RecordMsg> {
        match self {
            JoinMsg::Probe(m) | JoinMsg::Index(m) | JoinMsg::ProbeAndIndex(m) => Some(m),
            JoinMsg::Result { .. } | JoinMsg::Barrier { .. } => None,
        }
    }

    /// Whether this message stores its record in the receiving joiner's
    /// index — the messages the recovery replay buffer must retain.
    pub fn indexes(&self) -> bool {
        matches!(self, JoinMsg::Index(_) | JoinMsg::ProbeAndIndex(_))
    }
}

impl Message for JoinMsg {
    fn wire_bytes(&self) -> u64 {
        // 1 tag byte + payload, matching what a compact binary codec would
        // ship: records as (id, ts, len, tokens) plus a side byte for
        // bi-stream tuples, results as (id, id, sim).
        match self {
            JoinMsg::Probe(m) | JoinMsg::Index(m) | JoinMsg::ProbeAndIndex(m) => {
                1 + m.record.wire_bytes() + u64::from(m.side.is_some())
            }
            JoinMsg::Result { .. } => 1 + 8 + 8 + 8,
            // tag + epoch + injected_at: barriers are (nearly) free on the
            // wire, whatever the checkpoint interval.
            JoinMsg::Barrier { .. } => 1 + 8 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_text::{RecordId, TokenId};

    fn rec(len: u32) -> Record {
        Record::from_sorted(RecordId(1), 0, (0..len).map(TokenId).collect())
    }

    #[test]
    fn wire_bytes_scale_with_tokens() {
        let now = Timestamp::ZERO;
        let small = JoinMsg::Probe(RecordMsg::solo(rec(2), now));
        let large = JoinMsg::Index(RecordMsg::solo(rec(100), now));
        assert_eq!(small.wire_bytes(), 1 + 8 + 8 + 4 + 8);
        assert_eq!(large.wire_bytes(), 1 + 8 + 8 + 4 + 400);
    }

    #[test]
    fn bi_stream_payloads_cost_a_side_byte() {
        let m = JoinMsg::Probe(RecordMsg {
            record: rec(2),
            ingest: Timestamp::ZERO,
            side: Some(Side::Left),
        });
        assert_eq!(m.wire_bytes(), 1 + 8 + 8 + 4 + 8 + 1);
    }

    #[test]
    fn result_is_fixed_size() {
        let m = JoinMsg::Result {
            pair: MatchPair {
                earlier: RecordId(0),
                later: RecordId(1),
                similarity: 0.9,
            },
            ingest: Timestamp::ZERO,
        };
        assert_eq!(m.wire_bytes(), 25);
        assert!(m.record().is_none());
        assert!(m.payload().is_none());
    }

    #[test]
    fn barrier_is_fixed_size_and_carries_no_record() {
        let m = JoinMsg::Barrier {
            epoch: 3,
            injected_at: Timestamp::ZERO,
        };
        assert_eq!(m.wire_bytes(), 17);
        assert!(m.record().is_none());
        assert!(m.payload().is_none());
        assert!(!m.indexes());
    }

    #[test]
    fn record_accessor() {
        let m = JoinMsg::ProbeAndIndex(RecordMsg::solo(rec(3), Timestamp::ZERO));
        assert_eq!(m.record().unwrap().len(), 3);
        assert!(m.payload().unwrap().side.is_none());
    }
}
