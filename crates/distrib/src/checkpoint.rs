//! Epoch-based coordinated checkpointing: durable snapshots and bounded
//! replay.
//!
//! The dispatcher periodically injects a [`JoinMsg::Barrier`] control
//! tuple down every joiner wire (one barrier per *epoch*, every
//! [`CheckpointConfig::interval`] dispatched records). Barriers ride the
//! same FIFO channels as data, so when a joiner sees the epoch-`e` barrier
//! its local state reflects exactly the records dispatched before the
//! barrier — a Chandy–Lamport consistent cut, with no stop-the-world
//! pause. The joiner captures its
//! [`window_snapshot`](ssj_core::StreamJoiner::window_snapshot), publishes
//! it to the run's [`SnapshotStore`], and moves on.
//!
//! The [`CheckpointCoordinator`] tracks which of the `k` tasks have
//! published for each in-flight epoch. When the last one lands, the epoch
//! **commits**: the manifest (cut id, topology shape, routing partition)
//! is written atomically, and every task's replay buffer is truncated to
//! entries *after* its snapshot cut
//! ([`RecoveryState::commit_snapshot`]) — post-crash replay becomes
//! O(epoch interval) even under [`Window::Unbounded`](ssj_core::Window),
//! and a capped buffer sized above the interval can no longer overflow.
//!
//! Two stores are provided: [`MemStore`] (tests, simulation) and
//! [`FileStore`] (epoch-stamped snapshot files encoded with the `ssj-text`
//! record codec via [`ssj_core::snapshot`]). A whole-process restart
//! rebuilds a topology from the latest complete checkpoint through
//! [`load_latest`] and the driver's `restore_from` path.
//!
//! [`JoinMsg::Barrier`]: crate::msg::JoinMsg::Barrier
//! [`RecoveryState::commit_snapshot`]: crate::recovery::RecoveryState::commit_snapshot

use crate::recovery::RecoveryState;
use parking_lot::Mutex;
use ssj_core::snapshot::{decode_window_slice, encode_window_vec, SnapshotEntry};
use ssj_partition::LengthPartition;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stormlite::Timestamp;

/// Durable storage for checkpoint snapshots, pluggable per run.
///
/// `part` names one task's slice of an epoch (`"joiner-3"`). An epoch is
/// *complete* only once [`commit`](Self::commit) has recorded its
/// manifest; readers must ignore parts of uncommitted epochs (a crash may
/// leave them behind).
pub trait SnapshotStore: fmt::Debug + Send + Sync {
    /// Persists one part of an epoch's checkpoint, overwriting any
    /// previous attempt.
    fn put(&self, epoch: u64, part: &str, bytes: &[u8]) -> io::Result<()>;

    /// Reads one part of an epoch's checkpoint.
    fn get(&self, epoch: u64, part: &str) -> io::Result<Option<Vec<u8>>>;

    /// Atomically marks `epoch` complete by recording its manifest. After
    /// this returns, a crashed process may restore from `epoch`.
    fn commit(&self, epoch: u64, manifest: &[u8]) -> io::Result<()>;

    /// The newest epoch with a committed manifest, if any.
    fn latest_complete(&self) -> io::Result<Option<u64>>;

    /// The manifest of a committed epoch.
    fn manifest(&self, epoch: u64) -> io::Result<Option<Vec<u8>>>;
}

/// In-memory [`SnapshotStore`] for tests and simulation. Shareable across
/// a "crashed" and a "restored" run via [`Arc`] to model a durable medium.
#[derive(Debug, Default)]
pub struct MemStore {
    parts: Mutex<BTreeMap<(u64, String), Vec<u8>>>,
    manifests: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for MemStore {
    fn put(&self, epoch: u64, part: &str, bytes: &[u8]) -> io::Result<()> {
        self.parts
            .lock()
            .insert((epoch, part.to_owned()), bytes.to_vec());
        Ok(())
    }

    fn get(&self, epoch: u64, part: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.parts.lock().get(&(epoch, part.to_owned())).cloned())
    }

    fn commit(&self, epoch: u64, manifest: &[u8]) -> io::Result<()> {
        self.manifests.lock().insert(epoch, manifest.to_vec());
        Ok(())
    }

    fn latest_complete(&self) -> io::Result<Option<u64>> {
        Ok(self.manifests.lock().keys().next_back().copied())
    }

    fn manifest(&self, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self.manifests.lock().get(&epoch).cloned())
    }
}

/// File-backed [`SnapshotStore`]: one `epoch-<e>` directory per epoch,
/// one `<part>.snap` file per task, and a `MANIFEST` file whose
/// write-then-rename creation is the atomic commit point.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Opens (creating if needed) a snapshot directory.
    ///
    /// # Errors
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch-{epoch}"))
    }
}

impl SnapshotStore for FileStore {
    fn put(&self, epoch: u64, part: &str, bytes: &[u8]) -> io::Result<()> {
        let dir = self.epoch_dir(epoch);
        fs::create_dir_all(&dir)?;
        let mut f = fs::File::create(dir.join(format!("{part}.snap")))?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn get(&self, epoch: u64, part: &str) -> io::Result<Option<Vec<u8>>> {
        let path = self.epoch_dir(epoch).join(format!("{part}.snap"));
        match fs::File::open(&path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(Some(buf))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn commit(&self, epoch: u64, manifest: &[u8]) -> io::Result<()> {
        let dir = self.epoch_dir(epoch);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join("MANIFEST.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(manifest)?;
            f.sync_all()?;
        }
        // The rename is the commit point: MANIFEST either exists complete
        // or not at all, so a crash mid-checkpoint is indistinguishable
        // from never having started the epoch.
        fs::rename(&tmp, dir.join("MANIFEST"))
    }

    fn latest_complete(&self) -> io::Result<Option<u64>> {
        let mut latest = None;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(epoch) = name
                .to_str()
                .and_then(|n| n.strip_prefix("epoch-"))
                .and_then(|e| e.parse::<u64>().ok())
            else {
                continue;
            };
            if entry.path().join("MANIFEST").is_file() {
                latest = latest.max(Some(epoch));
            }
        }
        Ok(latest)
    }

    fn manifest(&self, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        let path = self.epoch_dir(epoch).join("MANIFEST");
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// What a committed epoch's manifest records: enough to validate and
/// rebuild a topology from the snapshot alone.
///
/// Binary layout (all little-endian):
///
/// ```text
/// magic u32 = 0x4d57_4e53 ("SNWM")  version u32 = 1
/// epoch u64   cut_id u64   k u64   bistream u8   has_partition u8
/// [count u32, count × upper u64]       (iff has_partition = 1)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The epoch this manifest commits.
    pub epoch: u64,
    /// Id of the last record dispatched before the barrier: the snapshot
    /// is exactly the in-window state of the id-prefix `..= cut_id`.
    pub cut_id: u64,
    /// Joiner parallelism of the checkpointed topology.
    pub k: usize,
    /// Whether the run was a bi-stream (R–S) join.
    pub bistream: bool,
    /// The length partition routing was using at the cut, for strategies
    /// that have one — a restored run resumes with it rather than
    /// recalibrating on post-cut records.
    pub partition: Option<LengthPartition>,
}

const MANIFEST_MAGIC: u32 = 0x4d57_4e53;
const MANIFEST_VERSION: u32 = 1;

impl Manifest {
    /// Serializes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.cut_id.to_le_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.push(u8::from(self.bistream));
        out.push(u8::from(self.partition.is_some()));
        if let Some(p) = &self.partition {
            let uppers = p.uppers();
            out.extend_from_slice(&(uppers.len() as u32).to_le_bytes());
            for &u in uppers {
                out.extend_from_slice(&(u as u64).to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a manifest, validating magic and version.
    ///
    /// # Errors
    /// Fails on truncation, a bad magic, or an unknown version.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"))
        }
        let take = |range: std::ops::Range<usize>| -> io::Result<&[u8]> {
            bytes.get(range).ok_or_else(|| bad("truncated"))
        };
        let u32_at = |at: usize| -> io::Result<u32> {
            Ok(u32::from_le_bytes(take(at..at + 4)?.try_into().unwrap()))
        };
        let u64_at = |at: usize| -> io::Result<u64> {
            Ok(u64::from_le_bytes(take(at..at + 8)?.try_into().unwrap()))
        };
        if u32_at(0)? != MANIFEST_MAGIC {
            return Err(bad("bad magic"));
        }
        if u32_at(4)? != MANIFEST_VERSION {
            return Err(bad("unknown version"));
        }
        let epoch = u64_at(8)?;
        let cut_id = u64_at(16)?;
        let k = u64_at(24)? as usize;
        let bistream = match take(32..33)?[0] {
            0 => false,
            1 => true,
            _ => return Err(bad("bad bistream flag")),
        };
        let partition = match take(33..34)?[0] {
            0 => None,
            1 => {
                let count = u32_at(34)? as usize;
                let mut uppers = Vec::with_capacity(count);
                for i in 0..count {
                    uppers.push(u64_at(38 + 8 * i)? as usize);
                }
                Some(LengthPartition::from_uppers(uppers))
            }
            _ => return Err(bad("bad partition flag")),
        };
        Ok(Self {
            epoch,
            cut_id,
            k,
            bistream,
            partition,
        })
    }
}

/// Configuration of checkpointing for one run.
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Dispatch a barrier every this many routed records. The replay
    /// buffer, the replay volume after a crash, and the data at risk in a
    /// whole-process failure are all bounded by roughly this many records.
    pub interval: u64,
    /// Where snapshots and manifests are persisted.
    pub store: Arc<dyn SnapshotStore>,
}

impl CheckpointConfig {
    /// Checkpoints every `interval` records into a fresh [`MemStore`].
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn in_memory(interval: u64) -> Self {
        Self::new(interval, Arc::new(MemStore::new()))
    }

    /// Checkpoints every `interval` records into `store`.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: u64, store: Arc<dyn SnapshotStore>) -> Self {
        assert!(interval >= 1, "a zero checkpoint interval never settles");
        Self { interval, store }
    }

    /// Checkpoints every `interval` records into a [`FileStore`] at `dir`.
    ///
    /// # Errors
    /// Fails if the directory cannot be created.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn in_dir(interval: u64, dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self::new(interval, Arc::new(FileStore::open(dir)?)))
    }
}

impl fmt::Debug for CheckpointConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointConfig")
            .field("interval", &self.interval)
            .field("store", &self.store)
            .finish()
    }
}

/// What publishing one snapshot part did.
#[derive(Debug, Clone, Copy)]
pub struct PublishOutcome {
    /// Serialized size of the published snapshot.
    pub bytes: u64,
    /// `true` iff this publication completed (committed) the epoch.
    pub completed: bool,
    /// When the epoch's barrier was injected (for latency accounting).
    pub injected_at: Timestamp,
}

/// One in-flight epoch awaiting snapshots.
#[derive(Debug)]
struct Inflight {
    manifest: Manifest,
    /// Per task: id of the last index-target record routed there before
    /// the barrier (`None` = task held nothing of this prefix).
    cuts: Vec<Option<u64>>,
    injected_at: Timestamp,
    /// Tasks yet to publish.
    pending: usize,
}

#[derive(Debug)]
struct CoordInner {
    next_epoch: u64,
    inflight: BTreeMap<u64, Inflight>,
    latest_complete: Option<u64>,
    epochs_committed: u64,
}

/// Shared epoch bookkeeping between the dispatcher (which opens epochs)
/// and the joiners (which publish snapshots into them).
#[derive(Debug)]
pub struct CheckpointCoordinator {
    k: usize,
    interval: u64,
    store: Arc<dyn SnapshotStore>,
    recovery: Arc<RecoveryState>,
    inner: Mutex<CoordInner>,
}

impl CheckpointCoordinator {
    /// A coordinator for `k` joiner tasks, committing into `cfg.store`
    /// and truncating `recovery`'s replay buffers on every commit. Epoch
    /// numbering continues after whatever the store already holds, so
    /// restarting into a used [`FileStore`] directory never collides with
    /// prior checkpoints.
    ///
    /// # Errors
    /// Fails if the store cannot report its latest complete epoch.
    pub fn new(k: usize, cfg: &CheckpointConfig, recovery: Arc<RecoveryState>) -> io::Result<Self> {
        assert_eq!(recovery.k(), k, "recovery state and topology disagree on k");
        let next_epoch = cfg.store.latest_complete()?.map_or(1, |e| e + 1);
        Ok(Self {
            k,
            interval: cfg.interval,
            store: Arc::clone(&cfg.store),
            recovery,
            inner: Mutex::new(CoordInner {
                next_epoch,
                inflight: BTreeMap::new(),
                latest_complete: None,
                epochs_committed: 0,
            }),
        })
    }

    /// Records between barriers.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Joiner tasks per epoch.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dispatcher side: opens a new epoch at a consistent cut. `cut_id` is
    /// the id of the last record dispatched before the barrier; `cuts[t]`
    /// the last *index-target* id routed to task `t` (what its snapshot
    /// will cover). Returns the epoch number to stamp on the barrier.
    pub fn begin_epoch(
        &self,
        injected_at: Timestamp,
        cut_id: u64,
        cuts: Vec<Option<u64>>,
        bistream: bool,
        partition: Option<LengthPartition>,
    ) -> u64 {
        assert_eq!(cuts.len(), self.k, "one cut per joiner task");
        let mut inner = self.inner.lock();
        let epoch = inner.next_epoch;
        inner.next_epoch += 1;
        let manifest = Manifest {
            epoch,
            cut_id,
            k: self.k,
            bistream,
            partition,
        };
        inner.inflight.insert(
            epoch,
            Inflight {
                manifest,
                cuts,
                injected_at,
                pending: self.k,
            },
        );
        epoch
    }

    /// Joiner side: publishes `task`'s window snapshot for `epoch`. When
    /// the last task publishes, the epoch commits: the manifest is written
    /// atomically and every task's replay buffer is truncated to entries
    /// after its cut.
    ///
    /// # Panics
    /// Panics on an unknown epoch (a barrier the dispatcher never
    /// opened — FIFO wires make that a protocol violation, not an
    /// environmental failure) or if the store fails (checkpointing to a
    /// broken store must be loud, never silently skipped).
    pub fn publish(&self, epoch: u64, task: usize, entries: &[SnapshotEntry]) -> PublishOutcome {
        let bytes = encode_window_vec(entries).expect("window snapshots are always encodable");
        self.store
            .put(epoch, &part_name(task), &bytes)
            .expect("snapshot store write failed");
        let mut inner = self.inner.lock();
        let inflight = inner
            .inflight
            .get_mut(&epoch)
            .expect("barrier for an unopened epoch");
        assert!(inflight.pending > 0, "epoch over-published");
        inflight.pending -= 1;
        let injected_at = inflight.injected_at;
        if inflight.pending > 0 {
            return PublishOutcome {
                bytes: bytes.len() as u64,
                completed: false,
                injected_at,
            };
        }
        let done = inner.inflight.remove(&epoch).expect("present above");
        self.store
            .commit(epoch, &done.manifest.encode())
            .expect("snapshot store commit failed");
        inner.latest_complete = Some(epoch);
        inner.epochs_committed += 1;
        // The snapshot now covers each task's state up to its cut: replay
        // after a crash starts from the snapshot, so the buffered prefix
        // is dead weight. Truncation MUST happen while `inner` is still
        // held: [`Self::restore_and_replay_for`] reads (latest epoch,
        // replay buffer) under the same lock, and a commit slipping
        // between a restarting joiner's two reads would truncate records
        // the restored (older) snapshot does not cover — losing them.
        for (t, cut) in done.cuts.iter().enumerate() {
            self.recovery.commit_snapshot(t, *cut);
        }
        drop(inner);
        PublishOutcome {
            bytes: bytes.len() as u64,
            completed: true,
            injected_at,
        }
    }

    /// Joiner side, on restart: the snapshot to restore `task` from — the
    /// latest epoch committed *in this run* — or `None` before the first
    /// commit (plain buffer replay then covers everything).
    ///
    /// # Panics
    /// Panics if the store lost a committed snapshot.
    pub fn restore_for(&self, task: usize) -> Option<(u64, Vec<SnapshotEntry>)> {
        let epoch = self.inner.lock().latest_complete?;
        Some(self.fetch(epoch, task))
    }

    /// Joiner side, on restart: atomically pairs the latest committed
    /// snapshot with the replay-buffer suffix it does *not* cover. The
    /// two are read under the coordinator lock so no epoch can commit —
    /// and truncate the buffer past the snapshot being restored — between
    /// the reads; with the lock released in between, records landing in
    /// the gap between two cuts would be lost.
    pub fn restore_and_replay_for(
        &self,
        task: usize,
    ) -> (
        Option<(u64, Vec<SnapshotEntry>)>,
        Vec<crate::recovery::ReplayEntry>,
    ) {
        let inner = self.inner.lock();
        let snapshot = inner.latest_complete.map(|epoch| self.fetch(epoch, task));
        let replay = self.recovery.replay_for(task);
        drop(inner);
        (snapshot, replay)
    }

    fn fetch(&self, epoch: u64, task: usize) -> (u64, Vec<SnapshotEntry>) {
        let bytes = self
            .store
            .get(epoch, &part_name(task))
            .expect("snapshot store read failed")
            .expect("committed epoch lost a part");
        let entries = decode_window_slice(&bytes).expect("committed snapshot corrupt");
        (epoch, entries)
    }

    /// Epochs committed by this coordinator (not counting pre-existing
    /// checkpoints in the store).
    pub fn epochs_committed(&self) -> u64 {
        self.inner.lock().epochs_committed
    }

    /// The newest epoch committed by this coordinator.
    pub fn latest_complete(&self) -> Option<u64> {
        self.inner.lock().latest_complete
    }
}

fn part_name(task: usize) -> String {
    format!("joiner-{task}")
}

/// A fully-loaded complete checkpoint: the manifest plus the union of all
/// task snapshots, deduplicated by record id and sorted into global
/// arrival order — the whole topology's live window at the cut.
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// The committed epoch this image was loaded from.
    pub epoch: u64,
    /// Records with id ≤ `cut_id` are covered by the image; a restored
    /// run feeds only ids beyond it.
    pub cut_id: u64,
    /// Joiner parallelism at checkpoint time.
    pub k: usize,
    /// Whether the checkpointed run was a bi-stream join.
    pub bistream: bool,
    /// The routing partition at the cut, if the strategy had one.
    pub partition: Option<LengthPartition>,
    /// The global in-window record set at the cut, in ascending id order.
    pub window: Vec<SnapshotEntry>,
}

/// Loads the latest complete checkpoint from `store`, or `None` if no
/// epoch ever committed.
///
/// Replicating strategies store one record at several joiners; the union
/// is deduplicated by id (windows are judged per record, so every copy is
/// identical) and re-sorted into arrival order, ready to re-dispatch
/// through a fresh router.
///
/// # Errors
/// Fails on store I/O errors, a corrupt manifest or snapshot, or a
/// committed epoch missing one of its parts.
pub fn load_latest(store: &dyn SnapshotStore) -> io::Result<Option<CheckpointImage>> {
    let Some(epoch) = store.latest_complete()? else {
        return Ok(None);
    };
    let manifest_bytes = store.manifest(epoch)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("epoch {epoch} reported complete but has no manifest"),
        )
    })?;
    let manifest = Manifest::decode(&manifest_bytes)?;
    let mut window: BTreeMap<u64, SnapshotEntry> = BTreeMap::new();
    for task in 0..manifest.k {
        let bytes = store.get(epoch, &part_name(task))?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("complete epoch {epoch} is missing part {}", part_name(task)),
            )
        })?;
        for (side, record) in decode_window_slice(&bytes)? {
            window.insert(record.id().0, (side, record));
        }
    }
    Ok(Some(CheckpointImage {
        epoch: manifest.epoch,
        cut_id: manifest.cut_id,
        k: manifest.k,
        bistream: manifest.bistream,
        partition: manifest.partition,
        window: window.into_values().collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::join::bistream::Side;
    use ssj_core::Window;
    use ssj_text::{Record, RecordId, TokenId};

    fn rec(id: u64) -> Record {
        Record::from_sorted(RecordId(id), id, vec![TokenId(id as u32 + 1)])
    }

    fn entries(ids: &[u64]) -> Vec<SnapshotEntry> {
        ids.iter().map(|&id| (None, rec(id))).collect()
    }

    fn roundtrip_store(store: &dyn SnapshotStore) {
        assert_eq!(store.latest_complete().unwrap(), None);
        store.put(1, "joiner-0", b"zero").unwrap();
        store.put(1, "joiner-1", b"one").unwrap();
        // Uncommitted epochs are invisible to completeness queries.
        assert_eq!(store.latest_complete().unwrap(), None);
        assert_eq!(store.manifest(1).unwrap(), None);
        store.commit(1, b"manifest-1").unwrap();
        assert_eq!(store.latest_complete().unwrap(), Some(1));
        assert_eq!(store.get(1, "joiner-0").unwrap().unwrap(), b"zero");
        assert_eq!(store.get(1, "joiner-2").unwrap(), None);
        assert_eq!(store.manifest(1).unwrap().unwrap(), b"manifest-1");
        // A later epoch supersedes.
        store.put(3, "joiner-0", b"three").unwrap();
        store.commit(3, b"manifest-3").unwrap();
        assert_eq!(store.latest_complete().unwrap(), Some(3));
        // Overwriting a part is allowed (retried checkpoint attempt).
        store.put(3, "joiner-0", b"three-again").unwrap();
        assert_eq!(store.get(3, "joiner-0").unwrap().unwrap(), b"three-again");
    }

    #[test]
    fn mem_store_roundtrips() {
        roundtrip_store(&MemStore::new());
    }

    #[test]
    fn file_store_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ssj-ckpt-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        roundtrip_store(&FileStore::open(&dir).unwrap());
        // Reopening sees the committed state (durability).
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.latest_complete().unwrap(), Some(3));
        assert_eq!(reopened.manifest(3).unwrap().unwrap(), b"manifest-3");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrips_with_and_without_partition() {
        let with = Manifest {
            epoch: 7,
            cut_id: 399,
            k: 4,
            bistream: true,
            partition: Some(LengthPartition::from_uppers(vec![4, 9, 100])),
        };
        assert_eq!(Manifest::decode(&with.encode()).unwrap(), with);
        let without = Manifest {
            epoch: 1,
            cut_id: 0,
            k: 1,
            bistream: false,
            partition: None,
        };
        assert_eq!(Manifest::decode(&without.encode()).unwrap(), without);
        assert!(Manifest::decode(&with.encode()[..10]).is_err());
        let mut bad = with.encode();
        bad[0] ^= 0xff;
        assert!(Manifest::decode(&bad).is_err());
    }

    #[test]
    fn coordinator_commits_when_all_tasks_publish_and_truncates_replay() {
        let recovery = Arc::new(RecoveryState::new(2, Window::Unbounded));
        for id in 0..10 {
            let target = (id % 2) as usize;
            recovery.buffer_index_target(
                target,
                crate::recovery::ReplayEntry {
                    record: rec(id),
                    side: None,
                },
            );
        }
        let cfg = CheckpointConfig::in_memory(5);
        let coord = CheckpointCoordinator::new(2, &cfg, Arc::clone(&recovery)).unwrap();
        let epoch = coord.begin_epoch(Timestamp::ZERO, 9, vec![Some(8), Some(7)], false, None);
        assert_eq!(epoch, 1);
        assert!(coord.restore_for(0).is_none(), "nothing committed yet");

        let first = coord.publish(epoch, 0, &entries(&[0, 2, 4, 6, 8]));
        assert!(!first.completed);
        assert_eq!(coord.epochs_committed(), 0);
        assert_eq!(recovery.buffered(0), 5, "no truncation before commit");

        let second = coord.publish(epoch, 1, &entries(&[1, 3, 5, 7, 9]));
        assert!(second.completed);
        assert_eq!(coord.epochs_committed(), 1);
        assert_eq!(coord.latest_complete(), Some(1));
        // Buffers truncated to each task's cut: task 0 ≤ 8, task 1 ≤ 7.
        assert_eq!(recovery.buffered(0), 0);
        assert_eq!(recovery.buffered(1), 1);

        let (e, restored) = coord.restore_for(1).unwrap();
        assert_eq!(e, 1);
        let ids: Vec<u64> = restored.iter().map(|(_, r)| r.id().0).collect();
        assert_eq!(ids, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn epoch_numbering_resumes_after_existing_checkpoints() {
        let store: Arc<dyn SnapshotStore> = Arc::new(MemStore::new());
        store.put(4, "joiner-0", b"old").unwrap();
        store.commit(4, b"m").unwrap();
        let cfg = CheckpointConfig::new(10, Arc::clone(&store));
        let recovery = Arc::new(RecoveryState::new(1, Window::Unbounded));
        let coord = CheckpointCoordinator::new(1, &cfg, recovery).unwrap();
        let epoch = coord.begin_epoch(Timestamp::ZERO, 0, vec![None], false, None);
        assert_eq!(epoch, 5, "epochs continue after the store's history");
    }

    #[test]
    fn load_latest_unions_and_dedups_task_windows() {
        let store = MemStore::new();
        assert!(load_latest(&store).unwrap().is_none());
        // Replicated record 5 appears in both task snapshots (broadcast-
        // style routing); the image must carry it once.
        let part0 = encode_window_vec(&entries(&[1, 5])).unwrap();
        let part1 = encode_window_vec(&[
            (Some(Side::Left), rec(2)),
            (None, rec(5)),
            (Some(Side::Right), rec(9)),
        ])
        .unwrap();
        store.put(2, "joiner-0", &part0).unwrap();
        store.put(2, "joiner-1", &part1).unwrap();
        store
            .commit(
                2,
                &Manifest {
                    epoch: 2,
                    cut_id: 9,
                    k: 2,
                    bistream: false,
                    partition: Some(LengthPartition::from_uppers(vec![3, 50])),
                }
                .encode(),
            )
            .unwrap();
        let image = load_latest(&store).unwrap().unwrap();
        assert_eq!(image.epoch, 2);
        assert_eq!(image.cut_id, 9);
        assert_eq!(image.k, 2);
        assert!(!image.bistream);
        assert!(image.partition.is_some());
        let ids: Vec<u64> = image.window.iter().map(|(_, r)| r.id().0).collect();
        assert_eq!(ids, vec![1, 2, 5, 9]);
    }

    #[test]
    fn load_latest_rejects_a_complete_epoch_with_missing_parts() {
        let store = MemStore::new();
        store
            .put(1, "joiner-0", &encode_window_vec(&entries(&[1])).unwrap())
            .unwrap();
        store
            .commit(
                1,
                &Manifest {
                    epoch: 1,
                    cut_id: 3,
                    k: 2,
                    bistream: false,
                    partition: None,
                }
                .encode(),
            )
            .unwrap();
        assert!(load_latest(&store).is_err());
    }

    #[test]
    #[should_panic(expected = "zero checkpoint interval")]
    fn zero_interval_rejected() {
        let _ = CheckpointConfig::in_memory(0);
    }
}
