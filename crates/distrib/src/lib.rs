//! Distribution frameworks for the streaming set similarity join.
//!
//! A single dispatcher routes each arriving record to `k` parallel joiners
//! as *probe* and/or *index* messages; joiners run a local
//! [`StreamJoiner`](ssj_core::StreamJoiner) and emit result pairs to a
//! sink. Three routing strategies are provided:
//!
//! * **Length-based** ([`route::LengthRouter`]) — the paper's scheme: index
//!   at the one joiner owning the record's length (zero replication), probe
//!   the joiners whose length ranges intersect the length-filter interval.
//! * **Prefix-based** ([`route::PrefixRouter`]) — the classic offline
//!   scheme adapted to streams: hash each prefix token to a joiner;
//!   records are *replicated* to every joiner owning one of their prefix
//!   tokens, and duplicate results are eliminated exactly by the
//!   smallest-common-prefix-token rule.
//! * **Broadcast** ([`route::BroadcastRouter`]) — index round-robin, probe
//!   everywhere.
//!
//! [`driver::run_distributed`] assembles the dispatcher → joiners → sink
//! topology on [`stormlite`], runs a record stream through it, and returns
//! the result pairs plus throughput / communication / load / latency
//! measurements — the observables of every distributed experiment in
//! EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod bolts;
pub mod checkpoint;
pub mod driver;
pub mod msg;
pub mod pace;
pub mod recovery;
pub mod route;

pub use checkpoint::{
    load_latest, CheckpointConfig, CheckpointCoordinator, CheckpointImage, FileStore, MemStore,
    SnapshotStore,
};
pub use driver::{
    calibrate_partition, run_bistream_distributed, run_distributed, DistributedJoinConfig,
    DistributedJoinResult, LocalAlgo, PartitionMethod, Strategy,
};
pub use msg::{JoinMsg, RecordMsg};
pub use pace::PacedIter;
pub use recovery::{RecoveryState, ReplayEntry};
pub use route::{BroadcastRouter, LengthRouter, PrefixRouter, RouteDecision, Router};
// Re-exported so callers configuring `DistributedJoinConfig::scheduler`
// don't need a direct stormlite dependency.
pub use stormlite::{Scheduler, SimConfig};
// Re-exported so callers enabling `DistributedJoinConfig::trace` and
// consuming `DistributedJoinResult::trace`/`stages` don't need a direct
// obs dependency.
pub use obs::{RunTrace, StageProfile, TraceConfig};
