//! Arrival-rate pacing for spout sources.
//!
//! Pacing spins on [`std::time::Instant`] — the *wall* clock — so it is
//! incompatible with deterministic simulation, where time is virtual and
//! only advances when the scheduler steps. The driver rejects
//! `source_rate` under [`Scheduler::Sim`](stormlite::Scheduler::Sim) for
//! exactly this reason.

use std::time::{Duration, Instant};

/// An iterator adapter that paces items to a target arrival rate using a
/// spin-wait (sleep granularity is far too coarse at 10k+ records/s).
/// Used to emulate a source with a fixed rate when measuring latency
/// under load.
pub struct PacedIter<I> {
    inner: I,
    gap: Duration,
    next_at: Option<Instant>,
}

impl<I> PacedIter<I> {
    /// Paces `inner` to `rate_per_sec` items per second.
    pub fn new(inner: I, rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        Self {
            inner,
            gap: Duration::from_secs_f64(1.0 / rate_per_sec),
            next_at: None,
        }
    }
}

impl<I: Iterator> Iterator for PacedIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next()?;
        let now = Instant::now();
        let due = match self.next_at {
            None => now,
            Some(t) => t,
        };
        // Hybrid wait: sleep for the bulk of the gap (yields the core to
        // the workers — essential on small machines), spin for the last
        // stretch (sleep granularity is far coarser than microsecond gaps).
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            let remaining = due - now;
            if remaining > Duration::from_micros(500) {
                std::thread::sleep(remaining - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        self.next_at = Some(due.max(now) + self.gap);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paced_iter_respects_rate() {
        let t0 = Instant::now();
        let n = 200;
        let count = PacedIter::new(0..n, 10_000.0).count();
        assert_eq!(count, n);
        let elapsed = t0.elapsed();
        // 200 items at 10k/s = 20ms minimum.
        assert!(elapsed >= Duration::from_millis(19), "{elapsed:?}");
    }

    #[test]
    fn paced_iter_yields_all_items() {
        let items: Vec<_> = PacedIter::new(vec![1, 2, 3].into_iter(), 1e9).collect();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn unpaced_speed_is_fast() {
        // A huge rate should add no meaningful delay.
        let t0 = Instant::now();
        let _ = PacedIter::new(0..10_000, 1e12).count();
        assert!(t0.elapsed() < Duration::from_millis(500));
    }
}
