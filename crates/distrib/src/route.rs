//! Routing strategies: which joiners index and which probe each record.

use ssj_core::Threshold;
use ssj_partition::LengthPartition;
use ssj_text::{Record, TokenId};
use std::hash::Hasher;

/// Where one record must go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// Joiners that must store the record (deduplicated, sorted).
    pub index: Vec<usize>,
    /// Joiners that must probe with the record (deduplicated, sorted).
    pub probe: Vec<usize>,
}

impl RouteDecision {
    /// Total messages this decision costs (targets in both sets are served
    /// by one combined probe-and-index message).
    pub fn message_count(&self) -> usize {
        let both = self
            .index
            .iter()
            .filter(|t| self.probe.binary_search(t).is_ok())
            .count();
        self.index.len() + self.probe.len() - both
    }
}

/// A record-routing strategy for `k` joiners.
pub trait Router: Send {
    // (implemented below for Box<dyn Router + Send> so routers can be
    // chosen at runtime)

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Number of joiners routed to.
    fn k(&self) -> usize;

    /// Computes the index/probe targets of one record.
    fn route(&mut self, record: &Record) -> RouteDecision;

    /// Whether duplicate result pairs are possible (the joiner layer then
    /// enables exact smallest-common-token deduplication).
    fn needs_result_dedup(&self) -> bool {
        false
    }

    /// The length partition this router currently routes by, if it is a
    /// length-based router — persisted in checkpoint manifests so a
    /// restored topology resumes with the same routing instead of
    /// recalibrating on a truncated sample. `None` for partition-free
    /// routers (prefix, broadcast).
    fn length_partition(&self) -> Option<&LengthPartition> {
        None
    }
}

impl Router for Box<dyn Router + Send> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn k(&self) -> usize {
        self.as_ref().k()
    }

    fn route(&mut self, record: &Record) -> RouteDecision {
        self.as_mut().route(record)
    }

    fn needs_result_dedup(&self) -> bool {
        self.as_ref().needs_result_dedup()
    }

    fn length_partition(&self) -> Option<&LengthPartition> {
        self.as_ref().length_partition()
    }
}

/// The joiner owning a token under hash partitioning of the token space.
/// Shared by the prefix router (dispatch side) and the result dedup
/// (joiner side) — both must agree.
#[inline]
pub fn token_owner(token: TokenId, k: usize) -> usize {
    let mut h = ssj_text::fxhash::FxHasher::default();
    h.write_u32(token.raw());
    (h.finish() % k as u64) as usize
}

/// The paper's length-based router: index once at the owner of `|r|`,
/// probe the partitions intersecting `[min_len(|r|), max_len(|r|)]`.
#[derive(Debug, Clone)]
pub struct LengthRouter {
    threshold: Threshold,
    partition: LengthPartition,
}

impl LengthRouter {
    /// A router over an existing partition.
    pub fn new(threshold: Threshold, partition: LengthPartition) -> Self {
        Self {
            threshold,
            partition,
        }
    }

    /// The partition in use.
    pub fn partition(&self) -> &LengthPartition {
        &self.partition
    }
}

impl Router for LengthRouter {
    fn name(&self) -> &'static str {
        "length"
    }

    fn k(&self) -> usize {
        self.partition.k()
    }

    fn route(&mut self, record: &Record) -> RouteDecision {
        let l = record.len();
        let index = vec![self.partition.partition_of(l)];
        let lo = self.threshold.min_len(l);
        let hi = self.threshold.max_len(l);
        let (a, b) = self.partition.probe_targets(lo, hi);
        RouteDecision {
            index,
            probe: (a..=b).collect(),
        }
    }

    fn length_partition(&self) -> Option<&LengthPartition> {
        Some(&self.partition)
    }
}

/// Prefix-token hash router (the offline classic, streamed): the record is
/// indexed at the owner of each of its prefix tokens and probes the same
/// set. Replication factor = number of distinct owners of the prefix.
#[derive(Debug, Clone)]
pub struct PrefixRouter {
    threshold: Threshold,
    k: usize,
}

impl PrefixRouter {
    /// A prefix router over `k` joiners.
    pub fn new(threshold: Threshold, k: usize) -> Self {
        assert!(k >= 1, "need at least one joiner");
        Self { threshold, k }
    }
}

impl Router for PrefixRouter {
    fn name(&self) -> &'static str {
        "prefix"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn route(&mut self, record: &Record) -> RouteDecision {
        let p = self.threshold.prefix_len(record.len());
        let mut targets: Vec<usize> = record
            .prefix(p)
            .iter()
            .map(|&t| token_owner(t, self.k))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        RouteDecision {
            index: targets.clone(),
            probe: targets,
        }
    }

    fn needs_result_dedup(&self) -> bool {
        true
    }
}

/// Length-based routing with online repartitioning: wraps an
/// [`EpochedPartitioner`](ssj_partition::EpochedPartitioner), feeding it
/// every routed record so it can detect drift and install new plans.
/// Probes target the union of all active plans, keeping results exact
/// through plan transitions.
#[derive(Debug)]
pub struct EpochRouter {
    epoched: ssj_partition::EpochedPartitioner,
    /// Plans installed during this run (for reporting).
    pub installs: u32,
}

impl EpochRouter {
    /// A drift-reactive router.
    pub fn new(epoched: ssj_partition::EpochedPartitioner) -> Self {
        Self {
            epoched,
            installs: 0,
        }
    }

    /// Plans currently probe-visible.
    pub fn active_plans(&self) -> usize {
        self.epoched.active_plans()
    }
}

impl Router for EpochRouter {
    fn name(&self) -> &'static str {
        "length-online"
    }

    fn k(&self) -> usize {
        self.epoched.k()
    }

    fn route(&mut self, record: &Record) -> RouteDecision {
        if self.epoched.observe(record).is_some() {
            self.installs += 1;
        }
        RouteDecision {
            index: vec![self.epoched.index_partition(record.len())],
            probe: self.epoched.probe_partitions(record.len()),
        }
    }

    fn length_partition(&self) -> Option<&LengthPartition> {
        // Older plans only matter for records already routed under them; a
        // restore re-dispatches the live window through the current plan,
        // so that is the one worth persisting.
        Some(self.epoched.current_partition())
    }
}

/// Round-robin index, probe-everywhere broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastRouter {
    k: usize,
    next: usize,
}

impl BroadcastRouter {
    /// A broadcast router over `k` joiners.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one joiner");
        Self { k, next: 0 }
    }
}

impl Router for BroadcastRouter {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn route(&mut self, _record: &Record) -> RouteDecision {
        let index = vec![self.next];
        self.next = (self.next + 1) % self.k;
        RouteDecision {
            index,
            probe: (0..self.k).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_partition::equal_width;
    use ssj_text::RecordId;

    fn rec(id: u64, toks: &[u32]) -> Record {
        Record::from_sorted(RecordId(id), 0, toks.iter().copied().map(TokenId).collect())
    }

    fn rec_len(id: u64, len: u32) -> Record {
        rec(id, &(0..len).collect::<Vec<_>>())
    }

    #[test]
    fn length_router_indexes_once() {
        let mut r = LengthRouter::new(Threshold::jaccard(0.8), equal_width(40, 4));
        for len in [1u32, 5, 17, 33, 40] {
            let d = r.route(&rec_len(0, len));
            assert_eq!(d.index.len(), 1, "no replication ever");
        }
    }

    #[test]
    fn length_router_probe_covers_filter_interval() {
        let t = Threshold::jaccard(0.8);
        let part = equal_width(40, 4); // ranges [1,10][11,20][21,30][31,40]
        let mut r = LengthRouter::new(t, part.clone());
        // len 20: matching partners in [16, 25] → partitions 1 and 2.
        let d = r.route(&rec_len(0, 20));
        assert_eq!(d.probe, vec![1, 2]);
        assert_eq!(d.index, vec![1]);
        assert_eq!(d.message_count(), 2); // index target is also probed
    }

    #[test]
    fn length_router_own_length_always_probed() {
        let t = Threshold::jaccard(0.6);
        let mut r = LengthRouter::new(t, equal_width(64, 8));
        for len in 1..=64u32 {
            let d = r.route(&rec_len(0, len));
            assert!(
                d.probe.contains(&d.index[0]),
                "len {len}: index target must be within the probe range"
            );
        }
    }

    #[test]
    fn prefix_router_replicates_by_prefix() {
        let t = Threshold::jaccard(0.5);
        let mut r = PrefixRouter::new(t, 8);
        // len 8, tau 0.5 → prefix_len = 8 - ceil(0.5*(8+4)/1.5) + 1 = 8-4+1 = 5
        let d = r.route(&rec_len(0, 8));
        assert!(!d.index.is_empty() && d.index.len() <= 5);
        assert_eq!(d.index, d.probe);
        assert!(d.index.windows(2).all(|w| w[0] < w[1]), "sorted dedup");
        assert!(r.needs_result_dedup());
    }

    #[test]
    fn prefix_router_identical_records_same_targets() {
        let t = Threshold::jaccard(0.7);
        let mut r = PrefixRouter::new(t, 4);
        let a = r.route(&rec(0, &[3, 9, 27, 81]));
        let b = r.route(&rec(1, &[3, 9, 27, 81]));
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_router_round_robins_index() {
        let mut r = BroadcastRouter::new(3);
        let d0 = r.route(&rec_len(0, 4));
        let d1 = r.route(&rec_len(1, 4));
        let d2 = r.route(&rec_len(2, 4));
        let d3 = r.route(&rec_len(3, 4));
        assert_eq!(d0.index, vec![0]);
        assert_eq!(d1.index, vec![1]);
        assert_eq!(d2.index, vec![2]);
        assert_eq!(d3.index, vec![0]);
        assert_eq!(d0.probe, vec![0, 1, 2]);
        assert_eq!(d0.message_count(), 3);
    }

    mod coverage {
        //! The completeness property every router must satisfy: for any
        //! pair of records that *can* match under the threshold, the later
        //! record's probe targets include the joiner where the earlier
        //! record was indexed.
        use super::*;
        use proptest::prelude::*;
        use ssj_core::verify;

        fn random_record(id: u64, toks: &std::collections::BTreeSet<u32>) -> Record {
            Record::from_sorted(RecordId(id), 0, toks.iter().copied().map(TokenId).collect())
        }

        /// The pair is producible iff some joiner both indexed the earlier
        /// record and is probed by the later one. (For the length router
        /// the index set is a singleton, so this is containment; for the
        /// prefix router replication means only an *intersection* at the
        /// shared-token owner is guaranteed.)
        fn covers(router: &mut dyn Router, earlier: &Record, later: &Record) -> bool {
            let index = router.route(earlier).index;
            let probe = router.route(later).probe;
            index.iter().any(|t| probe.contains(t))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn matching_pairs_are_always_covered(
                a in proptest::collection::btree_set(0u32..300, 4..40),
                drop_n in 0usize..3,
                add in proptest::collection::btree_set(300u32..320, 0..3),
                tau in 0.5f64..0.95,
                k in 1usize..9,
                cal_lens in proptest::collection::vec(1usize..50, 1..30),
            ) {
                // Derive b from a by a small mutation so matching pairs are
                // common; non-matching mutations are assumed away.
                let mut b = a.clone();
                for x in a.iter().take(drop_n).copied().collect::<Vec<_>>() {
                    b.remove(&x);
                }
                b.extend(add.iter().copied());
                let r_a = random_record(0, &a);
                let r_b = random_record(1, &b);
                let t = Threshold::jaccard(tau);
                let o = verify::overlap(r_a.tokens(), r_b.tokens());
                prop_assume!(t.matches(o, r_a.len(), r_b.len()));

                // Length router over a partition calibrated on *unrelated*
                // lengths (the realistic stale-calibration case).
                let mut hist = ssj_partition::LengthHistogram::new();
                for &l in &cal_lens {
                    hist.add(l);
                }
                let cost = ssj_partition::CostModel::build(&hist, t, hist.max_len());
                let partition = ssj_partition::load_aware(&cost, k);
                let mut length = LengthRouter::new(t, partition);
                prop_assert!(covers(&mut length, &r_a, &r_b), "length router missed");
                prop_assert!(covers(&mut length, &r_b, &r_a), "length router missed (swap)");

                let mut prefix = PrefixRouter::new(t, k);
                prop_assert!(covers(&mut prefix, &r_a, &r_b), "prefix router missed");
                // Stronger prefix property: the owner of a shared prefix
                // token is both an index target of the earlier record and a
                // probe target of the later one — that joiner generates the
                // pair (and the smallest such owner emits it).
                let pa = t.prefix_len(r_a.len());
                let pb = t.prefix_len(r_b.len());
                let shared = r_a
                    .prefix(pa)
                    .iter()
                    .find(|tok| r_b.prefix(pb).contains(tok))
                    .copied();
                let shared = shared.expect("prefix lemma: matching pairs share a prefix token");
                let owner = token_owner(shared, k);
                let idx = prefix.route(&r_a).index;
                let prb = prefix.route(&r_b).probe;
                prop_assert!(idx.contains(&owner) && prb.contains(&owner));

                let mut broadcast = BroadcastRouter::new(k);
                prop_assert!(covers(&mut broadcast, &r_a, &r_b), "broadcast router missed");
            }
        }
    }

    #[test]
    fn token_owner_is_stable_and_in_range() {
        for t in 0..1000u32 {
            let o = token_owner(TokenId(t), 7);
            assert!(o < 7);
            assert_eq!(o, token_owner(TokenId(t), 7));
        }
        // Spread sanity: with 1000 tokens and 7 buckets, no bucket empty.
        let mut seen = [false; 7];
        for t in 0..1000u32 {
            seen[token_owner(TokenId(t), 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
