//! End-to-end distributed join driver: assembles the topology, runs a
//! stream through it, and reports results plus every observable the
//! evaluation needs (throughput, communication, load balance, latency).

use crate::bolts::{DispatcherBolt, JoinerBolt, JoinerSnapshot, SinkBolt, SinkState};
use crate::checkpoint::{load_latest, CheckpointConfig, CheckpointCoordinator, SnapshotStore};
use crate::msg::{JoinMsg, RecordMsg};
use crate::recovery::RecoveryState;
use crate::route::{BroadcastRouter, EpochRouter, LengthRouter, PrefixRouter, Router};
use obs::{RunTrace, StageProfile, TraceConfig, TraceSink};
use parking_lot::Mutex;
use ssj_core::{
    AllPairsJoiner, BundleConfig, BundleJoiner, JoinConfig, MatchPair, NaiveJoiner, PpJoinJoiner,
    StreamJoiner, Threshold,
};
use ssj_partition::{
    equal_depth, equal_width, load_aware, load_aware_greedy, CostModel, EpochConfig,
    EpochedPartitioner, LengthHistogram, LengthPartition,
};
use ssj_text::Record;
use std::sync::Arc;
use std::time::Duration;
use stormlite::{
    Delivery, FaultPlan, Grouping, LatencyHistogram, LinkFault, LinkFaultPlan, RetryConfig,
    RunReport, Scheduler, SimConfig, Timestamp, Topology, Transcript,
};

/// Which local join algorithm each joiner runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalAlgo {
    /// Verify-everything ground truth (tests/ablation only).
    Naive,
    /// Prefix + length filtering.
    AllPairs,
    /// Prefix + length + positional filtering.
    PpJoin,
    /// PPJoin plus suffix filtering.
    PpJoinPlus,
    /// The paper's bundle-based join with batch verification.
    Bundle {
        /// Absorption threshold; `None` uses the [`BundleConfig`] default.
        bundle_tau: Option<f64>,
        /// Member cap per bundle.
        max_members: usize,
        /// Delta-size cap as a fraction of the representative length.
        max_delta_frac: f64,
    },
}

impl LocalAlgo {
    /// Bundle join with default parameters.
    pub fn bundle() -> Self {
        LocalAlgo::Bundle {
            bundle_tau: None,
            max_members: 64,
            max_delta_frac: 0.25,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LocalAlgo::Naive => "naive",
            LocalAlgo::AllPairs => "allpairs",
            LocalAlgo::PpJoin => "ppjoin",
            LocalAlgo::PpJoinPlus => "ppjoin+",
            LocalAlgo::Bundle { .. } => "bundle",
        }
    }

    fn build(&self, cfg: JoinConfig) -> Box<dyn StreamJoiner + Send> {
        match *self {
            LocalAlgo::Naive => Box::new(NaiveJoiner::new(cfg)),
            LocalAlgo::AllPairs => Box::new(AllPairsJoiner::new(cfg)),
            LocalAlgo::PpJoin => Box::new(PpJoinJoiner::new(cfg)),
            LocalAlgo::PpJoinPlus => Box::new(PpJoinJoiner::new_plus(cfg)),
            LocalAlgo::Bundle {
                bundle_tau,
                max_members,
                max_delta_frac,
            } => {
                let mut bc = BundleConfig::new(cfg);
                if let Some(bt) = bundle_tau {
                    bc.bundle_tau = bt;
                }
                bc.max_members = max_members;
                bc.max_delta_frac = max_delta_frac;
                Box::new(BundleJoiner::new(bc))
            }
        }
    }
}

/// How a calibration sample is turned into a length partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Equal-width length ranges.
    EqualWidth,
    /// Equi-frequency (record-count balanced) ranges.
    EqualDepth,
    /// Load-aware minimax DP over the cost mass `H(ℓ)` (the paper's).
    LoadAware,
    /// Load-aware via binary search + greedy sweep.
    LoadAwareGreedy,
}

/// Builds a length partition from a record sample.
pub fn calibrate_partition(
    sample: &[Record],
    threshold: Threshold,
    k: usize,
    method: PartitionMethod,
) -> LengthPartition {
    let hist = LengthHistogram::from_records(sample);
    match method {
        PartitionMethod::EqualWidth => equal_width(hist.max_len(), k),
        PartitionMethod::EqualDepth => equal_depth(&hist, k),
        PartitionMethod::LoadAware => {
            load_aware(&CostModel::build(&hist, threshold, hist.max_len()), k)
        }
        PartitionMethod::LoadAwareGreedy => {
            load_aware_greedy(&CostModel::build(&hist, threshold, hist.max_len()), k)
        }
    }
}

/// The distribution strategy to run.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Length-based routing over an explicit partition.
    Length(LengthPartition),
    /// Length-based routing; the partition is calibrated from the first
    /// `sample` records of the stream with the given method.
    LengthAuto {
        /// Partitioning method.
        method: PartitionMethod,
        /// Calibration sample size.
        sample: usize,
    },
    /// Length-based routing with online repartitioning under drift.
    LengthOnline {
        /// Calibration sample size for the initial plan.
        sample: usize,
        /// Drift-detection policy.
        epoch: EpochConfig,
    },
    /// Prefix-token hash routing (replicating baseline).
    Prefix,
    /// Round-robin index + probe broadcast (baseline).
    Broadcast,
}

impl Strategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Length(_) | Strategy::LengthAuto { .. } => "length",
            Strategy::LengthOnline { .. } => "length-online",
            Strategy::Prefix => "prefix",
            Strategy::Broadcast => "broadcast",
        }
    }
}

/// Full configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedJoinConfig {
    /// Number of parallel joiners.
    pub k: usize,
    /// Threshold and window.
    pub join: JoinConfig,
    /// Local algorithm on each joiner.
    pub local: LocalAlgo,
    /// Distribution strategy.
    pub strategy: Strategy,
    /// Per-task input queue depth (backpressure).
    pub channel_capacity: usize,
    /// Pace the source to this many records per second (`None` = as fast
    /// as the pipeline accepts; used by the latency experiments).
    pub source_rate: Option<f64>,
    /// Injected joiner crashes for recovery testing. `None` (the default
    /// everywhere outside fault experiments) skips all recovery machinery,
    /// so fault-free runs pay nothing. Plans may only target `"joiner"`
    /// tasks: the dispatcher is stateful-built-once and the sink keeps its
    /// state in shared memory, so neither needs (nor supports) replay.
    pub fault: Option<FaultPlan>,
    /// Chaos mode: seed a [`LinkFaultPlan`] that makes every wire lossy
    /// (seeded drop/duplicate/delay rates) and upgrades every wire to
    /// [`Delivery::AtLeastOnce`], which masks the faults — the output stays
    /// exactly the fault-free result. `None` (the default) keeps plain
    /// wires with zero overhead.
    pub chaos_seed: Option<u64>,
    /// Degraded mode: shed whole records at the dispatcher whenever any
    /// target joiner's input queue holds at least this many messages. Shed
    /// record ids are reported in
    /// [`DistributedJoinResult::shed_records`] so recall loss is exactly
    /// accountable. `None` (the default) never sheds — backpressure blocks
    /// the dispatcher instead.
    pub shed_watermark: Option<usize>,
    /// Caps each joiner's crash-recovery replay buffer at this many
    /// entries (see [`RecoveryState::with_buffer_cap`]). Only meaningful
    /// together with `fault`; `None` leaves the buffer bounded by window
    /// expiry alone — unless `checkpoint` is also set, which truncates the
    /// buffer at every epoch commit regardless.
    pub replay_buffer_cap: Option<usize>,
    /// Epoch-based coordinated checkpointing: inject a barrier every
    /// `interval` dispatched records, snapshot every joiner's window into
    /// the configured [`SnapshotStore`], and truncate replay buffers as
    /// epochs commit (see [`crate::checkpoint`]). `None` (the default)
    /// never checkpoints.
    pub checkpoint: Option<CheckpointConfig>,
    /// Rebuild the topology's state (joiner windows, routing partition,
    /// bistream sides) from the latest complete checkpoint in this store
    /// before streaming: source records the checkpoint already covers are
    /// skipped, the checkpointed window is re-dispatched index-only, and a
    /// persisted length partition overrides the configured strategy.
    /// `None` (the default) starts empty.
    pub restore_from: Option<Arc<dyn SnapshotStore>>,
    /// How the topology executes: [`Scheduler::Threads`] (the default) runs
    /// one OS thread per task; [`Scheduler::Sim`] runs the whole topology
    /// single-threaded under a virtual clock with a seeded interleaving, so
    /// the same seed replays the exact same run (see [`stormlite::sim`]).
    /// Simulated runs report virtual-time latencies and are incompatible
    /// with `source_rate` (pacing sleeps on the wall clock).
    pub scheduler: Scheduler,
    /// Structured event tracing and per-stage latency profiling: every
    /// task records pipeline events (dispatch → route → deliver/retry →
    /// index → verify → emit, plus barrier/checkpoint/shed) into bounded
    /// rings, collected into [`DistributedJoinResult::trace`], and the
    /// bolts fill [`DistributedJoinResult::stages`]. Timestamps come from
    /// the scheduler clock, so a simulated run's trace is byte-identical
    /// per seed; instrumentation draws no randomness and never advances
    /// the clock, so transcripts and results are unchanged by enabling
    /// it. `None` (the default) records nothing and costs nothing.
    pub trace: Option<TraceConfig>,
}

impl DistributedJoinConfig {
    /// The paper's default setup: length-based (load-aware, calibrated on
    /// the first 10k records) + bundle join.
    pub fn recommended(k: usize, join: JoinConfig) -> Self {
        Self {
            k,
            join,
            local: LocalAlgo::bundle(),
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 10_000,
            },
            channel_capacity: 1024,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        }
    }

    /// Adds an injected fault plan (see [`FaultPlan`]).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Makes every wire lossy under the seeded chaos plan and reliable
    /// under at-least-once delivery (see [`Self::chaos_seed`]).
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// Sheds records at the dispatcher above this queue depth (see
    /// [`Self::shed_watermark`]).
    pub fn with_shed_watermark(mut self, watermark: usize) -> Self {
        self.shed_watermark = Some(watermark);
        self
    }

    /// Caps the crash-recovery replay buffer (see
    /// [`Self::replay_buffer_cap`]).
    pub fn with_replay_buffer_cap(mut self, cap: usize) -> Self {
        self.replay_buffer_cap = Some(cap);
        self
    }

    /// Enables epoch-based coordinated checkpointing (see
    /// [`Self::checkpoint`]).
    pub fn with_checkpointing(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Restores topology state from the latest complete checkpoint in
    /// `store` before streaming (see [`Self::restore_from`]).
    pub fn with_restore_from(mut self, store: Arc<dyn SnapshotStore>) -> Self {
        self.restore_from = Some(store);
        self
    }

    /// Runs the topology under deterministic simulation with the given
    /// interleaving seed (see [`Self::scheduler`]).
    pub fn with_sim(mut self, seed: u64) -> Self {
        self.scheduler = Scheduler::Sim(SimConfig::seeded(seed));
        self
    }

    /// Enables structured tracing and stage profiling (see [`Self::trace`]).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Everything a distributed run produced.
#[derive(Debug)]
pub struct DistributedJoinResult {
    /// All result pairs (exact, duplicate-free).
    pub pairs: Vec<MatchPair>,
    /// Dispatch-to-result latency distribution.
    pub latency: LatencyHistogram,
    /// Per-task engine metrics.
    pub report: RunReport,
    /// Final per-joiner algorithm statistics.
    pub joiners: Vec<JoinerSnapshot>,
    /// Records streamed.
    pub records: usize,
    /// Wall-clock time from first dispatch to full drain.
    pub wall: std::time::Duration,
    /// Ids of records shed by the dispatcher under degraded mode, in shed
    /// order. Always has exactly [`RunReport::shed`] entries; empty unless
    /// [`DistributedJoinConfig::shed_watermark`] was set and overload
    /// actually occurred.
    pub shed_records: Vec<u64>,
    /// When the run restored from a checkpoint
    /// ([`DistributedJoinConfig::restore_from`] with a complete epoch
    /// available): the restored epoch's cut id. Source records at or below
    /// it were skipped as already covered.
    pub restored_cut: Option<u64>,
    /// The scheduler decision log of a simulated run (`None` under
    /// [`Scheduler::Threads`]). Byte-identical across runs with the same
    /// seed and configuration — the determinism witness golden tests pin.
    pub transcript: Option<Transcript>,
    /// The structured event trace of the run (`None` unless
    /// [`DistributedJoinConfig::trace`] was set). Under simulation the
    /// rendered trace is byte-identical per seed.
    pub trace: Option<RunTrace>,
    /// Per-stage latency histograms recorded by the pipeline's bolts
    /// (route, index, verify, emit, barrier, checkpoint). Empty unless
    /// [`DistributedJoinConfig::trace`] was set.
    pub stages: StageProfile,
}

impl DistributedJoinResult {
    /// End-to-end throughput in records per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.records as f64 / self.wall.as_secs_f64()
    }

    /// Dispatcher→joiner messages per record (communication cost).
    pub fn msgs_per_record(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.report.component("dispatcher").msgs_out as f64 / self.records as f64
    }

    /// Dispatcher→joiner bytes per record (communication cost).
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.report.component("dispatcher").bytes_out as f64 / self.records as f64
    }

    /// Index replication factor: stored copies per record.
    pub fn replication(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        let indexed: u64 = self.joiners.iter().map(|j| j.stats.indexed).sum();
        indexed as f64 / self.records as f64
    }

    /// Critical-path throughput projection: records divided by the busiest
    /// single task's busy time. On a genuinely parallel machine the
    /// pipeline can go no faster than its most loaded stage; on the
    /// single-core containers these experiments often run in, wall-clock
    /// throughput cannot show parallel speedup, while this projection
    /// preserves the scaling *shape* (it is what a `k`-core deployment
    /// would be bounded by, ignoring communication overlap).
    pub fn modeled_throughput(&self) -> f64 {
        let bottleneck = self
            .report
            .tasks
            .iter()
            .map(|(_, _, m)| m.busy.as_secs_f64())
            .fold(0.0f64, f64::max);
        if bottleneck <= 0.0 {
            return 0.0;
        }
        self.records as f64 / bottleneck
    }

    /// Joiner load imbalance: max/avg of per-joiner busy time.
    pub fn load_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .report
            .tasks
            .iter()
            .filter(|(c, _, _)| c == "joiner")
            .map(|(_, _, m)| m.busy.as_secs_f64())
            .collect();
        let total: f64 = busy.iter().sum();
        if busy.is_empty() || total <= 0.0 {
            return 1.0;
        }
        busy.iter().fold(0.0f64, |a, &b| a.max(b)) * busy.len() as f64 / total
    }
}

/// Runs `records` through the configured distributed self-join and returns
/// the exact result set plus all measurements.
pub fn run_distributed(records: &[Record], cfg: &DistributedJoinConfig) -> DistributedJoinResult {
    // The source stamp is a placeholder: the dispatcher re-stamps every
    // record with the topology clock when it first sees it, so latency
    // measures dispatch-to-result on whichever clock (wall or virtual)
    // the scheduler runs.
    let source: Vec<JoinMsg> = records
        .iter()
        .map(|r| JoinMsg::ProbeAndIndex(RecordMsg::solo(r.clone(), Timestamp::ZERO)))
        .collect();
    run_internal(source, records, false, cfg)
}

/// Runs a bi-stream (R–S) join: every record of one stream is matched
/// against the other stream's records inside the window. Record ids must
/// be globally unique and increasing across both streams (they define the
/// arrival interleaving).
pub fn run_bistream_distributed(
    left: &[Record],
    right: &[Record],
    cfg: &DistributedJoinConfig,
) -> DistributedJoinResult {
    use ssj_core::join::bistream::merge_streams;
    let merged = merge_streams(left, right);
    let sample: Vec<Record> = merged.iter().map(|(_, r)| r.clone()).collect();
    let source: Vec<JoinMsg> = merged
        .into_iter()
        .map(|(side, record)| {
            JoinMsg::ProbeAndIndex(RecordMsg {
                record,
                ingest: Timestamp::ZERO,
                side: Some(side),
            })
        })
        .collect();
    run_internal(source, &sample, true, cfg)
}

fn run_internal(
    source: Vec<JoinMsg>,
    arrival_order: &[Record],
    bistream: bool,
    cfg: &DistributedJoinConfig,
) -> DistributedJoinResult {
    assert!(cfg.k >= 1, "need at least one joiner");
    assert!(
        !(matches!(cfg.scheduler, Scheduler::Sim(_)) && cfg.source_rate.is_some()),
        "source_rate paces on the wall clock and cannot run under simulation"
    );
    let threshold = cfg.join.threshold;
    let window = cfg.join.window;

    // Restore path: rebuild the checkpointed window before streaming. The
    // image's records re-enter through the dispatcher as index-only tuples
    // (in id order, ahead of all new records), so any router — including
    // replicating ones and a freshly overridden partition — places them
    // exactly as a live run would have.
    let mut source = source;
    let mut strategy = cfg.strategy.clone();
    let mut restored_cut = None;
    let mut prepended = 0;
    if let Some(store) = &cfg.restore_from {
        if let Some(image) = load_latest(store.as_ref()).expect("restore store unreadable") {
            assert_eq!(image.k, cfg.k, "checkpoint was taken with a different k");
            assert_eq!(
                image.bistream, bistream,
                "checkpoint topology shape (bistream) mismatch"
            );
            if let Some(partition) = image.partition {
                strategy = Strategy::Length(partition);
            }
            let cut = image.cut_id;
            source.retain(|m| m.record().is_none_or(|r| r.id().0 > cut));
            let mut restored: Vec<JoinMsg> = image
                .window
                .into_iter()
                .map(|(side, record)| {
                    JoinMsg::Index(RecordMsg {
                        record,
                        ingest: Timestamp::ZERO,
                        side,
                    })
                })
                .collect();
            prepended = restored.len();
            restored.append(&mut source);
            source = restored;
            restored_cut = Some(cut);
        }
    }
    // Restore re-dispatch tuples rebuild state; they are not part of the
    // streamed workload the run's rates are normalized by.
    let n_records = source.len() - prepended;

    let router: Box<dyn Router + Send> = match &strategy {
        Strategy::Length(partition) => {
            assert_eq!(partition.k(), cfg.k, "partition/k mismatch");
            Box::new(LengthRouter::new(threshold, partition.clone()))
        }
        Strategy::LengthAuto { method, sample } => {
            let take = (*sample).clamp(1, arrival_order.len().max(1));
            let sample = &arrival_order[..take.min(arrival_order.len())];
            let partition = calibrate_partition(sample, threshold, cfg.k, *method);
            Box::new(LengthRouter::new(threshold, partition))
        }
        Strategy::LengthOnline { sample, epoch } => {
            let take = (*sample).clamp(1, arrival_order.len().max(1));
            let sample = &arrival_order[..take.min(arrival_order.len())];
            let initial = calibrate_partition(sample, threshold, cfg.k, PartitionMethod::LoadAware);
            Box::new(EpochRouter::new(EpochedPartitioner::new(
                threshold, window, initial, *epoch,
            )))
        }
        Strategy::Prefix => Box::new(PrefixRouter::new(threshold, cfg.k)),
        Strategy::Broadcast => Box::new(BroadcastRouter::new(cfg.k)),
    };
    let needs_dedup = router.needs_result_dedup();

    if let Some(plan) = &cfg.fault {
        for spec in plan.specs() {
            assert_eq!(
                spec.component, "joiner",
                "fault plans may only crash joiner tasks"
            );
        }
    }
    // Checkpointing needs the replay machinery too: epoch commits truncate
    // the buffers, and a crashed joiner replays the uncheckpointed tail.
    let recovery: Option<Arc<RecoveryState>> = (cfg.fault.is_some() || cfg.checkpoint.is_some())
        .then(|| {
            let mut state = RecoveryState::new(cfg.k, window);
            if let Some(cap) = cfg.replay_buffer_cap {
                state = state.with_buffer_cap(cap);
            }
            Arc::new(state)
        });
    let coordinator: Option<Arc<CheckpointCoordinator>> = cfg.checkpoint.as_ref().map(|cp| {
        let recovery = recovery.clone().expect("created just above");
        Arc::new(
            CheckpointCoordinator::new(cfg.k, cp, recovery).expect("checkpoint store unavailable"),
        )
    });

    let sink_state = Arc::new(Mutex::new(SinkState::default()));
    let snapshots: Arc<Mutex<Vec<JoinerSnapshot>>> = Arc::new(Mutex::new(Vec::new()));

    // Observability: one sink collects every task's event ring, one shared
    // profile aggregates the bolts' per-stage latencies. Both exist only
    // when tracing is configured — disabled runs carry no tracer at all.
    let trace_sink = cfg.trace.as_ref().map(|tc| (TraceSink::new(), tc.clone()));
    let stage_shared: Option<Arc<Mutex<StageProfile>>> = cfg
        .trace
        .as_ref()
        .map(|_| Arc::new(Mutex::new(StageProfile::new())));

    let mut topology: Topology<JoinMsg> =
        Topology::new().with_channel_capacity(cfg.channel_capacity);
    if let Some((sink, tc)) = &trace_sink {
        topology = topology.with_tracing(sink.clone(), tc.clone());
    }
    if let Some(plan) = &cfg.fault {
        topology = topology.with_fault_plan(plan.clone());
    }
    match cfg.source_rate {
        Some(rate) => topology.spout(
            "source",
            crate::pace::PacedIter::new(source.into_iter(), rate),
        ),
        None => topology.spout("source", source),
    }

    // The dispatcher is stateful (routers mutate) and single-task; move the
    // router into the one instance the factory builds.
    let shed_log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut router_slot = Some(
        DispatcherBolt::new(router)
            .with_recovery(recovery.clone())
            .with_shedding(cfg.shed_watermark, Arc::clone(&shed_log))
            .with_checkpointing(coordinator.clone(), bistream)
            .with_stages(stage_shared.clone()),
    );
    topology.bolt("dispatcher", 1, move |_| {
        router_slot.take().expect("dispatcher built once")
    });

    let join_cfg = cfg.join;
    let local = cfg.local;
    let k = cfg.k;
    let snaps = Arc::clone(&snapshots);
    let joiner_stages = stage_shared.clone();
    topology.bolt("joiner", cfg.k, move |task| {
        let dedup = needs_dedup.then_some((join_cfg.threshold, join_cfg.window, k));
        if bistream {
            JoinerBolt::new_bistream(
                || local.build(join_cfg),
                dedup,
                task,
                Arc::clone(&snaps),
                recovery.clone(),
                coordinator.clone(),
            )
            .with_stages(joiner_stages.clone())
        } else {
            JoinerBolt::new(
                local.build(join_cfg),
                dedup,
                task,
                Arc::clone(&snaps),
                recovery.clone(),
                coordinator.clone(),
            )
            .with_stages(joiner_stages.clone())
        }
    });

    let sink_shared = Arc::clone(&sink_state);
    let sink_stages = stage_shared.clone();
    topology.bolt("sink", 1, move |_| {
        SinkBolt::new(Arc::clone(&sink_shared)).with_stages(sink_stages.clone())
    });

    match cfg.chaos_seed {
        Some(seed) => {
            // Chaos mode: every wire drops/duplicates/delays with seeded
            // rates, and every wire runs at-least-once so the protocol
            // masks the faults. Retry timeouts are tightened well below
            // the defaults — these are in-process links where a round trip
            // is microseconds, and the experiments time whole runs.
            let retry = RetryConfig {
                base_timeout: Duration::from_micros(500),
                backoff_factor: 2,
                max_timeout: Duration::from_millis(16),
            };
            let reliable = Delivery::AtLeastOnce(retry);
            topology = topology.with_link_faults(
                LinkFaultPlan::new(seed)
                    .lossy("source", "dispatcher", LinkFault::seeded(seed ^ 1))
                    .lossy("dispatcher", "joiner", LinkFault::seeded(seed ^ 2))
                    .lossy("joiner", "sink", LinkFault::seeded(seed ^ 3)),
            );
            topology.wire_with("source", "dispatcher", Grouping::global(), reliable);
            topology.wire_with("dispatcher", "joiner", Grouping::direct(), reliable);
            topology.wire_with("joiner", "sink", Grouping::global(), reliable);
        }
        None => {
            topology.wire("source", "dispatcher", Grouping::global());
            topology.wire("dispatcher", "joiner", Grouping::direct());
            topology.wire("joiner", "sink", Grouping::global());
        }
    }

    let (report, transcript) = match cfg.scheduler {
        Scheduler::Sim(sim_cfg) => {
            let run = topology.run_sim(sim_cfg);
            (run.report, Some(run.transcript))
        }
        Scheduler::Threads => (topology.run_with(Scheduler::Threads), None),
    };
    let wall = report.elapsed;

    let mut sink = sink_state.lock();
    let pairs = std::mem::take(&mut sink.pairs);
    let latency = sink.latency.clone();
    drop(sink);
    let mut joiners = std::mem::take(&mut *snapshots.lock());
    joiners.sort_by_key(|s| s.task);

    let shed_records = std::mem::take(&mut *shed_log.lock());
    debug_assert_eq!(shed_records.len() as u64, report.shed());

    let trace = trace_sink.map(|(sink, _)| sink.collect());
    let stages = stage_shared
        .map(|s| std::mem::take(&mut *s.lock()))
        .unwrap_or_default();

    DistributedJoinResult {
        pairs,
        latency,
        report,
        joiners,
        records: n_records,
        wall,
        shed_records,
        restored_cut,
        transcript,
        trace,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_core::{join::run_stream, Window};

    fn workload(n: usize, dup_rate: f64) -> Vec<Record> {
        use ssj_workloads::{DatasetProfile, StreamGenerator};
        let profile = DatasetProfile::tweet().with_dup_rate(dup_rate);
        StreamGenerator::new(profile, 42).take_records(n)
    }

    fn ground_truth(records: &[Record], join: JoinConfig) -> Vec<(u64, u64)> {
        let mut naive = NaiveJoiner::new(join);
        let mut keys: Vec<_> = run_stream(&mut naive, records)
            .iter()
            .map(|m| m.key())
            .collect();
        keys.sort_unstable();
        keys
    }

    fn run_keys(records: &[Record], cfg: &DistributedJoinConfig) -> Vec<(u64, u64)> {
        let result = run_distributed(records, cfg);
        let mut keys: Vec<_> = result.pairs.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        assert_eq!(
            keys.windows(2).filter(|w| w[0] == w[1]).count(),
            0,
            "duplicate result pairs"
        );
        keys
    }

    #[test]
    fn length_strategy_matches_ground_truth() {
        let records = workload(800, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let expect = ground_truth(&records, join);
        for local in [LocalAlgo::AllPairs, LocalAlgo::PpJoin, LocalAlgo::bundle()] {
            let cfg = DistributedJoinConfig {
                k: 4,
                join,
                local,
                strategy: Strategy::LengthAuto {
                    method: PartitionMethod::LoadAware,
                    sample: 200,
                },
                channel_capacity: 256,
                source_rate: None,
                fault: None,
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            assert_eq!(run_keys(&records, &cfg), expect, "local={}", local.name());
        }
    }

    #[test]
    fn prefix_strategy_matches_ground_truth_with_exact_dedup() {
        let records = workload(600, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 4,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::Prefix,
            channel_capacity: 256,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        assert_eq!(run_keys(&records, &cfg), expect);
    }

    #[test]
    fn broadcast_strategy_matches_ground_truth() {
        let records = workload(600, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::AllPairs,
            strategy: Strategy::Broadcast,
            channel_capacity: 256,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        assert_eq!(run_keys(&records, &cfg), expect);
    }

    #[test]
    fn windowed_distributed_matches_ground_truth() {
        let records = workload(700, 0.4);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.6),
            window: Window::Count(120),
        };
        let expect = ground_truth(&records, join);
        for strategy in [
            Strategy::LengthAuto {
                method: PartitionMethod::EqualDepth,
                sample: 100,
            },
            Strategy::Prefix,
        ] {
            let cfg = DistributedJoinConfig {
                k: 4,
                join,
                local: LocalAlgo::PpJoin,
                strategy,
                channel_capacity: 128,
                source_rate: None,
                fault: None,
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            assert_eq!(run_keys(&records, &cfg), expect);
        }
    }

    #[test]
    fn online_repartitioning_stays_exact_under_drift() {
        use ssj_workloads::{DatasetProfile, DriftConfig, DriftingGenerator};
        let records = DriftingGenerator::new(
            DatasetProfile::dblp(),
            7,
            DriftConfig::length_drift(600, 2.0),
        )
        .take_records(1200);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.7),
            window: Window::Count(300),
        };
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 4,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthOnline {
                sample: 150,
                epoch: EpochConfig {
                    check_every: 200,
                    rebalance_factor: 1.1,
                    max_plans: 4,
                },
            },
            channel_capacity: 256,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        assert_eq!(run_keys(&records, &cfg), expect);
    }

    #[test]
    fn length_strategy_never_replicates() {
        let records = workload(500, 0.2);
        let cfg = DistributedJoinConfig {
            k: 4,
            join: JoinConfig::jaccard(0.8),
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 256,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert!((result.replication() - 1.0).abs() < 1e-9);
        assert!(result.msgs_per_record() >= 1.0);
    }

    #[test]
    fn prefix_strategy_replicates_more_than_length() {
        // Long records (ENRON-like) make prefixes long, so prefix routing
        // fans each record out to almost every owner while length routing
        // indexes exactly once and probes a narrow partition interval.
        use ssj_workloads::{DatasetProfile, StreamGenerator};
        let records = StreamGenerator::new(DatasetProfile::enron(), 42).take_records(300);
        let join = JoinConfig::jaccard(0.8);
        let mk = |strategy| DistributedJoinConfig {
            k: 8,
            join,
            local: LocalAlgo::PpJoin,
            strategy,
            channel_capacity: 256,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let length = run_distributed(
            &records,
            &mk(Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            }),
        );
        let prefix = run_distributed(&records, &mk(Strategy::Prefix));
        assert!(prefix.replication() >= length.replication());
        assert!(prefix.bytes_per_record() > length.bytes_per_record());
    }

    #[test]
    fn single_joiner_works() {
        let records = workload(300, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 1,
            join,
            local: LocalAlgo::bundle(),
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 50,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        assert_eq!(run_keys(&records, &cfg), expect);
    }

    /// Reference bi-join result built from the naive joiner run on the
    /// merged arrival sequence, keeping only cross-stream pairs.
    fn bistream_ground_truth(
        left: &[Record],
        right: &[Record],
        join: JoinConfig,
    ) -> Vec<(u64, u64)> {
        use ssj_core::join::bistream::{merge_streams, run_bistream, BiStreamJoiner};
        let merged = merge_streams(left, right);
        let mut j = BiStreamJoiner::new(|| NaiveJoiner::new(join));
        let mut keys: Vec<_> = run_bistream(&mut j, &merged)
            .iter()
            .map(|m| m.key())
            .collect();
        keys.sort_unstable();
        keys
    }

    fn split_workload(n: usize) -> (Vec<Record>, Vec<Record>) {
        // Interleave one generated stream into two sides so that plenty of
        // cross-stream matches exist (near-duplicates land on both sides).
        let all = workload(n, 0.4);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for r in all {
            if r.id().0 % 2 == 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        (left, right)
    }

    #[test]
    fn bistream_distributed_matches_ground_truth() {
        let (left, right) = split_workload(700);
        let join = JoinConfig::jaccard(0.7);
        let expect = bistream_ground_truth(&left, &right, join);
        assert!(!expect.is_empty(), "workload must produce matches");
        for (local, strategy) in [
            (
                LocalAlgo::bundle(),
                Strategy::LengthAuto {
                    method: PartitionMethod::LoadAware,
                    sample: 100,
                },
            ),
            (LocalAlgo::PpJoin, Strategy::Prefix),
            (LocalAlgo::AllPairs, Strategy::Broadcast),
        ] {
            let cfg = DistributedJoinConfig {
                k: 4,
                join,
                local,
                strategy,
                channel_capacity: 128,
                source_rate: None,
                fault: None,
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            let out = run_bistream_distributed(&left, &right, &cfg);
            let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "local={}", local.name());
        }
    }

    #[test]
    fn bistream_windowed_matches_ground_truth() {
        let (left, right) = split_workload(600);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.6),
            window: Window::Count(90),
        };
        let expect = bistream_ground_truth(&left, &right, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::EqualDepth,
                sample: 80,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_bistream_distributed(&left, &right, &cfg);
        let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(out.records, left.len() + right.len());
    }

    #[test]
    fn injected_joiner_crash_recovers_exactly() {
        let records = workload(800, 0.3);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.7),
            window: Window::Count(150),
        };
        let expect = ground_truth(&records, join);
        for strategy in [
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            Strategy::Prefix,
            Strategy::Broadcast,
        ] {
            let name = strategy.name();
            let cfg = DistributedJoinConfig {
                k: 4,
                join,
                local: LocalAlgo::PpJoin,
                strategy,
                channel_capacity: 128,
                source_rate: None,
                fault: Some(FaultPlan::new().crash("joiner", 1, 40)),
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            let result = run_distributed(&records, &cfg);
            let mut keys: Vec<_> = result.pairs.iter().map(|m| m.key()).collect();
            keys.sort_unstable();
            assert_eq!(
                keys.windows(2).filter(|w| w[0] == w[1]).count(),
                0,
                "duplicate pairs after recovery ({name})"
            );
            assert_eq!(keys, expect, "lost or spurious pairs ({name})");
            assert_eq!(result.report.total_restarts(), 1, "{name}");
            assert_eq!(result.joiners[1].incarnation, 1, "{name}");
            assert!(
                result.joiners[1].replayed > 0,
                "restart replayed nothing ({name})"
            );
        }
    }

    #[test]
    fn repeated_crashes_on_several_joiners_recover() {
        let records = workload(900, 0.4);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.65),
            window: Window::Count(200),
        };
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::bundle(),
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::EqualDepth,
                sample: 150,
            },
            channel_capacity: 128,
            source_rate: None,
            // Task 0 dies twice; task 2 dies once, before any input.
            fault: Some(
                FaultPlan::new()
                    .crash("joiner", 0, 30)
                    .crash("joiner", 0, 120)
                    .crash("joiner", 2, 0),
            ),
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert_eq!(run_keys_of(&result), expect);
        assert_eq!(result.report.total_restarts(), 3);
        assert_eq!(result.joiners[0].incarnation, 2);
        assert_eq!(result.joiners[2].incarnation, 1);
    }

    #[test]
    fn bistream_crash_recovers_exactly() {
        let (left, right) = split_workload(700);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.6),
            window: Window::Count(120),
        };
        let expect = bistream_ground_truth(&left, &right, join);
        assert!(!expect.is_empty());
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: Some(FaultPlan::new().crash("joiner", 0, 50)),
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_bistream_distributed(&left, &right, &cfg);
        assert_eq!(run_keys_of(&out), expect);
        assert_eq!(out.report.total_restarts(), 1);
    }

    #[test]
    fn fault_free_run_with_plan_absent_has_no_recovery_metadata() {
        let records = workload(300, 0.3);
        let cfg = DistributedJoinConfig::recommended(2, JoinConfig::jaccard(0.8));
        assert!(cfg.fault.is_none());
        let result = run_distributed(&records, &cfg);
        assert_eq!(result.report.total_restarts(), 0);
        assert!(result.joiners.iter().all(|j| j.incarnation == 0));
        assert!(result.joiners.iter().all(|j| j.replayed == 0));
    }

    #[test]
    #[should_panic(expected = "only crash joiner tasks")]
    fn faults_on_the_dispatcher_are_rejected() {
        let records = workload(50, 0.2);
        let cfg = DistributedJoinConfig::recommended(2, JoinConfig::jaccard(0.8))
            .with_fault(FaultPlan::new().crash("dispatcher", 0, 5));
        let _ = run_distributed(&records, &cfg);
    }

    fn run_keys_of(result: &DistributedJoinResult) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = result.pairs.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        assert_eq!(
            keys.windows(2).filter(|w| w[0] == w[1]).count(),
            0,
            "duplicate result pairs"
        );
        keys
    }

    #[test]
    fn chaos_mode_output_matches_fault_free_run() {
        let records = workload(500, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let expect = ground_truth(&records, join);
        for seed in [1u64, 7, 42] {
            let cfg = DistributedJoinConfig {
                chaos_seed: Some(seed),
                channel_capacity: 64,
                ..DistributedJoinConfig::recommended(3, join)
            };
            let result = run_distributed(&records, &cfg);
            let mut keys: Vec<_> = result.pairs.iter().map(|m| m.key()).collect();
            keys.sort_unstable();
            assert_eq!(keys, expect, "seed={seed}");
            let (dropped, duped, delayed) = result.report.link_faults();
            assert!(
                dropped + duped + delayed > 0,
                "seed={seed}: chaos plan injected nothing"
            );
            assert!(
                result.report.total_retries() > 0,
                "seed={seed}: drops must force retries"
            );
        }
    }

    #[test]
    fn chaos_composes_with_joiner_crashes() {
        let records = workload(600, 0.3);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.7),
            window: Window::Count(150),
        };
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: Some(FaultPlan::new().crash("joiner", 1, 40)),
            chaos_seed: Some(99),
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert_eq!(run_keys_of(&result), expect);
        assert_eq!(result.report.total_restarts(), 1);
    }

    #[test]
    fn shedding_under_overload_accounts_for_recall_exactly() {
        // Slow joiners (naive local join over an unbounded window) behind
        // tiny queues force the dispatcher over the shed watermark.
        let records = workload(2000, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let cfg = DistributedJoinConfig {
            k: 2,
            join,
            local: LocalAlgo::Naive,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 8,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: Some(4),
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert!(
            result.report.shed() > 0,
            "overload never tripped the watermark"
        );
        assert_eq!(
            result.shed_records.len() as u64,
            result.report.shed(),
            "shed log and engine counter disagree"
        );
        // A shed record vanishes entirely, so the surviving output is
        // exactly the join of the kept records — the recall gap is fully
        // explained by the shed ids.
        let shed: std::collections::HashSet<u64> = result.shed_records.iter().copied().collect();
        let kept: Vec<Record> = records
            .iter()
            .filter(|r| !shed.contains(&r.id().0))
            .cloned()
            .collect();
        let expect = ground_truth(&kept, join);
        assert_eq!(run_keys_of(&result), expect);
    }

    #[test]
    fn capped_replay_buffer_overflows_loudly_and_stays_duplicate_free() {
        let records = workload(800, 0.3);
        let join = JoinConfig::jaccard(0.7); // unbounded window: buffer grows
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 128,
            source_rate: None,
            fault: Some(FaultPlan::new().crash("joiner", 1, 100)),
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: Some(20),
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert!(
            result.joiners[1].replay_overflow > 0,
            "cap of 20 under an unbounded window must overflow"
        );
        // Lossy-but-loud: recovery may miss pairs (evicted index state)
        // but never invents or duplicates them.
        let keys = run_keys_of(&result);
        let full: std::collections::HashSet<(u64, u64)> = expect.iter().copied().collect();
        assert!(keys.iter().all(|k| full.contains(k)), "spurious pairs");
        assert!(keys.len() <= expect.len());
    }

    #[test]
    fn replay_cap_wider_than_window_keeps_recovery_exact() {
        let records = workload(800, 0.3);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.7),
            window: Window::Count(100),
        };
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 128,
            source_rate: None,
            fault: Some(FaultPlan::new().crash("joiner", 1, 100)),
            chaos_seed: None,
            shed_watermark: None,
            // Window::Count(100) keeps ≤ ~101 in-window entries per task;
            // a 400-entry cap is never the binding constraint.
            replay_buffer_cap: Some(400),
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert_eq!(run_keys_of(&result), expect);
        assert!(result.joiners.iter().all(|j| j.replay_overflow == 0));
    }

    #[test]
    fn checkpointed_crash_recovery_stays_exact() {
        let records = workload(800, 0.3);
        let join = JoinConfig::jaccard(0.7); // unbounded window
        let expect = ground_truth(&records, join);
        for strategy in [
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            Strategy::Prefix,
            Strategy::Broadcast,
        ] {
            let name = strategy.name();
            let cfg = DistributedJoinConfig {
                k: 3,
                join,
                local: LocalAlgo::PpJoin,
                strategy,
                channel_capacity: 32,
                source_rate: None,
                fault: Some(FaultPlan::new().crash("joiner", 1, 100)),
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: Some(crate::checkpoint::CheckpointConfig::in_memory(16)),
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            let result = run_distributed(&records, &cfg);
            assert_eq!(run_keys_of(&result), expect, "{name}");
            assert_eq!(result.report.total_restarts(), 1, "{name}");
            assert!(
                result.report.checkpoints() > 0,
                "{name}: no epoch published"
            );
            assert!(
                result.joiners[1].restored_from_epoch.is_some(),
                "{name}: restart predates every commit despite 100 tuples at interval 16"
            );
        }
    }

    #[test]
    fn checkpointing_removes_capped_buffer_overflow_loss() {
        // The counterpart of
        // `capped_replay_buffer_overflows_loudly_and_stays_duplicate_free`:
        // the identical unbounded-window workload whose replay buffer
        // overflows a small cap without checkpointing loses nothing once
        // epoch commits truncate the buffer faster than it fills.
        let records = workload(800, 0.3);
        let join = JoinConfig::jaccard(0.7); // unbounded window: buffer grows
        let expect = ground_truth(&records, join);
        let cfg = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 32,
            source_rate: None,
            fault: Some(FaultPlan::new().crash("joiner", 1, 100)),
            chaos_seed: None,
            shed_watermark: None,
            // Far below the ~800/3 entries a task would otherwise buffer
            // under an unbounded window, but above interval + in-flight.
            replay_buffer_cap: Some(100),
            checkpoint: Some(crate::checkpoint::CheckpointConfig::in_memory(16)),
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let result = run_distributed(&records, &cfg);
        assert!(
            result.joiners.iter().all(|j| j.replay_overflow == 0),
            "epoch commits must keep the capped buffer from overflowing"
        );
        assert_eq!(run_keys_of(&result), expect);
    }

    #[test]
    fn restore_from_file_store_resumes_exactly() {
        use crate::checkpoint::{CheckpointConfig, FileStore};
        let dir = std::env::temp_dir().join(format!("ssj-restore-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let records = workload(700, 0.3);
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.7),
            window: Window::Count(120),
        };
        let base = DistributedJoinConfig {
            k: 3,
            join,
            local: LocalAlgo::PpJoin,
            strategy: Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };

        // Phase 1: checkpoint to disk while streaming, then "lose" the
        // process — only the snapshot directory survives.
        let ckpt = base
            .clone()
            .with_checkpointing(CheckpointConfig::in_dir(50, &dir).unwrap());
        let phase1 = run_distributed(&records, &ckpt);
        assert!(phase1.report.checkpoints() > 0);

        // Phase 2: a fresh topology restores from the directory and is fed
        // the same stream; it must skip everything the checkpoint covers
        // and produce exactly the pairs whose later record is post-cut.
        let store = Arc::new(FileStore::open(&dir).unwrap());
        let restored = run_distributed(&records, &base.clone().with_restore_from(store));
        let cut = restored.restored_cut.expect("a complete epoch was on disk");
        assert!(cut > 0 && (cut as usize) < records.len());
        let expect: Vec<(u64, u64)> = ground_truth(&records, join)
            .into_iter()
            .filter(|&(_, later)| later > cut)
            .collect();
        assert_eq!(run_keys_of(&restored), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_metrics_surface_in_the_report() {
        let records = workload(400, 0.3);
        let join = JoinConfig::jaccard(0.7);
        let cfg = DistributedJoinConfig {
            checkpoint: Some(crate::checkpoint::CheckpointConfig::in_memory(40)),
            ..DistributedJoinConfig::recommended(3, join)
        }
        .with_sim(11);
        let result = run_distributed(&records, &cfg);
        let epochs = result.report.checkpoint_latency().count();
        assert!(epochs > 0, "no epoch committed");
        // Every injected barrier reaches every joiner before EOS, so each
        // opened epoch collects exactly k publishes and commits.
        assert_eq!(result.report.checkpoints(), 3 * epochs);
        assert!(result.report.checkpoint_bytes() > 0);
        assert_eq!(result.report.barrier_stall().count(), 3 * epochs);
        // Same seed, same config: the checkpointed sim replays exactly.
        let again = run_distributed(&records, &cfg);
        assert_eq!(result.transcript, again.transcript);
        assert!(result.transcript.is_some());
    }

    #[test]
    fn result_metadata_is_consistent() {
        let records = workload(400, 0.3);
        let cfg = DistributedJoinConfig::recommended(4, JoinConfig::jaccard(0.8));
        let result = run_distributed(&records, &cfg);
        assert_eq!(result.records, 400);
        assert_eq!(result.joiners.len(), 4);
        assert_eq!(
            result.latency.count(),
            result.pairs.len() as u64,
            "one latency sample per result"
        );
        assert!(result.throughput() > 0.0);
        assert!(result.load_imbalance() >= 1.0);
    }

    #[test]
    fn traced_sim_run_is_byte_deterministic_and_observation_only() {
        let records = workload(300, 0.3);
        let join = JoinConfig::jaccard(0.7);
        // Each run gets a fresh in-memory snapshot store: the epoch counter
        // resumes from the store's latest committed epoch, so sharing one
        // store across runs would shift epoch numbers (and the trace).
        let base = || {
            DistributedJoinConfig {
                checkpoint: Some(crate::checkpoint::CheckpointConfig::in_memory(40)),
                shed_watermark: None,
                ..DistributedJoinConfig::recommended(3, join)
            }
            .with_sim(7)
        };

        let a = run_distributed(&records, &base().with_trace(TraceConfig::default()));
        let b = run_distributed(&records, &base().with_trace(TraceConfig::default()));
        let ta = obs::trace_jsonl(a.trace.as_ref().expect("trace enabled"));
        let tb = obs::trace_jsonl(b.trace.as_ref().expect("trace enabled"));
        assert_eq!(ta, tb, "same seed must render a byte-identical trace");
        assert!(!ta.is_empty());
        // The full pipeline shows up: source dispatch, routing, delivery,
        // bolt execution, index/verify, results, and checkpoint barriers.
        for span in [
            "dispatch",
            "route",
            "deliver",
            "execute",
            "index",
            "verify",
            "emit",
            "barrier",
            "checkpoint",
        ] {
            assert!(
                ta.contains(&format!("\"span\":\"{span}\"")),
                "missing {span}"
            );
        }
        // Stage profile: every joiner probe and index landed a sample, and
        // the sink recorded one emit latency per result pair.
        assert_eq!(a.stages.get(obs::Stage::Emit).count(), a.pairs.len() as u64);
        assert!(a.stages.get(obs::Stage::Route).count() >= 300);
        assert!(a.stages.get(obs::Stage::Index).count() > 0);
        assert!(a.stages.get(obs::Stage::Verify).count() > 0);
        assert!(a.stages.get(obs::Stage::Barrier).count() > 0);

        // Observation only: the untraced run has the identical transcript,
        // results, and report counters.
        let c = run_distributed(&records, &base());
        assert_eq!(
            a.transcript, c.transcript,
            "tracing must not perturb the schedule"
        );
        assert_eq!(run_keys_of(&a), run_keys_of(&c));
        assert!(c.trace.is_none());
        assert!(c.stages.is_empty());
    }
}
