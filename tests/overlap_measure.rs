//! The Overlap similarity measure is the degenerate case for length-based
//! routing: it admits partners of any length (`max_len = None`), so probes
//! must reach every partition from the low bound up to the last. These
//! tests pin that path end to end.

use dssj::core::join::run_stream;
use dssj::core::{JoinConfig, NaiveJoiner, SimFn, Threshold, Window};
use dssj::distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler, Strategy,
};
use dssj::text::{Record, RecordId, TokenId};

fn rec(id: u64, toks: &[u32]) -> Record {
    Record::from_sorted(
        RecordId(id),
        id,
        toks.iter().copied().map(TokenId).collect(),
    )
}

/// Short records containing long records' tokens: overlap similarity
/// matches across wildly different lengths (where Jaccard never would).
fn containment_workload() -> Vec<Record> {
    let mut records = Vec::new();
    let mut id = 0u64;
    for fam in 0..6u32 {
        let base = fam * 100;
        // One long "document".
        let long: Vec<u32> = (0..40).map(|x| base + x).collect();
        records.push(rec(id, &long));
        id += 1;
        // Several short "queries" fully contained in it.
        for q in 0..4 {
            let short: Vec<u32> = (q * 3..q * 3 + 3).map(|x| base + x).collect();
            records.push(rec(id, &short));
            id += 1;
        }
    }
    records
}

#[test]
fn overlap_measure_matches_containment_pairs() {
    let cfg = JoinConfig {
        threshold: Threshold::new(SimFn::Overlap, 1.0),
        window: Window::Unbounded,
    };
    let records = containment_workload();
    let mut naive = NaiveJoiner::new(cfg);
    let out = run_stream(&mut naive, &records);
    // Each family: 4 queries contained in the long doc (overlap sim = 1.0)
    // plus query-query containments where their windows overlap... at
    // overlap 1.0, query pairs only match if one contains the other; the
    // 3-token windows at stride 3 are disjoint, so exactly 4 pairs/family.
    assert_eq!(out.len(), 6 * 4);
    for m in &out {
        assert!((m.similarity - 1.0).abs() < 1e-12);
    }
}

#[test]
fn distributed_overlap_equals_naive_under_every_strategy() {
    let cfg = JoinConfig {
        threshold: Threshold::new(SimFn::Overlap, 0.9),
        window: Window::Unbounded,
    };
    let records = containment_workload();
    let mut naive = NaiveJoiner::new(cfg);
    let mut expect: Vec<_> = run_stream(&mut naive, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    expect.sort_unstable();
    assert!(!expect.is_empty());

    for strategy in [
        Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 10,
        },
        Strategy::Prefix,
        Strategy::Broadcast,
    ] {
        let dc = DistributedJoinConfig {
            k: 4,
            join: cfg,
            local: LocalAlgo::AllPairs,
            strategy,
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_distributed(&records, &dc);
        let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn local_joiners_agree_on_overlap_measure() {
    let cfg = JoinConfig {
        threshold: Threshold::new(SimFn::Overlap, 0.7),
        window: Window::Count(20),
    };
    let records = containment_workload();
    let mut naive = NaiveJoiner::new(cfg);
    let mut expect: Vec<_> = run_stream(&mut naive, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    expect.sort_unstable();

    let mut ap = dssj::AllPairsJoiner::new(cfg);
    let mut got: Vec<_> = run_stream(&mut ap, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "allpairs");

    let mut pp = dssj::PpJoinJoiner::new_plus(cfg);
    let mut got: Vec<_> = run_stream(&mut pp, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "ppjoin+");

    let mut bj = dssj::BundleJoiner::with_defaults(cfg);
    let mut got: Vec<_> = run_stream(&mut bj, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "bundle");
}
