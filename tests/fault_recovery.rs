//! Property-based crash recovery: killing joiner tasks mid-stream must
//! never change the result set. For random workload shapes, thresholds,
//! windows and (seeded, deterministic) fault points, the post-recovery
//! result multiset must equal the naive no-fault ground truth — no lost
//! pairs, no duplicated pairs — for every `Strategy` × `LocalAlgo`.
//!
//! The chaos composition test additionally wraps every wire in seeded
//! link faults (drops, duplicates, bounded reordering via delay) masked
//! by at-least-once delivery, on top of the injected crashes.

use dssj::core::join::run_stream;
use dssj::core::{JoinConfig, NaiveJoiner, Threshold, Window};
use dssj::distrib::CheckpointConfig;
use dssj::distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler,
    Strategy as DistStrategy,
};
use dssj::partition::EpochConfig;
use dssj::stormlite::FaultPlan;
use dssj::workloads::{DatasetProfile, LengthDist, StreamGenerator};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = DatasetProfile> {
    (
        100usize..2000, // vocab
        0.0f64..1.3,    // skew
        1usize..6,      // lo
        6usize..40,     // hi
        0.0f64..0.7,    // dup rate
        0usize..4,      // dup mutations
    )
        .prop_map(
            |(vocab, skew, lo, hi, dup_rate, dup_mutations)| DatasetProfile {
                name: "fault-prop",
                vocab,
                skew,
                len_dist: LengthDist::Uniform { lo, hi },
                dup_rate,
                dup_mutations,
                recent_pool: 256,
            },
        )
}

fn sorted_keys(pairs: &[dssj::MatchPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|m| m.key()).collect();
    keys.sort_unstable();
    keys
}

fn strategies() -> [DistStrategy; 4] {
    [
        DistStrategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 60,
        },
        DistStrategy::LengthOnline {
            sample: 60,
            epoch: EpochConfig {
                check_every: 80,
                rebalance_factor: 1.1,
                max_plans: 3,
            },
        },
        DistStrategy::Prefix,
        DistStrategy::Broadcast,
    ]
}

const LOCALS: [LocalAlgo; 5] = [
    LocalAlgo::Naive,
    LocalAlgo::AllPairs,
    LocalAlgo::PpJoin,
    LocalAlgo::PpJoinPlus,
    LocalAlgo::Bundle {
        bundle_tau: None,
        max_members: 64,
        max_delta_frac: 0.25,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One seeded joiner crash per run (task and crash point both derived
    /// from `fault_seed`), checked against the no-fault naive ground truth
    /// for every distribution strategy × local algorithm.
    #[test]
    fn crashed_joiner_recovers_to_exact_results(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        k in 2usize..5,
        window_kind in 0usize..3,
        fault_seed in 0u64..1_000_000,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(180);
        let window = match window_kind {
            0 => Window::Unbounded,
            1 => Window::Count(60),
            _ => Window::TimeMs(40),
        };
        let join = JoinConfig { threshold: Threshold::jaccard(tau), window };
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));

        for strategy in strategies() {
            for local in LOCALS {
                let cfg = DistributedJoinConfig {
                    k,
                    join,
                    local,
                    strategy: strategy.clone(),
                    channel_capacity: 64,
                    source_rate: None,
                    fault: Some(FaultPlan::new().crash_seeded("joiner", k, 150, fault_seed)),
                    chaos_seed: None,
                    shed_watermark: None,
                    replay_buffer_cap: None,
                    checkpoint: None,
                    restore_from: None,
                trace: None,
                    scheduler: Scheduler::Threads,
                };
                let out = run_distributed(&records, &cfg);
                let got = sorted_keys(&out.pairs);
                prop_assert_eq!(
                    got.windows(2).filter(|w| w[0] == w[1]).count(),
                    0,
                    "duplicate pairs: strategy={} local={} restarts={}",
                    strategy.name(), local.name(), out.report.total_restarts()
                );
                prop_assert_eq!(
                    &got, &expect,
                    "lost or spurious pairs: strategy={} local={} restarts={}",
                    strategy.name(), local.name(), out.report.total_restarts()
                );
            }
        }
    }

    /// Several crashes across different tasks — including a crash before
    /// the task ever processed input and repeated crashes of one task —
    /// still recover exactly.
    #[test]
    fn multiple_crashes_recover_to_exact_results(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        fault_seed in 0u64..1_000_000,
        local_idx in 0usize..5,
        strat_idx in 0usize..4,
    ) {
        let k = 4;
        let records = StreamGenerator::new(profile, seed).take_records(200);
        let join = JoinConfig {
            threshold: Threshold::jaccard(tau),
            window: Window::Count(80),
        };
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));

        let strategy = strategies()[strat_idx].clone();
        let local = LOCALS[local_idx];
        let plan = FaultPlan::new()
            .crash_seeded("joiner", k, 150, fault_seed)
            .crash_seeded("joiner", k, 150, fault_seed.wrapping_add(1))
            .crash("joiner", (fault_seed % k as u64) as usize, 0);
        let cfg = DistributedJoinConfig {
            k,
            join,
            local,
            strategy: strategy.clone(),
            channel_capacity: 64,
            source_rate: None,
            fault: Some(plan),
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
                trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_distributed(&records, &cfg);
        prop_assert_eq!(
            &sorted_keys(&out.pairs), &expect,
            "strategy={} local={} restarts={}",
            strategy.name(), local.name(), out.report.total_restarts()
        );
    }

    /// Full chaos composition: every wire drops/duplicates/delays under a
    /// seeded `LinkFaultPlan` (masked by at-least-once delivery) while a
    /// seeded joiner crash also fires — the result multiset must still
    /// equal the fault-free naive ground truth for every strategy, across
    /// local algorithms and window kinds.
    #[test]
    fn link_faults_and_crashes_compose_to_exact_results(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        k in 2usize..5,
        window_kind in 0usize..3,
        fault_seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
        local_idx in 0usize..5,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(150);
        let window = match window_kind {
            0 => Window::Unbounded,
            1 => Window::Count(60),
            _ => Window::TimeMs(40),
        };
        let join = JoinConfig { threshold: Threshold::jaccard(tau), window };
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));
        let local = LOCALS[local_idx];

        for strategy in strategies() {
            let cfg = DistributedJoinConfig {
                k,
                join,
                local,
                strategy: strategy.clone(),
                channel_capacity: 64,
                source_rate: None,
                fault: Some(FaultPlan::new().crash_seeded("joiner", k, 120, fault_seed)),
                chaos_seed: Some(chaos_seed),
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            let out = run_distributed(&records, &cfg);
            let got = sorted_keys(&out.pairs);
            prop_assert_eq!(
                got.windows(2).filter(|w| w[0] == w[1]).count(),
                0,
                "duplicate pairs under chaos: strategy={} local={} retries={}",
                strategy.name(), local.name(), out.report.total_retries()
            );
            prop_assert_eq!(
                &got, &expect,
                "lost or spurious pairs under chaos: strategy={} local={} restarts={} retries={} dup_drops={}",
                strategy.name(), local.name(), out.report.total_restarts(),
                out.report.total_retries(), out.report.total_dup_drops()
            );
        }
    }

    /// Everything at once: epoch checkpointing (random interval), a seeded
    /// joiner crash, link chaos on every wire, and optional load shedding.
    /// Replay-buffer truncation after each committed epoch must never lose
    /// state, and the result must equal the oracle restricted to the
    /// records the run itself chose to shed — exactly.
    #[test]
    fn checkpointing_composes_with_crash_chaos_and_shedding(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        k in 2usize..5,
        interval in 8u64..64,
        fault_seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
        shed_raw in 0usize..8, // 0..3 → no shedding, else watermark

        local_idx in 0usize..5,
        strat_idx in 0usize..4,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(150);
        let shed = (shed_raw >= 3).then_some(shed_raw);
        let join = JoinConfig {
            threshold: Threshold::jaccard(tau),
            window: Window::Count(60),
        };
        let strategy = strategies()[strat_idx].clone();
        let cfg = DistributedJoinConfig {
            k,
            join,
            local: LOCALS[local_idx],
            strategy: strategy.clone(),
            channel_capacity: 64,
            source_rate: None,
            fault: Some(FaultPlan::new().crash_seeded("joiner", k, 120, fault_seed)),
            chaos_seed: Some(chaos_seed),
            shed_watermark: shed,
            replay_buffer_cap: None,
            checkpoint: Some(CheckpointConfig::in_memory(interval)),
            restore_from: None,
                trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_distributed(&records, &cfg);
        let expect = sorted_keys(&testkit::self_join_surviving(
            &records,
            &join,
            &out.shed_records,
        ));
        let got = sorted_keys(&out.pairs);
        prop_assert_eq!(
            got.windows(2).filter(|w| w[0] == w[1]).count(),
            0,
            "duplicate pairs: strategy={} local={} epochs={}",
            strategy.name(), LOCALS[local_idx].name(), out.report.checkpoints()
        );
        prop_assert_eq!(
            &got, &expect,
            "lost or spurious pairs: strategy={} local={} restarts={} checkpoints={} shed={}",
            strategy.name(), LOCALS[local_idx].name(), out.report.total_restarts(),
            out.report.checkpoints(), out.shed_records.len()
        );
        // Shedding drops records before they are dispatched (and counted
        // toward the barrier interval), so an epoch is only guaranteed to
        // fire when shedding is off.
        prop_assert!(
            shed.is_some() || out.report.checkpoints() > 0,
            "no snapshot was ever published despite interval {}", interval
        );
    }
}
