//! Window semantics must be identical on one node and across a cluster:
//! visibility is defined by the probe's global arrival id / timestamp, not
//! by per-joiner local state.

use dssj::core::join::run_stream;
use dssj::core::{JoinConfig, NaiveJoiner, StreamJoiner, Threshold, Window};
use dssj::distrib::{run_distributed, DistributedJoinConfig, LocalAlgo, Scheduler, Strategy};
use dssj::text::{Record, RecordId, TokenId};

fn rec(id: u64, ts: u64, toks: &[u32]) -> Record {
    Record::from_sorted(
        RecordId(id),
        ts,
        toks.iter().copied().map(TokenId).collect(),
    )
}

#[test]
fn count_window_boundary_is_exact() {
    // Window::Count(W) means: a probe sees exactly the W most recent
    // arrivals. Place a match exactly at and just beyond the boundary.
    let w = 3u64;
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.9),
        window: Window::Count(w),
    };
    // Record 0 matches record 3 (distance 3 = W: visible) and record 4
    // (distance 4 > W: expired).
    let records = vec![
        rec(0, 0, &[1, 2, 3]),
        rec(1, 1, &[10, 11]),
        rec(2, 2, &[20, 21]),
        rec(3, 3, &[1, 2, 3]),
        rec(4, 4, &[1, 2, 3]),
    ];
    let mut j = NaiveJoiner::new(cfg);
    let out = run_stream(&mut j, &records);
    let keys: Vec<_> = out.iter().map(|m| m.key()).collect();
    assert!(keys.contains(&(0, 3)), "distance == W is visible");
    assert!(!keys.contains(&(0, 4)), "distance > W has expired");
    assert!(keys.contains(&(3, 4)));
}

#[test]
fn time_window_boundary_is_exact() {
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.9),
        window: Window::TimeMs(100),
    };
    let records = vec![
        rec(0, 0, &[1, 2, 3]),
        rec(1, 100, &[1, 2, 3]), // exactly at the edge: visible
        rec(2, 101, &[1, 2, 3]), // 101ms after record 0: expired
    ];
    let mut j = NaiveJoiner::new(cfg);
    let keys: Vec<_> = run_stream(&mut j, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    assert!(keys.contains(&(0, 1)));
    assert!(!keys.contains(&(0, 2)));
    assert!(keys.contains(&(1, 2)));
}

#[test]
fn distributed_window_equals_local_window() {
    // A stream engineered so that matches straddle partition boundaries
    // *and* window boundaries at the same time.
    let mut records = Vec::new();
    for i in 0..200u64 {
        let fam = (i % 5) as u32 * 100;
        let len = 3 + (i % 4) as usize; // lengths 3..=6 across partitions
        let toks: Vec<u32> = (0..len as u32).map(|x| fam + x).collect();
        records.push(rec(i, i * 10, &toks));
    }
    for window in [Window::Count(23), Window::TimeMs(170)] {
        let join = JoinConfig {
            threshold: Threshold::jaccard(0.5),
            window,
        };
        let mut naive = NaiveJoiner::new(join);
        let mut expect: Vec<_> = run_stream(&mut naive, &records)
            .iter()
            .map(|m| m.key())
            .collect();
        expect.sort_unstable();
        assert!(!expect.is_empty());
        for strategy in [
            Strategy::LengthAuto {
                method: dssj::distrib::PartitionMethod::LoadAware,
                sample: 50,
            },
            Strategy::Prefix,
        ] {
            let cfg = DistributedJoinConfig {
                k: 3,
                join,
                local: LocalAlgo::bundle(),
                strategy,
                channel_capacity: 64,
                source_rate: None,
                fault: None,
                chaos_seed: None,
                shed_watermark: None,
                replay_buffer_cap: None,
                checkpoint: None,
                restore_from: None,
                trace: None,
                scheduler: Scheduler::Threads,
            };
            let out = run_distributed(&records, &cfg);
            let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "window {window:?} diverged");
        }
    }
}

#[test]
fn eviction_reclaims_index_memory() {
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.8),
        window: Window::Count(100),
    };
    let mut j = dssj::PpJoinJoiner::new(cfg);
    let mut out = Vec::new();
    for i in 0..20_000u64 {
        let base = (i % 50) as u32 * 10;
        j.process(&rec(i, i, &[base, base + 1, base + 2, base + 3]), &mut out);
    }
    // Stored records bounded by the window; postings bounded by compaction
    // (lazy pruning means slightly more than live, but not 20k's worth).
    assert!(j.stored() <= 101, "stored {}", j.stored());
    assert!(j.postings() < 2_000, "postings {}", j.postings());
}

#[test]
fn unbounded_window_retains_everything() {
    let cfg = JoinConfig::jaccard(0.9);
    let mut j = dssj::AllPairsJoiner::new(cfg);
    let mut out = Vec::new();
    for i in 0..500u64 {
        j.process(&rec(i, i, &[i as u32 * 3, i as u32 * 3 + 1]), &mut out);
    }
    assert_eq!(j.stored(), 500);
}
