//! Cross-crate bi-stream (R–S) join integration tests.

use dssj::core::join::bistream::{merge_streams, run_bistream, BiStreamJoiner, Side};
use dssj::core::{JoinConfig, NaiveJoiner, Threshold, Window};
use dssj::distrib::{
    run_bistream_distributed, DistributedJoinConfig, LocalAlgo, Scheduler, Strategy,
};
use dssj::text::Record;
use dssj::workloads::{DatasetProfile, StreamGenerator};

fn two_feeds(n: usize) -> (Vec<Record>, Vec<Record>) {
    let all = StreamGenerator::new(DatasetProfile::tweet().with_dup_rate(0.4), 5).take_records(n);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for r in all {
        if r.id().0 % 2 == 0 {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

fn ground_truth(left: &[Record], right: &[Record], join: JoinConfig) -> Vec<(u64, u64)> {
    let merged = merge_streams(left, right);
    let mut j = BiStreamJoiner::new(|| NaiveJoiner::new(join));
    let mut keys: Vec<_> = run_bistream(&mut j, &merged)
        .iter()
        .map(|m| m.key())
        .collect();
    keys.sort_unstable();
    keys
}

#[test]
fn distributed_bistream_equals_local_reference() {
    let (left, right) = two_feeds(900);
    let join = JoinConfig::jaccard(0.7);
    let expect = ground_truth(&left, &right, join);
    assert!(!expect.is_empty());

    let cfg = DistributedJoinConfig::recommended(4, join);
    let out = run_bistream_distributed(&left, &right, &cfg);
    let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
    got.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn bistream_pairs_always_cross_streams() {
    let (left, right) = two_feeds(600);
    let cfg = DistributedJoinConfig::recommended(4, JoinConfig::jaccard(0.8));
    let out = run_bistream_distributed(&left, &right, &cfg);
    for m in &out.pairs {
        assert_ne!(
            m.earlier.0 % 2,
            m.later.0 % 2,
            "pair {:?} connects two records of the same feed",
            m.key()
        );
    }
}

#[test]
fn bistream_window_and_prefix_strategy() {
    let (left, right) = two_feeds(700);
    let join = JoinConfig {
        threshold: Threshold::jaccard(0.6),
        window: Window::Count(150),
    };
    let expect = ground_truth(&left, &right, join);
    let cfg = DistributedJoinConfig {
        k: 3,
        join,
        local: LocalAlgo::PpJoinPlus,
        strategy: Strategy::Prefix,
        channel_capacity: 64,
        source_rate: None,
        fault: None,
        chaos_seed: None,
        shed_watermark: None,
        replay_buffer_cap: None,
        checkpoint: None,
        restore_from: None,
        trace: None,
        scheduler: Scheduler::Threads,
    };
    let out = run_bistream_distributed(&left, &right, &cfg);
    let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
    got.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn one_empty_side_yields_no_pairs() {
    let (left, _) = two_feeds(100);
    let cfg = DistributedJoinConfig::recommended(2, JoinConfig::jaccard(0.8));
    let out = run_bistream_distributed(&left, &[], &cfg);
    assert!(out.pairs.is_empty());
    assert_eq!(out.records, left.len());
}

#[test]
fn local_bistream_asymmetric_sizes() {
    // A big left index probed by a tiny right stream.
    let all = StreamGenerator::new(DatasetProfile::aol(), 9).take_records(300);
    let (left, right): (Vec<Record>, Vec<Record>) = all.into_iter().partition(|r| r.id().0 < 280);
    let join = JoinConfig::jaccard(0.8);
    let expect = ground_truth(&left, &right, join);
    let merged = merge_streams(&left, &right);
    let mut j = BiStreamJoiner::new(|| dssj::PpJoinJoiner::new(join));
    let mut got: Vec<_> = run_bistream(&mut j, &merged)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect);
    // run_bistream processed both sides; Side is exposed for callers.
    assert_eq!(Side::Left.other(), Side::Right);
}
