//! Long-stream compaction stress: small windows over many records force
//! repeated store compactions (slot remaps, posting rewrites, seen-filter
//! resets); results must stay exactly correct throughout and memory must
//! stay bounded.

use dssj::core::join::run_stream;
use dssj::core::{
    AllPairsJoiner, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner, StreamJoiner, Threshold,
    Window,
};
use dssj::workloads::{DatasetProfile, LengthDist, StreamGenerator};

fn workload(n: usize) -> Vec<dssj::text::Record> {
    let profile = DatasetProfile {
        name: "compaction-stress",
        vocab: 500, // small vocabulary: dense matches keep indexes busy
        skew: 0.9,
        len_dist: LengthDist::Uniform { lo: 3, hi: 12 },
        dup_rate: 0.4,
        dup_mutations: 2,
        recent_pool: 128,
    };
    StreamGenerator::new(profile, 77).take_records(n)
}

#[test]
fn repeated_compaction_preserves_results() {
    // Window 64 over 20k records ⇒ ~19.9k evictions ⇒ many compaction
    // cycles (threshold: dead > 1024 && dead > live).
    let n = 20_000;
    let records = workload(n);
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.7),
        window: Window::Count(64),
    };
    let mut naive = NaiveJoiner::new(cfg);
    let mut expect: Vec<_> = run_stream(&mut naive, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    expect.sort_unstable();
    assert!(!expect.is_empty());

    let mut ap = AllPairsJoiner::new(cfg);
    let mut got: Vec<_> = run_stream(&mut ap, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "allpairs diverged across compactions");

    let mut pp = PpJoinJoiner::new_plus(cfg);
    let mut got: Vec<_> = run_stream(&mut pp, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "ppjoin+ diverged across compactions");

    let mut bj = BundleJoiner::with_defaults(cfg);
    let mut got: Vec<_> = run_stream(&mut bj, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "bundle diverged across compactions");
}

#[test]
fn memory_stays_bounded_by_the_window() {
    let n = 30_000;
    let w = 128u64;
    let records = workload(n);
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.8),
        window: Window::Count(w),
    };
    let mut out = Vec::new();

    let mut pp = PpJoinJoiner::new(cfg);
    for r in &records {
        pp.process(r, &mut out);
    }
    assert!(pp.stored() <= w as usize + 1);
    // Postings: live records × prefix length, plus bounded lazy garbage.
    // Compaction keeps garbage below the live count, and prefixes here are
    // at most ~5 tokens, so a generous cap is 16× the window.
    assert!(
        pp.postings() < 16 * w as usize,
        "postings grew unbounded: {}",
        pp.postings()
    );

    out.clear();
    let mut bj = BundleJoiner::with_defaults(cfg);
    for r in &records {
        bj.process(r, &mut out);
    }
    assert!(bj.stored() <= w as usize + 1);
    assert!(
        bj.postings() < 16 * w as usize,
        "bundle postings grew unbounded: {}",
        bj.postings()
    );
    assert!(bj.bundles() <= bj.stored());
}

#[test]
fn eviction_counts_are_exact() {
    let n = 5_000usize;
    let w = 100u64;
    let records = workload(n);
    let cfg = JoinConfig {
        threshold: Threshold::jaccard(0.8),
        window: Window::Count(w),
    };
    let mut j = AllPairsJoiner::new(cfg);
    let mut out = Vec::new();
    for r in &records {
        j.process(r, &mut out);
    }
    // Everything inserted is either still live or was evicted.
    assert_eq!(
        j.stats().indexed,
        j.stored() as u64 + j.stats().evicted,
        "insert/evict accounting leak"
    );
}
