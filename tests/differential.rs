//! Differential testing under deterministic simulation: every distributed
//! configuration — strategy × local algorithm × window kind, with and
//! without crashes, lossy links and load shedding — must reproduce the
//! naive O(n²) oracle exactly when run under [`stormlite::sim`].
//!
//! These properties replace the former spot-check matrix in
//! `tests/equivalence.rs` (which ran a handful of threaded combinations):
//! simulation makes each case fully deterministic, so a failing seed here
//! is a complete reproduction recipe, and CI sweeps seeds by exporting
//! `PROPTEST_RNG_SEED` (see the `sim-differential` job).

use dssj::core::{JoinConfig, Threshold, Window};
use dssj::distrib::{LocalAlgo, PartitionMethod, Strategy};
use dssj::partition::EpochConfig;
use proptest::prelude::*;
use testkit::{run_differential, run_restore_differential, DifferentialCase};

const STRATEGIES: usize = 4;
const LOCALS: usize = 5;
const WINDOWS: usize = 3;

fn strategy(idx: usize) -> Strategy {
    match idx {
        0 => Strategy::LengthAuto {
            method: PartitionMethod::LoadAware,
            sample: 50,
        },
        1 => Strategy::LengthOnline {
            sample: 50,
            // Aggressive epoching so repartitioning actually fires on
            // short differential streams.
            epoch: EpochConfig {
                check_every: 40,
                rebalance_factor: 1.1,
                max_plans: 4,
            },
        },
        2 => Strategy::Prefix,
        _ => Strategy::Broadcast,
    }
}

fn local(idx: usize) -> LocalAlgo {
    [
        LocalAlgo::Naive,
        LocalAlgo::AllPairs,
        LocalAlgo::PpJoin,
        LocalAlgo::PpJoinPlus,
        LocalAlgo::bundle(),
    ][idx]
}

fn window(idx: usize) -> Window {
    match idx {
        0 => Window::Unbounded,
        1 => Window::Count(60),
        _ => Window::TimeMs(40),
    }
}

fn case(k: usize, tau: f64, strat: usize, loc: usize, win: usize) -> DifferentialCase {
    let join = JoinConfig {
        threshold: Threshold::jaccard(tau),
        window: window(win),
    };
    DifferentialCase::new(120, k, join, local(loc), strategy(strat))
}

/// The full configuration matrix, one simulated run each: no combination
/// is allowed to go untested even when the randomized sweeps are unlucky.
#[test]
fn every_strategy_local_window_combination_matches_oracle() {
    let mut nonempty = 0usize;
    for strat in 0..STRATEGIES {
        for loc in 0..LOCALS {
            for win in 0..WINDOWS {
                let seed = (strat * LOCALS * WINDOWS + loc * WINDOWS + win) as u64;
                let out = run_differential(seed, &case(3, 0.7, strat, loc, win));
                nonempty += (out.pairs > 0) as usize;
            }
        }
    }
    // Guard against the whole matrix silently degenerating to empty joins.
    assert!(
        nonempty > STRATEGIES * LOCALS * WINDOWS / 2,
        "most matrix cells produced no pairs — the workload is too sparse"
    );
}

/// Checkpoint-and-restore across the full matrix: for every strategy ×
/// local algorithm × window kind, phase one checkpoints (and crashes
/// mid-stream), the whole topology is discarded, and a rebuilt topology
/// restored from the latest complete snapshot must produce byte-exact
/// oracle-equal results for everything after the checkpoint cut.
#[test]
fn every_combination_restores_exactly_from_checkpoint() {
    let mut restored = 0usize;
    for strat in 0..STRATEGIES {
        for loc in 0..LOCALS {
            for win in 0..WINDOWS {
                let seed = 0x9e37 + (strat * LOCALS * WINDOWS + loc * WINDOWS + win) as u64;
                let out =
                    run_restore_differential(seed, &case(3, 0.7, strat, loc, win).with_crash());
                restored += out.cut.is_some() as usize;
            }
        }
    }
    // Most cells must have committed at least one epoch before the cut —
    // otherwise the restore path was never actually exercised.
    assert!(
        restored > STRATEGIES * LOCALS * WINDOWS / 2,
        "only {restored} matrix cells committed a checkpoint before the handover"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random configuration, fault-free: simulated run equals the oracle.
    #[test]
    fn simulated_runs_match_oracle(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        tau in 0.55f64..0.9,
        strat in 0usize..STRATEGIES,
        loc in 0usize..LOCALS,
        win in 0usize..WINDOWS,
    ) {
        run_differential(seed, &case(k, tau, strat, loc, win));
    }

    /// Random configuration under injected joiner crashes and/or lossy
    /// links: recovery and at-least-once delivery must mask the faults so
    /// the oracle still matches exactly.
    #[test]
    fn faulty_simulated_runs_match_oracle(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        tau in 0.55f64..0.9,
        strat in 0usize..STRATEGIES,
        loc in 0usize..LOCALS,
        win in 0usize..WINDOWS,
        fault in 1usize..4, // bit 0: crash, bit 1: chaos
    ) {
        let mut c = case(k, tau, strat, loc, win);
        if fault & 1 != 0 {
            c = c.with_crash();
        }
        if fault & 2 != 0 {
            c = c.with_chaos();
        }
        run_differential(seed, &c);
    }

    /// Checkpointing in the loop changes nothing observable: barriers,
    /// snapshot publishes and replay-buffer truncation ride alongside
    /// crashes and lossy links, and the oracle must still match exactly.
    #[test]
    fn checkpointed_runs_match_oracle(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        tau in 0.55f64..0.9,
        strat in 0usize..STRATEGIES,
        loc in 0usize..LOCALS,
        win in 0usize..WINDOWS,
        interval in 8u64..48,
        fault in 0usize..4, // bit 0: crash, bit 1: chaos
    ) {
        let mut c = case(k, tau, strat, loc, win).with_checkpoints(interval);
        if fault & 1 != 0 {
            c = c.with_crash();
        }
        if fault & 2 != 0 {
            c = c.with_chaos();
        }
        run_differential(seed, &c);
    }

    /// Random configuration, crash mid-stream, restore from the latest
    /// complete snapshot: the rebuilt topology equals the oracle on the
    /// post-cut suffix, byte-exact.
    #[test]
    fn restored_runs_match_oracle(
        seed in 0u64..1_000_000,
        k in 1usize..5,
        tau in 0.55f64..0.9,
        strat in 0usize..STRATEGIES,
        loc in 0usize..LOCALS,
        win in 0usize..WINDOWS,
        interval in 8u64..48,
        crash in 0usize..2,
    ) {
        let mut c = case(k, tau, strat, loc, win).with_checkpoints(interval);
        if crash == 1 {
            c = c.with_crash();
        }
        run_restore_differential(seed, &c);
    }

    /// Bi-stream joins under simulation equal the cross-side oracle.
    #[test]
    fn simulated_bistream_runs_match_oracle(
        seed in 0u64..1_000_000,
        k in 1usize..4,
        tau in 0.55f64..0.9,
        loc in 0usize..LOCALS,
        win in 0usize..WINDOWS,
    ) {
        run_differential(seed, &case(k, tau, 0, loc, win).bistream());
    }

    /// Load shedding under simulation: the result must equal the oracle
    /// restricted to surviving records, and shed-adjusted recall is exact.
    #[test]
    fn shedding_runs_match_adjusted_oracle(
        seed in 0u64..1_000_000,
        k in 2usize..5,
        tau in 0.55f64..0.9,
        loc in 0usize..LOCALS,
        watermark in 2usize..8,
    ) {
        let out = run_differential(
            seed,
            &case(k, tau, 0, loc, 1).with_shedding(watermark),
        );
        prop_assert!(out.recall > 0.0 && out.recall <= 1.0);
    }
}
