//! Property-based equivalence of the *local* joiners: every filtered
//! joiner must produce exactly the naive ground-truth result set across
//! random workload shapes, thresholds and windows. Distributed
//! configurations are covered exhaustively — under deterministic
//! simulation, with faults — by `tests/differential.rs` and the
//! `testkit` oracle, which replaced the spot-check matrix that used to
//! live here.

use dssj::core::join::run_stream;
use dssj::core::{
    AllPairsJoiner, BundleConfig, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner, SimFn,
    Threshold, Window,
};
use dssj::text::Record;
use dssj::workloads::{DatasetProfile, LengthDist, StreamGenerator};
use proptest::prelude::*;

/// A small random profile: every parameter that shapes the join cost is
/// drawn, so the property explores skew × length × duplication space.
fn profile_strategy() -> impl Strategy<Value = DatasetProfile> {
    (
        100usize..2000, // vocab
        0.0f64..1.3,    // skew
        1usize..6,      // lo
        6usize..40,     // hi
        0.0f64..0.7,    // dup rate
        0usize..4,      // dup mutations
    )
        .prop_map(
            |(vocab, skew, lo, hi, dup_rate, dup_mutations)| DatasetProfile {
                name: "prop",
                vocab,
                skew,
                len_dist: LengthDist::Uniform { lo, hi },
                dup_rate,
                dup_mutations,
                recent_pool: 256,
            },
        )
}

fn sorted_keys(pairs: &[dssj::MatchPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|m| m.key()).collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Local joiners vs naive, random profiles and thresholds.
    #[test]
    fn local_joiners_match_naive(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.95,
        sim_idx in 0usize..3,
        window_kind in 0usize..3,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(250);
        let sim = [SimFn::Jaccard, SimFn::Cosine, SimFn::Dice][sim_idx];
        let window = match window_kind {
            0 => Window::Unbounded,
            1 => Window::Count(60),
            _ => Window::TimeMs(40),
        };
        let cfg = JoinConfig { threshold: Threshold::new(sim, tau), window };
        let mut naive = NaiveJoiner::new(cfg);
        let expect = sorted_keys(&run_stream(&mut naive, &records));

        let mut ap = AllPairsJoiner::new(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut ap, &records)), &expect, "allpairs");
        let mut pp = PpJoinJoiner::new(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut pp, &records)), &expect, "ppjoin");
        let mut ppp = PpJoinJoiner::new_plus(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut ppp, &records)), &expect, "ppjoin+");
        let mut bj = BundleJoiner::with_defaults(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut bj, &records)), &expect, "bundle");
    }

    /// Bundle joiner with random bundle parameters vs naive.
    #[test]
    fn bundle_parameters_never_change_results(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.9,
        bundle_tau in 0.3f64..1.0,
        max_members in 1usize..16,
        max_delta_frac in 0.0f64..0.9,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(200);
        let join = JoinConfig::jaccard(tau);
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));
        let cfg = BundleConfig {
            join,
            bundle_tau,
            max_members,
            max_delta_frac,
        };
        let mut bj = BundleJoiner::new(cfg);
        prop_assert_eq!(sorted_keys(&run_stream(&mut bj, &records)), expect);
    }

    /// Filters never create similarity values that differ from the naive
    /// computation (not just the same pairs — the same numbers).
    #[test]
    fn similarity_values_are_exact(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.9,
    ) {
        let records: Vec<Record> = StreamGenerator::new(profile, seed).take_records(150);
        let cfg = JoinConfig::jaccard(tau);
        let mut naive = NaiveJoiner::new(cfg);
        let mut expect = run_stream(&mut naive, &records);
        expect.sort_by_key(|m| m.key());
        let mut bj = BundleJoiner::with_defaults(cfg);
        let mut got = run_stream(&mut bj, &records);
        got.sort_by_key(|m| m.key());
        prop_assert_eq!(expect.len(), got.len());
        for (e, g) in expect.iter().zip(&got) {
            prop_assert_eq!(e.key(), g.key());
            prop_assert!((e.similarity - g.similarity).abs() < 1e-12,
                "similarity mismatch on {:?}: {} vs {}", e.key(), e.similarity, g.similarity);
        }
    }
}
