//! Property-based equivalence: every joiner and every distribution
//! strategy must produce exactly the naive ground-truth result set —
//! across random workload shapes, thresholds, windows and joiner counts.

use dssj::core::join::run_stream;
use dssj::core::{
    AllPairsJoiner, BundleConfig, BundleJoiner, JoinConfig, NaiveJoiner, PpJoinJoiner, SimFn,
    Threshold, Window,
};
use dssj::distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Strategy as DistStrategy,
};
use dssj::text::Record;
use dssj::workloads::{DatasetProfile, LengthDist, StreamGenerator};
use proptest::prelude::*;

/// A small random profile: every parameter that shapes the join cost is
/// drawn, so the property explores skew × length × duplication space.
fn profile_strategy() -> impl Strategy<Value = DatasetProfile> {
    (
        100usize..2000, // vocab
        0.0f64..1.3,    // skew
        1usize..6,      // lo
        6usize..40,     // hi
        0.0f64..0.7,    // dup rate
        0usize..4,      // dup mutations
    )
        .prop_map(
            |(vocab, skew, lo, hi, dup_rate, dup_mutations)| DatasetProfile {
                name: "prop",
                vocab,
                skew,
                len_dist: LengthDist::Uniform { lo, hi },
                dup_rate,
                dup_mutations,
                recent_pool: 256,
            },
        )
}

fn sorted_keys(pairs: &[dssj::MatchPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|m| m.key()).collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Local joiners vs naive, random profiles and thresholds.
    #[test]
    fn local_joiners_match_naive(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.95,
        sim_idx in 0usize..3,
        window_kind in 0usize..3,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(250);
        let sim = [SimFn::Jaccard, SimFn::Cosine, SimFn::Dice][sim_idx];
        let window = match window_kind {
            0 => Window::Unbounded,
            1 => Window::Count(60),
            _ => Window::TimeMs(40),
        };
        let cfg = JoinConfig { threshold: Threshold::new(sim, tau), window };
        let mut naive = NaiveJoiner::new(cfg);
        let expect = sorted_keys(&run_stream(&mut naive, &records));

        let mut ap = AllPairsJoiner::new(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut ap, &records)), &expect, "allpairs");
        let mut pp = PpJoinJoiner::new(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut pp, &records)), &expect, "ppjoin");
        let mut ppp = PpJoinJoiner::new_plus(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut ppp, &records)), &expect, "ppjoin+");
        let mut bj = BundleJoiner::with_defaults(cfg);
        prop_assert_eq!(&sorted_keys(&run_stream(&mut bj, &records)), &expect, "bundle");
    }

    /// Bundle joiner with random bundle parameters vs naive.
    #[test]
    fn bundle_parameters_never_change_results(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.9,
        bundle_tau in 0.3f64..1.0,
        max_members in 1usize..16,
        max_delta_frac in 0.0f64..0.9,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(200);
        let join = JoinConfig::jaccard(tau);
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));
        let cfg = BundleConfig {
            join,
            bundle_tau,
            max_members,
            max_delta_frac,
        };
        let mut bj = BundleJoiner::new(cfg);
        prop_assert_eq!(sorted_keys(&run_stream(&mut bj, &records)), expect);
    }

    /// Distributed runs vs naive, random strategy/k/threshold/window.
    #[test]
    fn distributed_matches_naive(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        k in 1usize..6,
        strat_idx in 0usize..4,
        local_idx in 0usize..4,
        window_kind in 0usize..2,
    ) {
        let records = StreamGenerator::new(profile, seed).take_records(220);
        let window = if window_kind == 0 { Window::Unbounded } else { Window::Count(70) };
        let join = JoinConfig { threshold: Threshold::jaccard(tau), window };
        let mut naive = NaiveJoiner::new(join);
        let expect = sorted_keys(&run_stream(&mut naive, &records));

        let strategy = match strat_idx {
            0 => DistStrategy::LengthAuto { method: PartitionMethod::LoadAware, sample: 60 },
            1 => DistStrategy::LengthAuto { method: PartitionMethod::EqualWidth, sample: 60 },
            2 => DistStrategy::Prefix,
            _ => DistStrategy::Broadcast,
        };
        let local = [
            LocalAlgo::AllPairs,
            LocalAlgo::PpJoin,
            LocalAlgo::PpJoinPlus,
            LocalAlgo::bundle(),
        ][local_idx];
        let cfg = DistributedJoinConfig {
            k,
            join,
            local,
            strategy,
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
        };
        let out = run_distributed(&records, &cfg);
        prop_assert_eq!(sorted_keys(&out.pairs), expect);
    }

    /// Distributed bi-stream joins vs the local bi-stream reference.
    #[test]
    fn bistream_distributed_matches_reference(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.55f64..0.9,
        k in 1usize..5,
        split_mod in 2u64..4,
    ) {
        use dssj::core::join::bistream::{merge_streams, run_bistream, BiStreamJoiner};
        use dssj::distrib::run_bistream_distributed;
        let all = StreamGenerator::new(profile, seed).take_records(180);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for r in all {
            if r.id().0 % split_mod == 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        let join = JoinConfig::jaccard(tau);
        let merged = merge_streams(&left, &right);
        let mut reference = BiStreamJoiner::new(|| NaiveJoiner::new(join));
        let expect = sorted_keys(&run_bistream(&mut reference, &merged));

        let cfg = DistributedJoinConfig {
            k,
            join,
            local: LocalAlgo::bundle(),
            strategy: DistStrategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 50,
            },
            channel_capacity: 64,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
        };
        let out = run_bistream_distributed(&left, &right, &cfg);
        prop_assert_eq!(sorted_keys(&out.pairs), expect);
    }

    /// Filters never create similarity values that differ from the naive
    /// computation (not just the same pairs — the same numbers).
    #[test]
    fn similarity_values_are_exact(
        profile in profile_strategy(),
        seed in 0u64..10_000,
        tau in 0.5f64..0.9,
    ) {
        let records: Vec<Record> = StreamGenerator::new(profile, seed).take_records(150);
        let cfg = JoinConfig::jaccard(tau);
        let mut naive = NaiveJoiner::new(cfg);
        let mut expect = run_stream(&mut naive, &records);
        expect.sort_by_key(|m| m.key());
        let mut bj = BundleJoiner::with_defaults(cfg);
        let mut got = run_stream(&mut bj, &records);
        got.sort_by_key(|m| m.key());
        prop_assert_eq!(expect.len(), got.len());
        for (e, g) in expect.iter().zip(&got) {
            prop_assert_eq!(e.key(), g.key());
            prop_assert!((e.similarity - g.similarity).abs() < 1e-12,
                "similarity mismatch on {:?}: {} vs {}", e.key(), e.similarity, g.similarity);
        }
    }
}
