//! End-to-end integration: raw text → corpus → distributed streaming join,
//! checked against the single-node naive ground truth.

use dssj::core::join::run_stream;
use dssj::core::{JoinConfig, NaiveJoiner};
use dssj::distrib::{
    run_distributed, DistributedJoinConfig, LocalAlgo, PartitionMethod, Scheduler, Strategy,
};
use dssj::text::{CorpusBuilder, QGramTokenizer, WordTokenizer};

/// A synthetic "news wire": templated sentences with small edits, so the
/// text pipeline (not a pre-tokenized generator) feeds the join.
fn news_texts(n: usize) -> Vec<String> {
    let subjects = ["senate", "market", "storm", "team", "council", "court"];
    let verbs = ["approves", "rejects", "debates", "announces", "delays"];
    let objects = [
        "new budget plan",
        "infrastructure bill",
        "trade agreement",
        "climate policy",
        "tax reform",
    ];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let s = subjects[i % subjects.len()];
        let v = verbs[(i / 2) % verbs.len()];
        let o = objects[(i / 3) % objects.len()];
        let suffix = if i % 4 == 0 { " today" } else { "" };
        out.push(format!("{s} {v} {o}{suffix} report {}", i % 7));
    }
    out
}

#[test]
fn text_pipeline_to_distributed_join() {
    let texts = news_texts(400);
    let mut builder = CorpusBuilder::new(WordTokenizer::default());
    for (i, t) in texts.iter().enumerate() {
        builder.push_text(t, i as u64);
    }
    let corpus = builder.build();
    let records = corpus.records().to_vec();

    let join = JoinConfig::jaccard(0.7);
    let mut naive = NaiveJoiner::new(join);
    let mut expect: Vec<_> = run_stream(&mut naive, &records)
        .iter()
        .map(|m| m.key())
        .collect();
    expect.sort_unstable();
    assert!(!expect.is_empty(), "workload must produce matches");

    for (local, strategy) in [
        (
            LocalAlgo::bundle(),
            Strategy::LengthAuto {
                method: PartitionMethod::LoadAware,
                sample: 100,
            },
        ),
        (LocalAlgo::PpJoin, Strategy::Prefix),
        (LocalAlgo::AllPairs, Strategy::Broadcast),
    ] {
        let cfg = DistributedJoinConfig {
            k: 4,
            join,
            local,
            strategy,
            channel_capacity: 128,
            source_rate: None,
            fault: None,
            chaos_seed: None,
            shed_watermark: None,
            replay_buffer_cap: None,
            checkpoint: None,
            restore_from: None,
            trace: None,
            scheduler: Scheduler::Threads,
        };
        let out = run_distributed(&records, &cfg);
        let mut got: Vec<_> = out.pairs.iter().map(|m| m.key()).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "local={} diverged", local.name());
    }
}

#[test]
fn qgram_tokenization_feeds_the_join() {
    // Character q-grams turn typo-similarity into set similarity.
    let texts = [
        "streaming set similarity join",
        "streaming set similarity joins", // one-character edit
        "completely different sentence here",
    ];
    let mut builder = CorpusBuilder::new(QGramTokenizer::new(3));
    for (i, t) in texts.iter().enumerate() {
        builder.push_text(t, i as u64);
    }
    let corpus = builder.build();
    let mut naive = NaiveJoiner::new(JoinConfig::jaccard(0.7));
    let matches = run_stream(&mut naive, corpus.records());
    assert_eq!(matches.len(), 1, "only the edited pair matches");
    assert_eq!(matches[0].key(), (0, 1));
}

#[test]
fn identical_corpus_order_independence_of_results() {
    // The pair set depends only on content + arrival order encoded in ids;
    // running the same records twice must give identical output.
    let texts = news_texts(150);
    let mut builder = CorpusBuilder::new(WordTokenizer::default());
    for (i, t) in texts.iter().enumerate() {
        builder.push_text(t, i as u64);
    }
    let records = builder.build().into_records();
    let cfg = DistributedJoinConfig::recommended(4, JoinConfig::jaccard(0.7));
    let a = run_distributed(&records, &cfg);
    let b = run_distributed(&records, &cfg);
    let mut ka: Vec<_> = a.pairs.iter().map(|m| m.key()).collect();
    let mut kb: Vec<_> = b.pairs.iter().map(|m| m.key()).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    assert_eq!(ka, kb);
}
